"""Setup shim so that editable installs work in offline environments without the wheel package."""
from setuptools import setup

setup()
