"""Package metadata for the GPRS performance-analysis reproduction.

Kept as a plain ``setup.py`` (no pyproject build isolation) so that
``pip install -e .`` works in offline environments without the ``wheel``
package.
"""

import os
import re

from setuptools import find_packages, setup

_HERE = os.path.dirname(os.path.abspath(__file__))


def _readme() -> str:
    try:
        with open(os.path.join(_HERE, "README.md"), encoding="utf-8") as handle:
            return handle.read()
    except OSError:
        return ""


def _version() -> str:
    """Read ``__version__`` from the package source (single source of truth)."""
    with open(os.path.join(_HERE, "src", "repro", "__init__.py"), encoding="utf-8") as handle:
        match = re.search(r'^__version__ = "([^"]+)"', handle.read(), re.MULTILINE)
    if match is None:
        raise RuntimeError("__version__ not found in src/repro/__init__.py")
    return match.group(1)


setup(
    name="gprs-repro",
    version=_version(),
    description=(
        "Reproduction of Lindemann & Thuemmler, 'Performance Analysis of the "
        "General Packet Radio Service' (ICDCS 2001): CTMC model, validation "
        "simulator, and a parallel, cached scenario runtime"
    ),
    long_description=_readme(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.22",
        "scipy>=1.8",
        "networkx>=2.6",
    ],
    extras_require={
        "test": ["pytest>=7", "pytest-benchmark>=4"],
    },
    entry_points={
        "console_scripts": [
            "gprs-repro=repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "License :: OSI Approved :: MIT License",
        "Intended Audience :: Science/Research",
        "Topic :: System :: Networking",
    ],
)
