"""Tests of the Markovian arrival process (MAP) module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.markov.map_process import MarkovianArrivalProcess, map_from_mmpp, superpose_maps
from repro.markov.mmpp import InterruptedPoissonProcess, aggregate_identical_ipps


def poisson_map(rate: float) -> MarkovianArrivalProcess:
    """A Poisson process written as a one-phase MAP."""
    return MarkovianArrivalProcess(np.array([[-rate]]), np.array([[rate]]))


def ipp_map(packet_rate=2.0, a=0.5, b=0.25) -> MarkovianArrivalProcess:
    return map_from_mmpp(InterruptedPoissonProcess(packet_rate, a, b))


class TestValidation:
    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            MarkovianArrivalProcess(np.eye(2) * -1, np.zeros((3, 3)))

    def test_negative_d1_rejected(self):
        with pytest.raises(ValueError):
            MarkovianArrivalProcess(np.array([[-1.0]]), np.array([[-0.5]]))

    def test_rows_must_sum_to_zero(self):
        with pytest.raises(ValueError):
            MarkovianArrivalProcess(np.array([[-2.0]]), np.array([[1.0]]))

    def test_negative_off_diagonal_d0_rejected(self):
        d0 = np.array([[-1.0, -0.5], [0.5, -1.0]])
        d1 = np.array([[1.5, 0.0], [0.0, 0.5]])
        with pytest.raises(ValueError):
            MarkovianArrivalProcess(d0, d1)


class TestPoissonSpecialCase:
    def test_rate_and_interarrival_moments(self):
        process = poisson_map(3.0)
        assert process.mean_arrival_rate() == pytest.approx(3.0)
        assert process.mean_interarrival_time() == pytest.approx(1.0 / 3.0)
        assert process.interarrival_scv() == pytest.approx(1.0)

    def test_no_interarrival_correlation(self):
        assert poisson_map(1.7).interarrival_lag1_correlation() == pytest.approx(0.0, abs=1e-9)


class TestIppMap:
    def test_mean_rate_matches_the_mmpp(self):
        ipp = InterruptedPoissonProcess(2.0, 0.5, 0.25)
        process = map_from_mmpp(ipp)
        assert process.mean_arrival_rate() == pytest.approx(ipp.mean_arrival_rate(), rel=1e-9)

    def test_interarrival_time_mean_is_reciprocal_rate(self):
        process = ipp_map()
        assert process.mean_interarrival_time() == pytest.approx(
            1.0 / process.mean_arrival_rate(), rel=1e-9
        )

    def test_on_off_source_is_bursty_but_renewal(self):
        """An IPP has SCV > 1 yet *uncorrelated* interarrival times.

        The single interrupted Poisson process is the classic example of a
        bursty renewal process: its interarrival times are i.i.d.
        two-phase hyperexponential, so the lag-1 correlation vanishes even
        though the marginal variability is far above Poisson.
        """
        process = ipp_map(packet_rate=8.0, a=0.32, b=1.0 / 412.0)
        assert process.interarrival_scv() > 1.0
        assert process.interarrival_lag1_correlation() == pytest.approx(0.0, abs=1e-9)

    def test_aggregated_sessions_are_bursty_and_correlated(self):
        """Superposing several on--off sources produces genuine interarrival correlation."""
        source = InterruptedPoissonProcess(2.0, 0.5, 0.1)
        aggregate = map_from_mmpp(aggregate_identical_ipps(source, 5))
        assert aggregate.mean_arrival_rate() == pytest.approx(
            5 * source.mean_arrival_rate(), rel=1e-9
        )
        assert aggregate.interarrival_scv() > 1.0
        assert aggregate.interarrival_lag1_correlation() > 0.0


class TestSuperposition:
    def test_superposed_rate_is_the_sum(self):
        first = ipp_map(2.0, 0.5, 0.25)
        second = poisson_map(1.0)
        combined = superpose_maps(first, second)
        assert combined.mean_arrival_rate() == pytest.approx(
            first.mean_arrival_rate() + second.mean_arrival_rate(), rel=1e-9
        )
        assert combined.number_of_phases == first.number_of_phases * second.number_of_phases

    def test_superposing_poisson_streams_gives_poisson(self):
        combined = superpose_maps(poisson_map(1.0), poisson_map(2.0))
        assert combined.interarrival_scv() == pytest.approx(1.0, rel=1e-9)
        assert combined.interarrival_lag1_correlation() == pytest.approx(0.0, abs=1e-9)


class TestSampling:
    def test_sampled_interarrival_mean_matches_analytic(self):
        process = ipp_map(packet_rate=4.0, a=1.0, b=0.5)
        rng = np.random.default_rng(3)
        times = process.sample_interarrival_times(20_000, rng)
        assert times.mean() == pytest.approx(process.mean_interarrival_time(), rel=0.05)

    def test_sample_count_and_positivity(self):
        times = ipp_map().sample_interarrival_times(100, np.random.default_rng(0))
        assert times.shape == (100,)
        assert np.all(times > 0)

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            ipp_map().sample_interarrival_times(-1)

    def test_invalid_moment_order_rejected(self):
        with pytest.raises(ValueError):
            ipp_map().interarrival_moment(0)
