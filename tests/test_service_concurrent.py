"""Concurrency tests of the hardened service tier.

One half hammers a *live* HTTP service from many threads with identical and
distinct requests and checks the bitwise contract (every answer equals the
cold CLI bytes; exactly one solve per distinct canonical key; no torn
``/stats`` reads).  The other half uses an event-gated stub solve to pin
down the HTTP status mapping -- 429 + ``Retry-After`` under backpressure,
504 on deadline, client retries -- deterministically.
"""

from __future__ import annotations

import io
import threading
import time
import urllib.error
import urllib.request
from contextlib import redirect_stdout

import pytest

from repro import cli
from repro.obs.metrics import global_registry
from repro.runtime import ResultCache
from repro.service import (
    RequestJournal,
    ScenarioService,
    ServiceClient,
    create_server,
    normalise_request,
)
from repro.store import ArtifactStore

_REQUEST = {"command": "transient", "scenario": "diurnal-24h", "preset": "smoke"}


def _cold_cli_canonical(extra_args: list[str] | None = None) -> str:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = cli.main(
            [
                "transient", "diurnal-24h", "--preset", "smoke",
                "--no-cache", "--no-store", "--canonical",
                *(extra_args or []),
            ]
        )
    assert code == 0
    return buffer.getvalue().rstrip("\n")


def _serve(service):
    server = create_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
    assert client.wait_ready()
    return server, thread, client


class _StubService(ScenarioService):
    """A service whose solve is a test-supplied function (no real solver)."""

    def __init__(self, solve_fn, **kwargs) -> None:
        self._solve_fn = solve_fn
        super().__init__(**kwargs)

    def _solve_request(self, request: dict) -> dict:
        return self._solve_fn(request)


class TestConcurrentHammer:
    def test_hammered_service_stays_bitwise_and_solves_once_per_key(
        self, tmp_path
    ):
        service = ScenarioService(
            jobs=1,
            workers=2,
            max_queue=32,
            cache=ResultCache(tmp_path / "cache"),
            store=ArtifactStore(tmp_path / "store"),
        )
        server, thread, client = _serve(service)
        try:
            # Three request groups: 4 identical cacheable, 2 identical
            # cache-bypassing (a distinct canonical key), 2 identical
            # rate-pinned (another distinct key).
            groups = {
                "full": dict(_REQUEST),
                "nocache": dict(_REQUEST, cache=False),
                "pinned": dict(_REQUEST, rate=33.3),
            }
            plan = ["full"] * 4 + ["nocache"] * 2 + ["pinned"] * 2
            responses: dict[int, dict] = {}
            stats_ok = []

            def _run(index: int, group: str) -> None:
                responses[index] = client.run(groups[group])

            def _poll_stats() -> None:
                for _ in range(20):
                    stats = client.stats()
                    admission = stats["admission"]
                    consistent = stats["requests"] == (
                        admission["accepted"]
                        + admission["coalesced"]
                        + admission["rejected"]
                    )
                    stats_ok.append(bool(stats["ok"]) and consistent)
                    time.sleep(0.05)

            threads = [
                threading.Thread(target=_run, args=(i, group), daemon=True)
                for i, group in enumerate(plan)
            ]
            threads += [
                threading.Thread(target=_poll_stats, daemon=True)
                for _ in range(2)
            ]
            for worker in threads:
                worker.start()
            for worker in threads:
                worker.join(timeout=300)
            assert len(responses) == len(plan)
            assert all(response["ok"] for response in responses.values())
            assert all(stats_ok), "a /stats read was torn or inconsistent"

            # Bitwise: every served answer equals the cold CLI bytes.
            cold_full = _cold_cli_canonical()
            cold_pinned = _cold_cli_canonical(["--rate", "33.3"])
            for index, group in enumerate(plan):
                expected = cold_pinned if group == "pinned" else cold_full
                assert responses[index]["canonical"] == expected, (
                    f"request {index} ({group}) diverged from the cold CLI"
                )

            # Exactly one solve per distinct canonical key: within each
            # group, every request either carried the solve (nonzero
            # transient.solves), coalesced onto it (empty metrics delta), or
            # was answered by the result cache (zero transient.solves).
            for group in groups:
                members = [
                    responses[i] for i, name in enumerate(plan) if name == group
                ]
                solved = sum(
                    1
                    for response in members
                    if response["metrics"]
                    .get("counters", {})
                    .get("transient.solves", 0)
                    > 0
                )
                coalesced = sum(
                    1 for response in members if response.get("coalesced")
                )
                if group == "full":
                    # Cacheable: one solve, the rest coalesced or cache hits.
                    assert solved == 1, f"{group}: {solved} solves"
                else:
                    # Cache-bypassing / pinned keys cannot be answered by the
                    # result cache, so every non-coalesced member solves.
                    assert solved + coalesced == len(members)
                    assert solved >= 1
        finally:
            server.shutdown()
            server.server_close()
            service.close()
            thread.join(timeout=10)

    def test_counters_identical_serial_vs_concurrent(self, tmp_path):
        """N identical requests account the same solver work whether they
        arrive one at a time or all at once (satellite: exact stats under
        concurrency)."""
        registry = global_registry()

        def _solver_counters(delta: dict) -> dict:
            return {
                name: value
                for name, value in delta.get("counters", {}).items()
                if not name.startswith(("cache.", "service.", "store."))
            }

        serial = ScenarioService(
            jobs=1, workers=1, cache=ResultCache(tmp_path / "serial-cache")
        )
        serial.start()
        baseline = registry.snapshot()
        for _ in range(4):
            assert serial.handle(_REQUEST)["ok"]
        serial_delta = registry.delta_since(baseline)
        serial_requests = serial.stats()["requests"]
        serial.close()

        concurrent = ScenarioService(
            jobs=1, workers=4, cache=ResultCache(tmp_path / "conc-cache")
        )
        concurrent.start()
        baseline = registry.snapshot()
        results: list[dict] = []

        def _run() -> None:
            results.append(concurrent.handle(_REQUEST))

        threads = [threading.Thread(target=_run, daemon=True) for _ in range(4)]
        for worker in threads:
            worker.start()
        for worker in threads:
            worker.join(timeout=300)
        concurrent_delta = registry.delta_since(baseline)
        concurrent_requests = concurrent.stats()["requests"]
        concurrent.close()

        assert all(response["ok"] for response in results)
        assert serial_requests == concurrent_requests == 4
        assert _solver_counters(serial_delta) == _solver_counters(
            concurrent_delta
        )


class TestHttpStatusMapping:
    def test_backpressure_answers_429_with_retry_after_header(self):
        gate = threading.Event()
        started = threading.Event()

        def _solve(request):
            started.set()
            gate.wait(timeout=30)
            return {"ok": True}

        service = _StubService(_solve, workers=1, max_queue=1)
        server, thread, client = _serve(service)
        try:
            background = [
                threading.Thread(
                    target=client.run, args=(_REQUEST,), daemon=True
                )
                for _ in range(2)
            ]
            background[0].start()
            assert started.wait(10)
            # Distinct key so it queues instead of coalescing.
            distinct = dict(_REQUEST, cache=False)
            background[1] = threading.Thread(
                target=client.run, args=(distinct,), daemon=True
            )
            background[1].start()
            deadline = time.monotonic() + 10
            while (
                service.stats()["admission"]["queued"] < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)

            overflow = urllib.request.Request(
                client.url + "/run",
                data=b'{"command": "transient", "scenario": "diurnal-24h",'
                b' "preset": "smoke", "rate": 1.5}',
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as http_error:
                urllib.request.urlopen(overflow, timeout=10)
            assert http_error.value.code == 429
            assert int(http_error.value.headers["Retry-After"]) >= 1

            # The structured body reaches ServiceClient users too.
            rejected = client.run(dict(_REQUEST, rate=2.5))
            assert rejected["ok"] is False and rejected["status"] == 429
            assert rejected["retry_after_s"] >= 1.0
        finally:
            gate.set()
            for worker in background:
                worker.join(timeout=30)
            server.shutdown()
            server.server_close()
            service.close()
            thread.join(timeout=10)

    def test_client_retries_429_until_capacity_frees(self):
        gate = threading.Event()
        started = threading.Event()

        def _solve(request):
            started.set()
            gate.wait(timeout=30)
            return {"ok": True, "scenario": request["scenario"]}

        service = _StubService(_solve, workers=1, max_queue=1)
        server, thread, client = _serve(service)
        try:
            blocker = threading.Thread(
                target=client.run, args=(_REQUEST,), daemon=True
            )
            blocker.start()
            assert started.wait(10)
            filler = threading.Thread(
                target=client.run, args=(dict(_REQUEST, cache=False),), daemon=True
            )
            filler.start()
            deadline = time.monotonic() + 10
            while (
                service.stats()["admission"]["queued"] < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)

            retrying = ServiceClient(client.url, retries=5)
            releaser = threading.Timer(0.5, gate.set)
            releaser.start()
            response = retrying.run(dict(_REQUEST, rate=7.0))
            assert response["ok"], response
            assert service.stats()["admission"]["rejected"] >= 1
            blocker.join(timeout=30)
            filler.join(timeout=30)
        finally:
            gate.set()
            server.shutdown()
            server.server_close()
            service.close()
            thread.join(timeout=10)

    def test_deadline_answers_504_with_structured_body(self):
        gate = threading.Event()

        def _solve(request):
            gate.wait(timeout=30)
            return {"ok": True}

        service = _StubService(_solve, workers=1, request_timeout=0.2)
        server, thread, client = _serve(service)
        try:
            response = client.run(_REQUEST)
            assert response["ok"] is False
            assert response["status"] == 504 and response["timed_out"]
            assert "deadline" in response["error"]
        finally:
            gate.set()
            server.shutdown()
            server.server_close()
            service.close()
            thread.join(timeout=10)

    def test_shutdown_is_never_retried(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.2, retries=3)
        attempts = []
        original = ServiceClient._request_once

        def _counting(self, path, payload):
            attempts.append(path)
            return original(self, path, payload)

        ServiceClient._request_once = _counting
        try:
            with pytest.raises(Exception):
                client.shutdown()
        finally:
            ServiceClient._request_once = original
        assert attempts == ["/shutdown"]


class TestJournalReplay:
    def test_journalled_backlog_is_replayed_into_the_cache(self, tmp_path):
        """A request accepted (journalled) but never answered -- a crash --
        is solved on the next start, so the repeat request is a cache hit
        with the cold CLI's exact bytes."""
        journal_path = tmp_path / "journal.jsonl"
        RequestJournal(journal_path).accept(normalise_request(_REQUEST))

        service = ScenarioService(
            jobs=1,
            workers=1,
            cache=ResultCache(tmp_path / "cache"),
            store=ArtifactStore(tmp_path / "store"),
            journal_path=journal_path,
        )
        server, thread, client = _serve(service)
        try:
            deadline = time.monotonic() + 300
            while time.monotonic() < deadline:
                admission = client.stats()["admission"]
                if (
                    admission["replayed"] == 1
                    and admission["journal"]["pending"] == 0
                ):
                    break
                time.sleep(0.1)
            else:
                pytest.fail("journal backlog was not replayed")

            response = client.run(_REQUEST)
            assert response["ok"]
            counters = response["metrics"]["counters"]
            assert counters.get("transient.solves", 0) == 0  # cache answered
            assert response["canonical"] == _cold_cli_canonical()
        finally:
            server.shutdown()
            server.server_close()
            service.close()
            thread.join(timeout=10)
        assert RequestJournal(journal_path).pending() == []
