"""Tests of the curve-shape validation helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.validation.shapes import (
    crossover_points,
    curves_are_ordered,
    find_threshold_crossing,
    fraction_within_tolerance,
    is_monotone,
    relative_spread,
)


class TestMonotonicity:
    def test_increasing_series(self):
        assert is_monotone([1.0, 2.0, 2.0, 3.0])
        assert not is_monotone([1.0, 0.5, 2.0])

    def test_decreasing_series(self):
        assert is_monotone([3.0, 2.0, 2.0, 0.1], increasing=False)
        assert not is_monotone([3.0, 3.5], increasing=False)

    def test_tolerance_allows_simulation_noise(self):
        noisy = [1.0, 0.99, 1.5, 1.49, 2.0]
        assert not is_monotone(noisy)
        assert is_monotone(noisy, tolerance=0.02)

    def test_short_series_are_trivially_monotone(self):
        assert is_monotone([])
        assert is_monotone([1.0])

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            is_monotone([1.0, 2.0], tolerance=-0.1)


class TestOrdering:
    def test_ordered_curves(self):
        low = [0.1, 0.2, 0.3]
        mid = [0.15, 0.25, 0.35]
        high = [0.2, 0.4, 0.5]
        assert curves_are_ordered([low, mid, high])
        assert not curves_are_ordered([high, mid, low])

    def test_tolerance(self):
        first = [0.1, 0.2]
        second = [0.099, 0.3]
        assert not curves_are_ordered([first, second])
        assert curves_are_ordered([first, second], tolerance=0.01)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            curves_are_ordered([[1.0, 2.0], [1.0]])

    def test_single_curve_is_trivially_ordered(self):
        assert curves_are_ordered([[3.0, 1.0]])


class TestCrossovers:
    def test_single_crossing_is_interpolated(self):
        x = [0.0, 1.0, 2.0]
        first = [0.0, 1.0, 2.0]
        second = [1.0, 1.0, 1.0]
        crossings = crossover_points(x, first, second)
        assert len(crossings) == 1
        assert crossings[0] == pytest.approx(1.0)

    def test_no_crossing(self):
        assert crossover_points([0, 1], [0.0, 0.1], [1.0, 1.2]) == []

    def test_touching_at_a_grid_point(self):
        crossings = crossover_points([0, 1, 2], [0.0, 1.0, 0.0], [1.0, 1.0, 1.0])
        assert crossings == [1.0]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            crossover_points([0, 1], [1.0], [0.0, 1.0])


class TestThresholdCrossing:
    def test_crossing_from_above(self):
        """Throughput degrading below 50% of its unloaded value (the paper's QoS check)."""
        rates = [0.1, 0.3, 0.5, 0.7, 1.0]
        throughput = [1.0, 0.9, 0.7, 0.4, 0.2]
        crossing = find_threshold_crossing(rates, throughput, 0.5, from_above=True)
        assert 0.5 < crossing < 0.7

    def test_crossing_from_below(self):
        rates = [0.1, 0.5, 1.0]
        blocking = [0.0, 0.005, 0.05]
        # Looking for a drop below 0.01 finds the very first point already below it.
        assert find_threshold_crossing(rates, blocking, 0.01) == pytest.approx(0.1)
        crossing = find_threshold_crossing(rates, blocking, 0.01, from_above=False)
        assert 0.5 < crossing <= 1.0

    def test_never_crossing_returns_none(self):
        assert find_threshold_crossing([0, 1], [1.0, 0.9], 0.5) is None

    def test_crossing_at_the_first_point(self):
        assert find_threshold_crossing([0.2, 0.4], [0.1, 0.05], 0.5) == pytest.approx(0.2)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            find_threshold_crossing([0.0], [1.0, 2.0], 0.5)


class TestSpreadAndTolerance:
    def test_identical_curves_have_zero_spread(self):
        assert relative_spread([[1.0, 2.0], [1.0, 2.0]]) == 0.0

    def test_spread_value(self):
        assert relative_spread([[1.0, 4.0], [1.0, 5.0]]) == pytest.approx(0.2)

    def test_single_curve(self):
        assert relative_spread([[1.0, 2.0]]) == 0.0

    def test_fraction_within_tolerance(self):
        first = [1.0, 2.0, 3.0]
        second = [1.05, 2.5, 3.01]
        assert fraction_within_tolerance(first, second, relative_tolerance=0.1) == (
            pytest.approx(2.0 / 3.0)
        )

    def test_fraction_handles_zeros(self):
        assert fraction_within_tolerance([0.0], [0.0], relative_tolerance=0.01) == 1.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            fraction_within_tolerance([1.0], [1.0, 2.0], relative_tolerance=0.1)
        with pytest.raises(ValueError):
            fraction_within_tolerance([1.0], [1.0], relative_tolerance=-0.1)
        with pytest.raises(ValueError):
            relative_spread([[1.0], [1.0, 2.0]])


class TestShapeProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=30))
    @settings(max_examples=60)
    def test_sorted_series_is_monotone(self, values):
        assert is_monotone(sorted(values))
        assert is_monotone(sorted(values, reverse=True), increasing=False)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=20),
        st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=60)
    def test_shifted_curve_is_ordered_above_the_original(self, values, shift):
        above = [value + shift for value in values]
        assert curves_are_ordered([values, above])

    @given(st.lists(st.floats(min_value=0.1, max_value=1e4), min_size=1, max_size=20))
    @settings(max_examples=60)
    def test_spread_is_between_zero_and_one(self, values):
        other = [value * 1.3 for value in values]
        spread = relative_spread([values, other])
        assert 0.0 <= spread <= 1.0
