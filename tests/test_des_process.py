"""Tests of generator-based simulation processes."""

from __future__ import annotations

import pytest

from repro.des.engine import SimulationEngine, SimulationError
from repro.des.process import Process, ProcessInterrupt, Timeout, WaitEvent


class TestBasicProcesses:
    def test_timeouts_advance_the_clock(self):
        engine = SimulationEngine()
        trace = []

        def worker():
            trace.append(engine.now)
            yield Timeout(2.0)
            trace.append(engine.now)
            yield Timeout(3.0)
            trace.append(engine.now)

        Process(engine, worker())
        engine.run()
        assert trace == [0.0, 2.0, 5.0]

    def test_timeout_value_is_delivered(self):
        engine = SimulationEngine()
        seen = []

        def worker():
            value = yield Timeout(1.0, value="tick")
            seen.append(value)

        Process(engine, worker())
        engine.run()
        assert seen == ["tick"]

    def test_return_value_becomes_result(self):
        engine = SimulationEngine()

        def worker():
            yield Timeout(1.0)
            return 42

        process = Process(engine, worker())
        engine.run()
        assert process.finished
        assert process.result == 42

    def test_result_before_completion_raises(self):
        engine = SimulationEngine()

        def worker():
            yield Timeout(1.0)

        process = Process(engine, worker())
        with pytest.raises(SimulationError):
            _ = process.result

    def test_requires_generator(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError, match="generator"):
            Process(engine, lambda: None)

    def test_unsupported_yield_raises(self):
        engine = SimulationEngine()

        def worker():
            yield 42

        Process(engine, worker())
        with pytest.raises(SimulationError, match="unsupported"):
            engine.run()

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)


class TestWaitingOnEvents:
    def test_process_waits_for_event_value(self):
        engine = SimulationEngine()
        results = []

        def waiter(event):
            value = yield event
            results.append((engine.now, value))

        event = engine.event()
        Process(engine, waiter(event))
        engine.schedule(4.0, event.succeed, "ready")
        engine.run()
        assert results == [(4.0, "ready")]

    def test_wait_event_wrapper(self):
        engine = SimulationEngine()
        results = []

        def waiter(event):
            value = yield WaitEvent(event)
            results.append(value)

        event = engine.event()
        Process(engine, waiter(event))
        engine.schedule(1.0, event.succeed, 5)
        engine.run()
        assert results == [5]

    def test_process_waits_for_another_process(self):
        engine = SimulationEngine()
        order = []

        def child():
            yield Timeout(3.0)
            order.append("child done")
            return "payload"

        def parent():
            value = yield Process(engine, child(), name="child")
            order.append(f"parent got {value}")

        Process(engine, parent(), name="parent")
        engine.run()
        assert order == ["child done", "parent got payload"]

    def test_many_concurrent_processes(self):
        engine = SimulationEngine()
        finish_times = []

        def worker(delay):
            yield Timeout(delay)
            finish_times.append(engine.now)

        for delay in (5.0, 1.0, 3.0):
            Process(engine, worker(delay))
        engine.run()
        assert finish_times == [1.0, 3.0, 5.0]


class TestInterrupts:
    def test_interrupt_is_raised_inside_generator(self):
        engine = SimulationEngine()
        outcome = []

        def worker():
            try:
                yield Timeout(10.0)
                outcome.append("finished")
            except ProcessInterrupt as interrupt:
                outcome.append(f"interrupted by {interrupt.cause}")

        process = Process(engine, worker())
        engine.schedule(2.0, process.interrupt, "voice call")
        engine.run()
        assert outcome == ["interrupted by voice call"]
        assert process.finished

    def test_unhandled_interrupt_terminates_quietly(self):
        engine = SimulationEngine()

        def worker():
            yield Timeout(10.0)

        process = Process(engine, worker())
        engine.schedule(1.0, process.interrupt)
        engine.run()
        assert process.finished
        assert process.result is None

    def test_interrupting_finished_process_is_noop(self):
        engine = SimulationEngine()

        def worker():
            yield Timeout(1.0)
            return "done"

        process = Process(engine, worker())
        engine.run()
        process.interrupt("late")
        engine.run()
        assert process.result == "done"

    def test_stale_wakeup_after_interrupt_is_ignored(self):
        """The original timeout firing after an interrupt must not resume the process."""
        engine = SimulationEngine()
        resumed = []

        def worker():
            try:
                yield Timeout(5.0)
                resumed.append("timeout fired")
            except ProcessInterrupt:
                yield Timeout(10.0)
                resumed.append("post-interrupt sleep done")

        process = Process(engine, worker())
        engine.schedule(1.0, process.interrupt)
        engine.run()
        assert resumed == ["post-interrupt sleep done"]
        assert engine.now == pytest.approx(11.0)
