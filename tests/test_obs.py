"""Tests of the observability layer: spans, metrics merge, run ledger.

The standing contract under test is that instrumentation never changes
numbers: every result here is produced twice -- once with the null tracer
and once under an active :class:`~repro.obs.Tracer` plus a fresh metrics
registry -- and compared bitwise through a canonical JSON rendering.
"""

from __future__ import annotations

import json
import time

import pytest

from repro import obs
from repro.experiments.scale import ExperimentScale
from repro.network import hexagonal_cluster
from repro.network.sweep import network_sweep_payloads
from repro.runtime import run_sweep, scenario
from repro.transient.sweep import transient_sweep_payloads

SMOKE = ExperimentScale.smoke()


def _canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def _traced(function, *args, **kwargs):
    """Run ``function`` under an active tracer + fresh registry."""
    tracer = obs.Tracer()
    with obs.activate_tracer(tracer), obs.activate_registry(obs.MetricsRegistry()):
        result = function(*args, **kwargs)
    return result, tracer


class TestBitwiseUnderTracing:
    def test_figure_sweep_identical_on_and_off(self):
        spec = scenario("figure12").replace(arrival_rates=(0.3, 0.7))
        plain = run_sweep(spec, SMOKE, cache=None).as_dict()
        traced, tracer = _traced(run_sweep, spec, SMOKE, cache=None)
        assert _canonical(traced.as_dict()) == _canonical(plain)
        # The tracer actually saw the work it claims not to have perturbed.
        assert "model.steady_state" in tracer.span_totals()

    def test_network_scenario_identical_on_and_off(self):
        spec = scenario("homogeneous-7").replace(
            network=hexagonal_cluster(3), arrival_rates=(0.4,)
        )
        plain = network_sweep_payloads(spec, SMOKE, jobs=1)
        traced, tracer = _traced(network_sweep_payloads, spec, SMOKE, jobs=1)
        assert _canonical(traced) == _canonical(plain)
        assert "network.outer_iteration" in tracer.span_totals()

    def test_transient_scenario_identical_on_and_off(self):
        spec = scenario("busy-hour-ramp")
        # Prime the process-wide propagator cache first: a cold and a warm
        # run legitimately differ in bookkeeping (matvecs vs. replays), so
        # the on/off pair must start from the same cache state.
        transient_sweep_payloads(spec, SMOKE, rates=(0.5,))
        plain = transient_sweep_payloads(spec, SMOKE, rates=(0.5,))
        traced, tracer = _traced(
            transient_sweep_payloads, spec, SMOKE, rates=(0.5,)
        )
        assert _canonical(traced) == _canonical(plain)
        assert "transient.solve" in tracer.span_totals()


class TestSpans:
    def test_nesting_attributes_and_totals(self):
        tracer = obs.Tracer()
        with tracer.span("outer", kind="test"):
            for _ in range(2):
                with tracer.span("inner"):
                    pass
        (root,) = tracer.tree()
        assert root.name == "outer"
        assert root.attributes == {"kind": "test"}
        assert [child.name for child in root.children] == ["inner", "inner"]
        totals = tracer.span_totals()
        assert totals["outer"]["count"] == 1
        assert totals["inner"]["count"] == 2
        assert totals["outer"]["wall_s"] >= totals["inner"]["wall_s"] >= 0.0

    def test_span_survives_exceptions(self):
        tracer = obs.Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert tracer.span_totals()["doomed"]["count"] == 1

    def test_null_tracer_is_ambient_default_and_free_of_state(self):
        tracer = obs.current_tracer()
        assert tracer is obs.NULL_TRACER
        with tracer.span("anything", cell=3):
            pass
        assert tracer.span_totals() == {}
        assert tracer.tree() == []


class TestMetricsMerge:
    #: Counters that measure solver *work*, which the bitwise contract pins
    #: across job counts.  Construction counters (template builds, scaffold
    #: counts) legitimately differ: every worker process builds its own.
    WORK_PREFIXES = ("model.", "solver.")

    @staticmethod
    def _work_counters(registry: obs.MetricsRegistry) -> dict:
        return {
            name: value
            for name, value in registry.snapshot()["counters"].items()
            if name.startswith(TestMetricsMerge.WORK_PREFIXES)
        }

    def test_parallel_counters_merge_to_serial_totals(self):
        spec = scenario("figure12").replace(arrival_rates=(0.2, 0.4, 0.6, 0.8))
        registries = {}
        for jobs in (1, 4):
            registries[jobs] = obs.MetricsRegistry()
            with obs.activate_registry(registries[jobs]):
                run_sweep(spec, SMOKE, jobs=jobs, cache=None)
        serial = self._work_counters(registries[1])
        parallel = self._work_counters(registries[4])
        assert serial["model.solves"] == 4
        assert serial == parallel

    def test_absorb_export_is_pid_guarded(self):
        registry = obs.MetricsRegistry()
        baseline = registry.snapshot()
        registry.count("work.units", 3)
        export = obs.export_delta(baseline, registry)
        # Same process: the delta is already in the registry, must not double.
        assert obs.absorb_export(export, registry) is False
        assert registry.snapshot()["counters"]["work.units"] == 3
        # Simulate a worker's export crossing the process boundary.
        foreign = dict(export, pid=export["pid"] + 1)
        assert obs.absorb_export(foreign, registry) is True
        assert registry.snapshot()["counters"]["work.units"] == 6

    def test_histograms_combine_across_merge(self):
        worker = obs.MetricsRegistry()
        baseline = worker.snapshot()
        for value in (1.0, 3.0):
            worker.observe("chunk.points", value)
        parent = obs.MetricsRegistry()
        parent.observe("chunk.points", 8.0)
        export = dict(obs.export_delta(baseline, worker), pid=-1)
        assert obs.absorb_export(export, parent) is True
        histogram = parent.snapshot()["histograms"]["chunk.points"]
        assert histogram["count"] == 3
        assert histogram["sum"] == 12.0
        assert histogram["min"] == 1.0 and histogram["max"] == 8.0


class TestLedger:
    def _record(self, **overrides):
        record = obs.make_record(
            command="solve",
            target="unit-test",
            preset="smoke",
            args={"jobs": 2},
            spec={"scenario": "figure12"},
            wall_s=1.25,
            cpu_s=1.1,
            span_totals={"cli.solve": {"count": 1, "wall_s": 1.25, "cpu_s": 1.1}},
            metrics={"counters": {"model.solves": 1}, "gauges": {}, "histograms": {}},
        )
        record.update(overrides)
        return record

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "ledger" / "runs.jsonl"
        first = self._record()
        second = self._record(wall_s=2.5)
        obs.append_record(str(path), first)
        obs.append_record(str(path), second)
        assert obs.read_ledger(str(path)) == [first, second]
        # Every line is valid standalone JSON (the JSONL contract).
        lines = path.read_text().splitlines()
        assert [json.loads(line) for line in lines] == [first, second]

    def test_future_schema_version_is_refused(self, tmp_path):
        record = self._record(schema_version=obs.SCHEMA_VERSION + 1)
        with pytest.raises(ValueError, match="schema_version"):
            obs.validate_record(record)
        path = tmp_path / "runs.jsonl"
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ValueError):
            obs.read_ledger(str(path))

    def test_wrong_schema_and_missing_fields_are_refused(self):
        with pytest.raises(ValueError, match="schema"):
            obs.validate_record(self._record(schema="something-else"))
        broken = self._record()
        del broken["spans"]
        with pytest.raises(ValueError, match="spans"):
            obs.validate_record(broken)

    def test_resilience_block_derives_from_counters(self):
        metrics = {
            "counters": {
                "resilience.attempts": 5,
                "resilience.retries": 2,
                "resilience.pool_respawns": 1,
                "faults.injected": 1,
            }
        }
        block = obs.resilience_block(metrics)
        assert block["attempts"] == 5
        assert block["retries"] == 2
        assert block["pool_respawns"] == 1
        assert block["faults_injected"] == 1
        assert block["degraded"] == 0  # absent counters read as zero
        record = self._record()  # default metrics carry no resilience counters
        assert set(record["resilience"]) == set(block)
        assert not any(record["resilience"].values())
        eventful = obs.make_record(
            command="sweep",
            target="unit-test",
            wall_s=1.0,
            metrics=metrics,
        )
        assert eventful["resilience"] == block
        obs.validate_record(eventful)
        report = obs.render_report(eventful)
        assert "resilience" in report and "retries" in report

    def test_store_block_derives_from_counters(self):
        metrics = {
            "counters": {
                "store.hits": 7,
                "store.memory_hits": 4,
                "store.writes": 3,
                "store.bytes_written": 4096,
            }
        }
        block = obs.store_block(metrics)
        assert block["hits"] == 7
        assert block["memory_hits"] == 4
        assert block["writes"] == 3
        assert block["bytes_written"] == 4096
        assert block["evictions"] == 0  # absent counters read as zero
        record = self._record()  # default metrics carry no store counters
        assert set(record["store"]) == set(block)
        assert not any(record["store"].values())
        eventful = obs.make_record(
            command="transient",
            target="unit-test",
            wall_s=1.0,
            metrics=metrics,
        )
        assert eventful["store"] == block
        obs.validate_record(eventful)
        report = obs.render_report(eventful)
        assert "store" in report and "memory_hits" in report

    def test_compare_and_renderings(self, tmp_path):
        fast = self._record()
        slow = self._record(wall_s=2.5)
        slow["metrics"]["counters"]["model.solves"] = 3
        diff = obs.compare(fast, slow)
        assert diff["wall_delta_s"] == pytest.approx(1.25)
        assert diff["counters"]["model.solves"]["delta"] == 2
        # File sources resolve to their last record.
        path = tmp_path / "runs.jsonl"
        obs.append_record(str(path), fast)
        obs.append_record(str(path), slow)
        assert obs.compare(fast, str(path)) == diff
        assert "model.solves" in obs.render_report(slow)
        assert "wall" in obs.render_compare(diff)


class TestDisabledOverhead:
    def test_null_span_path_is_negligible_next_to_a_solve(self):
        """100k disabled span sites cost <2% of one default-preset solve.

        A real solve passes a handful of span sites, so comparing 100k null
        spans against one solve bounds the true disabled overhead several
        orders of magnitude below the 2% budget without a flaky A/B timing.
        """
        from repro.core.model import GprsMarkovModel
        from repro.core.parameters import GprsModelParameters
        from repro.traffic.presets import TRAFFIC_MODEL_3

        params = GprsModelParameters.from_traffic_model(TRAFFIC_MODEL_3, 0.5)
        start = time.perf_counter()
        GprsMarkovModel(params).measures()
        solve_seconds = time.perf_counter() - start

        start = time.perf_counter()
        for _ in range(100_000):
            with obs.current_tracer().span("hot.path"):
                pass
        null_seconds = time.perf_counter() - start
        assert null_seconds < 0.02 * solve_seconds
