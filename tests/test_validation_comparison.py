"""Tests of the model-vs-simulation comparison utilities."""

from __future__ import annotations

import pytest

from repro.validation.comparison import (
    CurveComparison,
    PointComparison,
    ValidationReport,
    compare_series,
)


class TestPointComparison:
    def test_inside_interval(self):
        point = PointComparison(x=0.5, analytical=1.0, simulation_mean=1.1,
                                confidence_half_width=0.2)
        assert point.inside_interval
        assert point.absolute_error == pytest.approx(0.1)
        assert point.relative_error == pytest.approx(0.1 / 1.1)

    def test_outside_interval(self):
        point = PointComparison(x=0.5, analytical=2.0, simulation_mean=1.0,
                                confidence_half_width=0.5)
        assert not point.inside_interval

    def test_zero_simulation_mean(self):
        exact = PointComparison(x=0.0, analytical=0.0, simulation_mean=0.0,
                                confidence_half_width=0.0)
        assert exact.relative_error == 0.0
        off = PointComparison(x=0.0, analytical=0.5, simulation_mean=0.0,
                              confidence_half_width=0.0)
        assert off.relative_error == float("inf")


class TestCurveComparison:
    def make_curve(self) -> CurveComparison:
        return compare_series(
            "carried_data_traffic",
            x_values=[0.1, 0.5, 1.0],
            analytical=[0.5, 1.4, 2.2],
            simulation_means=[0.55, 1.5, 3.0],
            confidence_half_widths=[0.1, 0.2, 0.3],
        )

    def test_coverage_counts_points_inside_intervals(self):
        curve = self.make_curve()
        # Points 1 and 2 are inside, point 3 (2.2 vs 3.0 +- 0.3) is not.
        assert curve.coverage == pytest.approx(2.0 / 3.0)

    def test_relative_errors(self):
        curve = self.make_curve()
        assert curve.max_relative_error == pytest.approx(0.8 / 3.0)
        assert curve.mean_relative_error > 0

    def test_passes_via_coverage_or_error(self):
        good = compare_series("m", [0.0], [1.0], [1.0], [0.5])
        assert good.passes()
        bad = compare_series("m", [0.0, 1.0], [1.0, 5.0], [3.0, 1.0], [0.1, 0.1])
        assert not bad.passes(min_coverage=0.9, max_mean_relative_error=0.1)

    def test_empty_curve_rejected(self):
        with pytest.raises(ValueError):
            CurveComparison(metric="x", points=())

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            compare_series("m", [0.0, 1.0], [1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            compare_series("m", [0.0], [1.0], [1.0], [0.1, 0.2])

    def test_default_half_widths_are_zero(self):
        curve = compare_series("m", [0.0], [1.0], [1.0])
        assert curve.points[0].confidence_half_width == 0.0
        assert curve.points[0].inside_interval


class TestValidationReport:
    def make_report(self) -> ValidationReport:
        curves = (
            compare_series("carried_data_traffic", [0.1], [1.0], [1.05], [0.1]),
            compare_series("packet_loss_probability", [0.1], [0.02], [0.2], [0.05]),
        )
        return ValidationReport(experiment="figure 6 (scaled)", curves=curves)

    def test_lookup_by_metric(self):
        report = self.make_report()
        assert report.curve("carried_data_traffic").coverage == 1.0
        with pytest.raises(KeyError):
            report.curve("unknown")

    def test_overall_coverage(self):
        assert self.make_report().overall_coverage() == pytest.approx(0.5)

    def test_text_rendering_mentions_every_metric(self):
        text = self.make_report().to_text()
        assert "figure 6 (scaled)" in text
        assert "carried_data_traffic" in text
        assert "packet_loss_probability" in text
        assert "overall coverage" in text


class TestAgainstRealModelAndSimulator:
    def test_compare_model_with_simulation_smoke(self):
        """End-to-end: tiny model vs. tiny simulation through the comparison API."""
        from repro.core.model import GprsMarkovModel
        from repro.core.parameters import GprsModelParameters
        from repro.simulator.config import SimulationConfig
        from repro.simulator.simulation import GprsNetworkSimulator
        from repro.traffic.presets import TRAFFIC_MODEL_3
        from repro.validation.comparison import compare_model_with_simulation

        params = GprsModelParameters.from_traffic_model(
            TRAFFIC_MODEL_3, 0.2, buffer_size=8, max_gprs_sessions=3
        )
        measures = GprsMarkovModel(params).measures()
        simulation = GprsNetworkSimulator(
            SimulationConfig(
                cell_parameters=params,
                number_of_cells=3,
                simulation_time_s=1500.0,
                warmup_time_s=150.0,
                batches=3,
                seed=5,
            )
        ).run()
        report = compare_model_with_simulation(
            "smoke", measures, simulation,
            metrics=("carried_voice_traffic", "carried_data_traffic"),
        )
        assert len(report.curves) == 2
        assert 0.0 <= report.overall_coverage() <= 1.0
        assert report.curve("carried_voice_traffic").points[0].relative_error < 1.0
