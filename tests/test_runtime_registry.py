"""Tests of the scenario registry and spec serialisation."""

from __future__ import annotations

import json

import pytest

from repro.experiments.runner import EXPERIMENTS
from repro.experiments.scale import ExperimentScale
from repro.runtime import (
    SCENARIOS,
    ScenarioSpec,
    list_scenarios,
    register,
    scenario,
)

SMOKE = ExperimentScale.smoke()

PAPER_FIGURES = tuple(f"figure{i}" for i in range(5, 16))


class TestExperimentRegistry:
    def test_every_paper_artefact_is_registered(self):
        """Tables 2-3 and Figures 5-15 are all runnable via ``gprs-repro run``."""
        assert set(EXPERIMENTS) == {"table2", "table3", *PAPER_FIGURES}


class TestScenarioRegistry:
    def test_every_paper_figure_has_a_scenario(self):
        for name in PAPER_FIGURES:
            assert name in SCENARIOS, f"paper figure {name} missing from SCENARIOS"
            assert "paper" in SCENARIOS[name].tags

    def test_at_least_six_extension_scenarios(self):
        extensions = list_scenarios(tag="extension")
        assert len(extensions) >= 6
        assert not any("paper" in spec.tags for spec in extensions)

    def test_names_match_registry_keys(self):
        for name, spec in SCENARIOS.items():
            assert spec.name == name

    def test_every_scenario_materialises_under_every_preset(self):
        for preset in (SMOKE, ExperimentScale.default(), ExperimentScale.paper()):
            for spec in SCENARIOS.values():
                params = spec.parameters(preset)
                assert params.total_call_arrival_rate == spec.sweep_rates(preset)[0]

    def test_every_scenario_metric_is_a_real_measure(self):
        from repro.core.measures import GprsPerformanceMeasures

        fields = set(GprsPerformanceMeasures.__dataclass_fields__)
        for spec in SCENARIOS.values():
            missing = set(spec.metrics) - fields
            assert not missing, f"{spec.name} references unknown metrics {missing}"

    def test_scenario_lookup(self):
        assert scenario("figure12").gprs_fraction == 0.05
        with pytest.raises(ValueError, match="unknown scenario"):
            scenario("does-not-exist")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register(SCENARIOS["figure12"])

    def test_list_scenarios_sorted_and_filtered(self):
        names = [spec.name for spec in list_scenarios()]
        assert names == sorted(names)
        assert all("paper" in spec.tags for spec in list_scenarios(tag="paper"))


class TestSpecRoundTrip:
    def test_every_registered_scenario_round_trips(self):
        """spec -> dict -> spec must be the identity for the whole registry."""
        for spec in SCENARIOS.values():
            data = spec.to_dict()
            json.dumps(data)  # must be plain JSON
            assert ScenarioSpec.from_dict(data) == spec

    def test_round_trip_survives_json_encoding(self):
        for spec in SCENARIOS.values():
            data = json.loads(json.dumps(spec.to_dict()))
            assert ScenarioSpec.from_dict(data) == spec

    def test_round_trip_with_every_optional_field_set(self):
        spec = ScenarioSpec(
            name="custom",
            description="fully specified",
            traffic_model=2,
            traffic_overrides={"reading_time_s": 1.5},
            gprs_fraction=0.2,
            reserved_pdch=3,
            number_of_channels=24,
            buffer_size=64,
            max_sessions=12,
            tcp_threshold=0.9,
            coding_scheme="CS-3",
            block_error_rate=0.05,
            solver="direct",
            arrival_rates=(0.25, 0.75),
            metrics=("queueing_delay",),
            seed=7,
            tags=("custom", "extension"),
        )
        assert ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_from_dict_rejects_unknown_fields(self):
        data = scenario("figure12").to_dict()
        data["typo_field"] = 1
        with pytest.raises(ValueError, match="unknown scenario field"):
            ScenarioSpec.from_dict(data)


class TestSpecValidation:
    def test_invalid_traffic_model(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", description="", traffic_model=4)

    def test_invalid_traffic_override(self):
        with pytest.raises(ValueError, match="unknown traffic override"):
            ScenarioSpec(name="x", description="", traffic_overrides={"nope": 1.0})

    def test_empty_axis_and_metrics_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", description="", arrival_rates=())
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", description="", metrics=())

    def test_point_seed_is_deterministic(self):
        spec = scenario("figure12")
        assert spec.point_seed(3) == spec.point_seed(3)
        assert spec.point_seed(0) != spec.point_seed(1)

    def test_scale_caps_apply_to_materialised_parameters(self):
        params = scenario("large-buffer").parameters(SMOKE)
        assert params.buffer_size == SMOKE.effective_buffer_size(400)
        paper = scenario("large-buffer").parameters(ExperimentScale.paper())
        assert paper.buffer_size == 400
