"""Tests of the QoS dimensioning API and the adaptive PDCH controller."""

from __future__ import annotations

import pytest

from repro.core.parameters import GprsModelParameters
from repro.experiments.dimensioning import (
    AdaptivePdchController,
    QosProfile,
    evaluate_configuration,
    maximum_supported_arrival_rate,
    recommend_reserved_pdch,
)
from repro.traffic.presets import TRAFFIC_MODEL_3


def cell_parameters(**overrides) -> GprsModelParameters:
    values = dict(
        total_call_arrival_rate=0.3,
        buffer_size=8,
        max_gprs_sessions=4,
        gprs_fraction=0.05,
    )
    values.update(overrides)
    return GprsModelParameters.from_traffic_model(TRAFFIC_MODEL_3, **values)


class TestQosProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            QosProfile(max_throughput_degradation=1.0)
        with pytest.raises(ValueError):
            QosProfile(max_voice_blocking=0.0)
        with pytest.raises(ValueError):
            QosProfile(max_packet_loss=1.5)
        with pytest.raises(ValueError):
            QosProfile(max_queueing_delay_s=0.0)

    def test_defaults_follow_the_paper_example(self):
        profile = QosProfile()
        assert profile.max_throughput_degradation == pytest.approx(0.5)


class TestEvaluateConfiguration:
    def test_light_load_satisfies_default_profile(self):
        assessment = evaluate_configuration(
            cell_parameters(total_call_arrival_rate=0.05), QosProfile()
        )
        assert assessment.satisfied
        assert assessment.violated_criteria == ()
        assert assessment.throughput_degradation < 0.5

    def test_heavy_load_without_reservation_violates_profile(self):
        assessment = evaluate_configuration(
            cell_parameters(total_call_arrival_rate=1.5, reserved_pdch=0),
            QosProfile(max_throughput_degradation=0.3, max_voice_blocking=1.0),
        )
        assert not assessment.satisfied
        assert "throughput degradation" in assessment.violated_criteria

    def test_optional_criteria_are_enforced(self):
        profile = QosProfile(
            max_throughput_degradation=0.99,
            max_voice_blocking=1.0,
            max_packet_loss=1e-9,
        )
        assessment = evaluate_configuration(
            cell_parameters(total_call_arrival_rate=1.0), profile
        )
        assert not assessment.satisfied
        assert "packet loss" in assessment.violated_criteria

    def test_precomputed_reference_is_respected(self):
        params = cell_parameters()
        assessment = evaluate_configuration(
            params, QosProfile(), reference_throughput_kbit_s=100.0
        )
        # Against an absurdly high reference everything looks degraded.
        assert assessment.throughput_degradation > 0.5


class TestDimensioningQueries:
    def test_maximum_supported_rate_decreases_with_fewer_pdchs(self):
        profile = QosProfile(max_throughput_degradation=0.4, max_voice_blocking=1.0)
        rates = (0.1, 0.3, 0.6, 0.9, 1.2)
        with_reservation = maximum_supported_arrival_rate(
            cell_parameters(reserved_pdch=4), profile, rates
        )
        without_reservation = maximum_supported_arrival_rate(
            cell_parameters(reserved_pdch=0), profile, rates
        )
        assert with_reservation >= without_reservation

    def test_empty_rate_sweep_rejected(self):
        with pytest.raises(ValueError):
            maximum_supported_arrival_rate(cell_parameters(), QosProfile(), ())

    def test_recommendation_is_minimal(self):
        profile = QosProfile(max_throughput_degradation=0.6, max_voice_blocking=1.0)
        recommended = recommend_reserved_pdch(
            cell_parameters(), profile, target_arrival_rate=0.6,
            candidate_reservations=(0, 1, 2, 4),
        )
        assert recommended is not None
        if recommended > 0:
            weaker = cell_parameters(
                reserved_pdch=recommended - 1 if recommended - 1 in (0, 1, 2, 4) else 0,
                total_call_arrival_rate=0.6,
            )
            assert not evaluate_configuration(weaker, profile).satisfied

    def test_impossible_profile_returns_none(self):
        impossible = QosProfile(
            max_throughput_degradation=0.01, max_voice_blocking=1.0
        )
        assert recommend_reserved_pdch(
            cell_parameters(), impossible, target_arrival_rate=2.5,
            candidate_reservations=(0, 1, 2),
        ) is None


class TestAdaptiveController:
    def test_reservation_grows_with_load(self):
        profile = QosProfile(max_throughput_degradation=0.5, max_voice_blocking=1.0)
        controller = AdaptivePdchController(
            cell_parameters(), profile, candidate_reservations=(0, 1, 2, 4),
        )
        low = controller.observe(0.1)
        high = controller.observe(1.2)
        assert high.reserved_pdch >= low.reserved_pdch
        assert controller.current_reserved_pdch == high.reserved_pdch
        assert len(controller.history) == 2

    def test_hysteresis_keeps_previous_decision(self):
        profile = QosProfile(max_throughput_degradation=0.5, max_voice_blocking=1.0)
        controller = AdaptivePdchController(
            cell_parameters(), profile, hysteresis=0.2,
            candidate_reservations=(0, 1, 2, 4),
        )
        first = controller.observe(0.5)
        nudged = controller.observe(0.55)  # within 20% of the previous load
        assert nudged.reserved_pdch == first.reserved_pdch

    def test_run_processes_a_whole_trace(self):
        profile = QosProfile(max_throughput_degradation=0.5, max_voice_blocking=1.0)
        controller = AdaptivePdchController(
            cell_parameters(), profile, candidate_reservations=(0, 1, 2, 4),
        )
        decisions = controller.run([0.1, 0.4, 0.9])
        assert len(decisions) == 3
        assert all(decision.reserved_pdch in (0, 1, 2, 4) for decision in decisions)

    def test_unsatisfiable_load_reports_best_effort(self):
        impossible = QosProfile(max_throughput_degradation=0.01, max_voice_blocking=1.0)
        controller = AdaptivePdchController(
            cell_parameters(), impossible, candidate_reservations=(0, 1, 2),
        )
        decision = controller.observe(2.0)
        assert not decision.satisfied
        assert decision.reserved_pdch == 2

    def test_negative_load_rejected(self):
        controller = AdaptivePdchController(
            cell_parameters(), QosProfile(), candidate_reservations=(0, 1),
        )
        with pytest.raises(ValueError):
            controller.observe(-0.1)

    def test_invalid_hysteresis_rejected(self):
        with pytest.raises(ValueError):
            AdaptivePdchController(cell_parameters(), QosProfile(), hysteresis=-0.1)
