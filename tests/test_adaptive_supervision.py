"""Tests of the load supervision procedure."""

from __future__ import annotations

import pytest

from repro.adaptive.supervision import LoadSupervisor


class TestValidation:
    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            LoadSupervisor(window_s=0.0)
        with pytest.raises(ValueError):
            LoadSupervisor(minimum_samples=0)
        with pytest.raises(ValueError):
            LoadSupervisor(fallback_rate=-0.1)

    def test_invalid_observations_rejected(self):
        supervisor = LoadSupervisor()
        with pytest.raises(ValueError):
            supervisor.record_call_arrival(-1.0)
        with pytest.raises(ValueError):
            supervisor.record_pdch_utilization(0.0, 1.5)
        with pytest.raises(ValueError):
            supervisor.estimate(-1.0)

    def test_out_of_order_observations_rejected(self):
        supervisor = LoadSupervisor()
        supervisor.record_call_arrival(100.0)
        with pytest.raises(ValueError):
            supervisor.record_call_arrival(50.0)


class TestRateEstimation:
    def test_constant_rate_is_recovered(self):
        supervisor = LoadSupervisor(window_s=100.0, minimum_samples=5)
        # One arrival every 2 s -> 0.5 calls/s.
        for i in range(1, 201):
            supervisor.record_call_arrival(i * 2.0)
        estimate = supervisor.estimate(400.0)
        assert estimate.call_arrival_rate == pytest.approx(0.5, rel=0.1)
        # Only the last window counts (the arrival exactly on the window edge stays in).
        assert estimate.samples in (50, 51)

    def test_old_arrivals_are_evicted(self):
        supervisor = LoadSupervisor(window_s=10.0, minimum_samples=1)
        for t in (0.0, 1.0, 2.0):
            supervisor.record_call_arrival(t)
        late = supervisor.estimate(100.0)
        assert late.samples == 0

    def test_fallback_rate_before_enough_samples(self):
        supervisor = LoadSupervisor(window_s=100.0, minimum_samples=10, fallback_rate=0.7)
        supervisor.record_call_arrival(1.0)
        assert supervisor.estimate(2.0).call_arrival_rate == pytest.approx(0.7)

    def test_short_observation_period_uses_the_elapsed_time(self):
        supervisor = LoadSupervisor(window_s=1000.0, minimum_samples=2)
        supervisor.record_call_arrival(1.0)
        supervisor.record_call_arrival(2.0)
        supervisor.record_call_arrival(3.0)
        supervisor.record_call_arrival(4.0)
        estimate = supervisor.estimate(4.0)
        assert estimate.call_arrival_rate == pytest.approx(1.0, rel=0.1)


class TestUtilizationEstimation:
    def test_mean_of_window_samples(self):
        supervisor = LoadSupervisor(window_s=60.0)
        supervisor.record_pdch_utilization(0.0, 0.2)
        supervisor.record_pdch_utilization(10.0, 0.4)
        supervisor.record_pdch_utilization(20.0, 0.9)
        assert supervisor.estimate(30.0).pdch_utilization == pytest.approx(0.5)

    def test_no_samples_gives_zero(self):
        assert LoadSupervisor().estimate(10.0).pdch_utilization == 0.0

    def test_old_samples_are_forgotten(self):
        supervisor = LoadSupervisor(window_s=30.0)
        supervisor.record_pdch_utilization(0.0, 1.0)
        supervisor.record_pdch_utilization(100.0, 0.2)
        assert supervisor.estimate(100.0).pdch_utilization == pytest.approx(0.2)
