"""Tests of the simplified TCP Reno flow control."""

from __future__ import annotations

import pytest

from repro.des.engine import SimulationEngine
from repro.simulator.config import TcpConfig
from repro.simulator.tcp import TcpConnection


class FakeCell:
    """Cell stub with a configurable buffer limit and manual delivery control."""

    def __init__(self, engine, capacity=100):
        self.engine = engine
        self.capacity = capacity
        self.queue = []
        self.rejected = 0

    def enqueue_packet(self, packet) -> bool:
        if len(self.queue) >= self.capacity:
            self.rejected += 1
            return False
        self.queue.append(packet)
        return True

    def deliver_next(self):
        packet = self.queue.pop(0)
        packet.session.on_packet_delivered(packet)

    def deliver_all(self):
        while self.queue:
            self.deliver_next()


def make_connection(engine, cell, **config_overrides):
    config = TcpConfig(**config_overrides)
    return TcpConnection(engine, cell_provider=lambda: cell, config=config,
                         packet_size_bytes=480), config


def settle(engine: SimulationEngine, horizon: float = 0.01) -> None:
    """Process the pending zero-delay ACKs without waiting for retransmission timers.

    An unbounded ``engine.run()`` would never return while packets are still
    outstanding, because the retransmission timer keeps rescheduling itself.
    """
    engine.run(until=engine.now + horizon)


class TestWindowBehaviour:
    def test_initial_window_limits_packets_in_flight(self):
        engine = SimulationEngine()
        cell = FakeCell(engine)
        connection, _ = make_connection(engine, cell, initial_window=2)
        for _ in range(10):
            connection.send_application_packet()
        assert connection.packets_in_flight == 2
        assert len(cell.queue) == 2
        assert connection.unsent_packets == 8

    def test_slow_start_doubles_window_per_round_trip(self):
        engine = SimulationEngine()
        cell = FakeCell(engine)
        connection, _ = make_connection(engine, cell, initial_window=1,
                                        initial_ssthresh=64, wired_round_trip_s=0.0)
        for _ in range(40):
            connection.send_application_packet()
        # Round 1: 1 packet in flight; each delivery grows the window by one.
        assert len(cell.queue) == 1
        cell.deliver_all()
        settle(engine)
        assert connection.congestion_window == pytest.approx(2.0)
        cell.deliver_all()
        settle(engine)
        assert connection.congestion_window == pytest.approx(4.0)
        cell.deliver_all()
        settle(engine)
        assert connection.congestion_window == pytest.approx(8.0)

    def test_congestion_avoidance_grows_slowly(self):
        engine = SimulationEngine()
        cell = FakeCell(engine)
        connection, _ = make_connection(engine, cell, initial_window=4,
                                        initial_ssthresh=4, wired_round_trip_s=0.0)
        for _ in range(8):
            connection.send_application_packet()
        cell.deliver_all()
        settle(engine)
        # Above ssthresh each ACK adds roughly 1/cwnd: one round adds about one segment.
        assert 4.0 < connection.congestion_window <= 5.5

    def test_window_capped_at_maximum(self):
        engine = SimulationEngine()
        cell = FakeCell(engine)
        connection, config = make_connection(engine, cell, initial_window=1,
                                             initial_ssthresh=1000, max_window=8,
                                             wired_round_trip_s=0.0)
        for _ in range(100):
            connection.send_application_packet()
        for _ in range(6):
            cell.deliver_all()
            settle(engine)
        assert connection.congestion_window <= config.max_window

    def test_all_data_delivered_flag(self):
        engine = SimulationEngine()
        cell = FakeCell(engine)
        connection, _ = make_connection(engine, cell, wired_round_trip_s=0.0)
        assert connection.all_data_delivered
        connection.send_application_packet()
        assert not connection.all_data_delivered
        cell.deliver_all()
        settle(engine)
        assert connection.all_data_delivered


class TestLossRecovery:
    def test_fast_retransmit_after_duplicate_acks(self):
        engine = SimulationEngine()
        cell = FakeCell(engine)
        connection, _ = make_connection(engine, cell, initial_window=8,
                                        initial_ssthresh=64, wired_round_trip_s=0.0,
                                        duplicate_ack_threshold=3)
        for _ in range(8):
            connection.send_application_packet()
        window_before = connection.congestion_window
        # Drop the first packet, deliver the rest out of order -> duplicate ACKs.
        cell.queue.pop(0)
        cell.deliver_all()
        settle(engine)
        assert connection.fast_retransmits == 1
        assert connection.packets_retransmitted >= 1
        assert connection.congestion_window < window_before
        # The retransmitted packet is back in the cell queue; deliver it.
        cell.deliver_all()
        settle(engine)
        assert connection.all_data_delivered

    def test_timeout_collapses_window_to_one(self):
        engine = SimulationEngine()
        cell = FakeCell(engine)
        connection, config = make_connection(engine, cell, initial_window=4,
                                             retransmission_timeout_s=1.0,
                                             wired_round_trip_s=0.0)
        for _ in range(4):
            connection.send_application_packet()
        # Lose everything: nothing is ever delivered.
        cell.queue.clear()
        engine.run(until=1.5)
        assert connection.timeouts >= 1
        assert connection.congestion_window == pytest.approx(1.0)
        assert connection.packets_retransmitted >= 1

    def test_loss_at_full_buffer_is_counted(self):
        engine = SimulationEngine()
        cell = FakeCell(engine, capacity=2)
        connection, _ = make_connection(engine, cell, initial_window=5)
        for _ in range(5):
            connection.send_application_packet()
        assert connection.packets_lost_at_buffer == 3
        assert cell.rejected == 3

    def test_recovery_after_buffer_loss_eventually_delivers_everything(self):
        engine = SimulationEngine()
        cell = FakeCell(engine, capacity=3)
        connection, _ = make_connection(engine, cell, initial_window=6,
                                        retransmission_timeout_s=0.5,
                                        wired_round_trip_s=0.0)
        for _ in range(6):
            connection.send_application_packet()
        # Repeatedly deliver whatever made it into the buffer and let timers fire.
        for _ in range(30):
            cell.deliver_all()
            engine.run(until=engine.now + 1.0)
            if connection.all_data_delivered:
                break
        assert connection.all_data_delivered
        assert connection.packets_acknowledged == 6


class TestDisabledFlowControl:
    def test_packets_go_straight_to_the_buffer(self):
        engine = SimulationEngine()
        cell = FakeCell(engine)
        connection, _ = make_connection(engine, cell, enabled=False)
        for _ in range(20):
            connection.send_application_packet()
        assert len(cell.queue) == 20
        assert connection.packets_in_flight == 0

    def test_delivery_callbacks_are_ignored(self):
        engine = SimulationEngine()
        cell = FakeCell(engine)
        connection, _ = make_connection(engine, cell, enabled=False)
        connection.send_application_packet()
        cell.deliver_all()
        settle(engine)
        assert connection.congestion_window == 1.0


class TestConfigValidation:
    def test_invalid_configurations_rejected(self):
        with pytest.raises(ValueError):
            TcpConfig(initial_window=0)
        with pytest.raises(ValueError):
            TcpConfig(max_window=1, initial_window=4)
        with pytest.raises(ValueError):
            TcpConfig(initial_ssthresh=0)
        with pytest.raises(ValueError):
            TcpConfig(duplicate_ack_threshold=0)
        with pytest.raises(ValueError):
            TcpConfig(retransmission_timeout_s=0.0)
        with pytest.raises(ValueError):
            TcpConfig(wired_round_trip_s=-1.0)


class TestAdaptiveRetransmissionTimeout:
    def test_rtt_samples_shrink_the_timeout(self):
        """Acknowledged segments feed Jacobson's estimator and shrink a large initial RTO."""
        engine = SimulationEngine()
        cell = FakeCell(engine)
        connection, config = make_connection(
            engine, cell,
            retransmission_timeout_s=30.0,
            wired_round_trip_s=0.05,
            min_retransmission_timeout_s=0.2,
        )
        initial_rto = connection.retransmission_timeout
        for _ in range(8):
            connection.send_application_packet()
            settle(engine)
            cell.deliver_all()
            settle(engine, horizon=0.2)
        assert connection.packets_acknowledged == 8
        assert connection.retransmission_timeout < initial_rto
        # With a measured RTT around 50 ms the adapted timeout sits at the floor.
        assert connection.retransmission_timeout == pytest.approx(
            config.min_retransmission_timeout_s, rel=0.5
        )

    def test_consecutive_timeouts_back_off_exponentially(self):
        """Every expiry doubles the timer until new data is acknowledged."""
        engine = SimulationEngine()
        cell = FakeCell(engine, capacity=0)  # every send is dropped
        connection, _ = make_connection(
            engine, cell,
            adaptive_rto=False,
            retransmission_timeout_s=1.0,
            rto_backoff_factor=2.0,
            max_retransmission_timeout_s=64.0,
        )
        connection.send_application_packet()
        assert connection.retransmission_timeout == pytest.approx(1.0)
        engine.run(until=1.1)
        assert connection.timeouts == 1
        assert connection.retransmission_timeout == pytest.approx(2.0)
        engine.run(until=3.3)
        assert connection.timeouts == 2
        assert connection.retransmission_timeout == pytest.approx(4.0)

    def test_backoff_is_reset_by_new_data(self):
        engine = SimulationEngine()
        cell = FakeCell(engine, capacity=1)
        connection, _ = make_connection(
            engine, cell,
            adaptive_rto=False,
            retransmission_timeout_s=1.0,
            wired_round_trip_s=0.0,
            initial_window=1,
        )
        connection.send_application_packet()
        # Let the timer expire once without delivering anything: backoff kicks in.
        engine.run(until=1.5)
        assert connection.timeouts >= 1
        backed_off = connection.retransmission_timeout
        assert backed_off > 1.0
        # Deliver the retransmission: the cumulative ACK resets the backoff.
        cell.deliver_all()
        settle(engine)
        assert connection.retransmission_timeout == pytest.approx(1.0)

    def test_retransmitted_segments_do_not_produce_rtt_samples(self):
        """Karn's rule: an ACK for a retransmitted segment must not update the RTO."""
        engine = SimulationEngine()
        cell = FakeCell(engine, capacity=0)
        connection, _ = make_connection(
            engine, cell,
            retransmission_timeout_s=2.0,
            min_retransmission_timeout_s=0.5,
            wired_round_trip_s=0.0,
        )
        connection.send_application_packet()
        # First transmission dropped; open the buffer and let the timeout resend it.
        cell.capacity = 10
        engine.run(until=2.5)
        cell.deliver_all()
        settle(engine)
        assert connection.packets_acknowledged == 1
        assert connection.packets_retransmitted >= 1
        # No valid RTT sample was taken, so the (un-backed-off) RTO is unchanged.
        assert connection.retransmission_timeout >= 2.0

    def test_invalid_rto_configuration_rejected(self):
        with pytest.raises(ValueError):
            TcpConfig(min_retransmission_timeout_s=0.0)
        with pytest.raises(ValueError):
            TcpConfig(min_retransmission_timeout_s=2.0, max_retransmission_timeout_s=1.0)
        with pytest.raises(ValueError):
            TcpConfig(rto_backoff_factor=0.5)
