"""Tests of the application presets and application mixes."""

from __future__ import annotations

import pytest

from repro.traffic.applications import (
    APPLICATION_PRESETS,
    EMAIL,
    FTP_DOWNLOAD,
    WWW_BROWSING_8K,
    WWW_BROWSING_32K,
    ApplicationMix,
    MixComponent,
    application,
)
from repro.traffic.presets import TRAFFIC_MODEL_1, TRAFFIC_MODEL_2


class TestPresets:
    def test_lookup_by_name(self):
        assert application("ftp") is FTP_DOWNLOAD
        assert application("email") is EMAIL
        with pytest.raises(ValueError):
            application("telnet")

    def test_www_presets_match_the_paper_traffic_models(self):
        assert WWW_BROWSING_8K.packet_interarrival_s == (
            TRAFFIC_MODEL_1.session.packet_interarrival_s
        )
        assert WWW_BROWSING_8K.peak_bit_rate_kbit_s == pytest.approx(
            TRAFFIC_MODEL_1.session.peak_bit_rate_kbit_s
        )
        assert WWW_BROWSING_32K.peak_bit_rate_kbit_s == pytest.approx(
            TRAFFIC_MODEL_2.session.peak_bit_rate_kbit_s
        )

    def test_ftp_is_a_single_packet_call(self):
        """The paper: "In fact this is the case for a file transfer via FTP"."""
        assert FTP_DOWNLOAD.packet_calls_per_session == 1

    def test_every_preset_has_positive_rates(self):
        for name, preset in APPLICATION_PRESETS.items():
            assert preset.packet_rate > 0, name
            assert preset.mean_session_duration_s > 0, name
            assert 0.0 < preset.activity_factor <= 1.0, name


class TestMixValidation:
    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            ApplicationMix(())

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            ApplicationMix((MixComponent(EMAIL, 0.0),))

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            MixComponent(EMAIL, -0.5)


class TestMixStatistics:
    def make_mix(self) -> ApplicationMix:
        return ApplicationMix.from_shares({"www-32k": 0.6, "ftp": 0.1, "email": 0.3})

    def test_weights_are_normalised(self):
        mix = ApplicationMix.from_shares({"www-8k": 2.0, "email": 2.0})
        assert mix.normalised_weights() == (0.5, 0.5)

    def test_single_component_mix_reduces_to_that_application(self):
        mix = ApplicationMix.from_shares({"www-32k": 1.0})
        assert mix.mean_session_duration_s() == pytest.approx(
            WWW_BROWSING_32K.mean_session_duration_s
        )
        assert mix.mean_bit_rate_kbit_s() == pytest.approx(
            WWW_BROWSING_32K.mean_bit_rate_kbit_s
        )

    def test_mix_statistics_are_convex_combinations(self):
        mix = self.make_mix()
        durations = [c.session.mean_session_duration_s for c in mix.components]
        assert min(durations) <= mix.mean_session_duration_s() <= max(durations)
        rates = [
            c.session.packet_rate * c.session.activity_factor for c in mix.components
        ]
        assert min(rates) <= mix.mean_packet_rate() <= max(rates)

    def test_departure_rate_is_reciprocal_duration(self):
        mix = self.make_mix()
        assert mix.session_departure_rate() == pytest.approx(
            1.0 / mix.mean_session_duration_s()
        )

    def test_from_shares_accepts_session_models_directly(self):
        mix = ApplicationMix.from_shares({EMAIL: 1.0, "ftp": 1.0})
        assert len(mix.components) == 2


class TestEquivalentModelAndAggregate:
    def test_equivalent_model_is_usable_by_the_gprs_parameters(self):
        from repro.core.parameters import GprsModelParameters

        mix = ApplicationMix.from_shares({"www-32k": 0.7, "email": 0.3})
        equivalent = mix.equivalent_session_model()
        params = GprsModelParameters(
            total_call_arrival_rate=0.2, traffic=equivalent, max_gprs_sessions=5,
            buffer_size=10,
        )
        assert params.gprs_completion_rate == pytest.approx(
            equivalent.session_departure_rate
        )

    def test_aggregate_mmpp_rate_adds_up(self):
        mix = ApplicationMix.from_shares({"www-8k": 1.0, "email": 1.0})
        aggregate = mix.aggregate_mmpp(sessions_per_component=2)
        expected = 2 * (
            WWW_BROWSING_8K.packet_rate * WWW_BROWSING_8K.activity_factor
            + EMAIL.packet_rate * EMAIL.activity_factor
        )
        assert aggregate.mean_arrival_rate() == pytest.approx(expected, rel=1e-9)

    def test_aggregate_with_explicit_population(self):
        mix = ApplicationMix.from_shares({"www-8k": 1.0, "ftp": 1.0})
        aggregate = mix.aggregate_mmpp(
            active_sessions_per_component={WWW_BROWSING_8K.name: 3, FTP_DOWNLOAD.name: 0}
        )
        expected = 3 * WWW_BROWSING_8K.packet_rate * WWW_BROWSING_8K.activity_factor
        assert aggregate.mean_arrival_rate() == pytest.approx(expected, rel=1e-9)

    def test_empty_population_rejected(self):
        mix = ApplicationMix.from_shares({"www-8k": 1.0})
        with pytest.raises(ValueError):
            mix.aggregate_mmpp(sessions_per_component=0)
