"""Tests of the content-addressed result cache and its correctness guarantees.

The load-bearing properties asserted here:

* cache keys are identical across processes (pure function of content);
* any mutation of the effective configuration changes the key (miss);
* a parallel sweep returns bitwise-identical results to the serial path;
* a second run against a warm cache performs **zero** solver calls.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core.model import GprsMarkovModel
from repro.experiments.scale import ExperimentScale
from repro.runtime import (
    ResultCache,
    parameters_from_dict,
    parameters_to_dict,
    result_key,
    run_sweep,
    scenario,
)

SMOKE = ExperimentScale.smoke()


def _spec_params_dict(name: str, rate: float = 0.4) -> dict:
    spec = scenario(name)
    return parameters_to_dict(spec.parameters(SMOKE).with_arrival_rate(rate))


class TestKeys:
    def test_key_is_stable_within_a_process(self):
        params = _spec_params_dict("figure12")
        key1 = result_key(params, solver="auto", solver_tol=1e-9)
        key2 = result_key(params, solver="auto", solver_tol=1e-9)
        assert key1 == key2
        assert len(key1) == 64  # sha256 hex

    def test_key_is_identical_across_processes(self):
        """The same spec must hash identically in a fresh worker process."""
        params = _spec_params_dict("figure12")
        parent_key = result_key(params, solver="auto", solver_tol=1e-9)
        with ProcessPoolExecutor(max_workers=1) as pool:
            child_key = pool.submit(
                result_key, params, solver="auto", solver_tol=1e-9
            ).result()
        assert parent_key == child_key

    def test_mutated_spec_misses(self):
        base = _spec_params_dict("figure12")
        base_key = result_key(base, solver="auto", solver_tol=1e-9)
        for mutation in (
            {"gprs_fraction": 0.051},
            {"reserved_pdch": 3},
            {"buffer_size": base["buffer_size"] + 1},
            {"tcp_threshold": 0.71},
            {"total_call_arrival_rate": 0.41},
        ):
            mutated = {**base, **mutation}
            assert result_key(mutated, solver="auto", solver_tol=1e-9) != base_key
        assert result_key(base, solver="direct", solver_tol=1e-9) != base_key
        assert result_key(base, solver="auto", solver_tol=1e-8) != base_key
        assert (
            result_key(base, solver="auto", solver_tol=1e-9, code_version="other")
            != base_key
        )

    def test_parameters_round_trip(self):
        params = scenario("bursty-sessions").parameters(SMOKE)
        assert parameters_from_dict(parameters_to_dict(params)) == params


class TestResultCache:
    def test_get_put_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("ab" * 32) is None
        cache.put("ab" * 32, {"value": 1.25})
        assert cache.get("ab" * 32) == {"value": 1.25}
        assert cache.stats.as_dict() == {
            "hits": 1, "misses": 1, "writes": 1, "corrupt": 0,
        }
        assert len(cache) == 1

    def test_corrupt_entry_counts_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" * 32
        cache.put(key, {"value": 2.0})
        cache.path_for(key).write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None
        assert cache.stats.misses == 1

    def test_corrupt_entry_is_quarantined(self, tmp_path, caplog):
        """A damaged entry is renamed aside, counted, and logged once."""
        import logging

        cache = ResultCache(tmp_path)
        key = "ef" * 32
        cache.put(key, {"value": 3.0})
        path = cache.path_for(key)
        path.write_text("{torn", encoding="utf-8")
        with caplog.at_level(logging.WARNING, logger="repro.runtime.cache"):
            assert cache.get(key) is None
            assert cache.get(key) is None  # second read: plain miss
        assert cache.stats.corrupt == 1
        assert not path.exists()
        quarantined = path.with_name(f"{key}.corrupt")
        assert quarantined.read_text(encoding="utf-8") == "{torn"
        logged = [r for r in caplog.records if "quarantined" in r.message]
        assert len(logged) == 1  # once per key, however often it is re-read

    def test_quarantined_key_is_rewritable(self, tmp_path):
        """After quarantine the key accepts a fresh put and serves it."""
        cache = ResultCache(tmp_path)
        key = "ab" * 32
        cache.put(key, {"value": 1.0})
        cache.path_for(key).write_text("junk", encoding="utf-8")
        assert cache.get(key) is None
        cache.put(key, {"value": 4.0})
        assert cache.get(key) == {"value": 4.0}

    def test_keyboard_interrupt_in_put_propagates_and_cleans_up(
        self, tmp_path, monkeypatch
    ):
        """An interrupt mid-write re-raises and leaves no torn entry behind."""
        import os as os_module

        cache = ResultCache(tmp_path)
        key = "12" * 32

        def _interrupted(src, dst):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.runtime.cache.os.replace", _interrupted)
        with pytest.raises(KeyboardInterrupt):
            cache.put(key, {"value": 5.0})
        monkeypatch.undo()
        assert cache.get(key) is None  # nothing stored
        shard = cache.path_for(key).parent
        leftovers = [p for p in shard.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []  # temp file removed on the way out
        assert os_module.path.isdir(shard)

    def test_unwritable_cache_degrades_gracefully(self, tmp_path, monkeypatch):
        """A cache that cannot persist must not fail the sweep."""
        cache = ResultCache(tmp_path)

        def _unwritable(key, payload):
            raise OSError("read-only filesystem")

        monkeypatch.setattr(cache, "put", _unwritable)
        result = run_sweep(scenario("figure5"), SMOKE, cache=cache)
        assert result.cache_misses == len(result.points)
        assert len(cache) == 0

    def test_entries_shared_between_instances(self, tmp_path):
        """Content addressing: a second cache object over the same dir hits."""
        first = ResultCache(tmp_path)
        run_sweep(scenario("figure12"), SMOKE, cache=first)
        second = ResultCache(tmp_path)
        result = run_sweep(scenario("figure12"), SMOKE, cache=second)
        assert result.cache_misses == 0
        assert result.cache_hits == len(result.points)


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_parallel_is_bitwise_identical_to_serial(self, jobs):
        spec = scenario("figure12").replace(arrival_rates=(0.2, 0.5, 0.8))
        serial = run_sweep(spec, SMOKE, jobs=1, cache=None)
        parallel = run_sweep(spec, SMOKE, jobs=jobs, cache=None)
        assert serial.arrival_rates == parallel.arrival_rates
        for point_s, point_p in zip(serial.points, parallel.points):
            assert point_s.values == point_p.values  # exact float equality

    def test_parallel_run_with_cache_matches_serial_without(self, tmp_path):
        spec = scenario("heavy-gprs")
        cached = run_sweep(spec, SMOKE, jobs=2, cache=ResultCache(tmp_path))
        plain = run_sweep(spec, SMOKE, jobs=1, cache=None)
        for point_c, point_p in zip(cached.points, plain.points):
            assert point_c.values == point_p.values


class TestWarmCacheSkipsSolver:
    def test_second_run_performs_zero_solver_calls(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        spec = scenario("figure12")
        cold = run_sweep(spec, SMOKE, cache=cache)
        assert cold.cache_misses == len(cold.points)

        def _forbidden(self):  # pragma: no cover - must never run
            raise AssertionError("solver called despite warm cache")

        monkeypatch.setattr(GprsMarkovModel, "solve", _forbidden)
        warm = run_sweep(spec, SMOKE, cache=cache)
        assert warm.cache_misses == 0
        assert warm.cache_hits == len(warm.points)
        assert all(point.from_cache for point in warm.points)
        for point_cold, point_warm in zip(cold.points, warm.points):
            assert point_cold.values == point_warm.values  # JSON round-trip exact

    def test_warm_cache_also_covers_figure_runs(self, tmp_path, monkeypatch):
        """run_experiment shares the cache with the scenario runtime."""
        from repro.experiments.runner import run_experiment

        cache = ResultCache(tmp_path)
        cold = run_experiment("figure14", SMOKE, cache=cache)

        def _forbidden(self):  # pragma: no cover - must never run
            raise AssertionError("solver called despite warm cache")

        monkeypatch.setattr(GprsMarkovModel, "solve", _forbidden)
        warm = run_experiment("figure14", SMOKE, cache=cache)
        assert warm == cold

    def test_different_preset_never_serves_wrong_size(self, tmp_path):
        """Keys hash effective parameters, so presets cache independently."""
        cache = ResultCache(tmp_path)
        run_sweep(scenario("figure12"), SMOKE, cache=cache)
        default_run = run_sweep(
            scenario("figure12"),
            ExperimentScale.default().replace(arrival_rates=SMOKE.arrival_rates),
            cache=cache,
        )
        assert default_run.cache_hits == 0


class TestWarmCacheViaCli:
    def test_cli_sweep_reuses_cache_across_invocations(self, tmp_path, capsys):
        from repro.cli import main

        argv = [
            "sweep", "figure15", "--preset", "smoke",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "0 hit(s)" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 solved" in second
        # Identical numbers modulo the cache-accounting header line.
        assert first.splitlines()[2:] == second.splitlines()[2:]
