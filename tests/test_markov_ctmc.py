"""Tests of the ContinuousTimeMarkovChain class."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.markov.ctmc import ContinuousTimeMarkovChain


@pytest.fixture
def three_state_chain() -> ContinuousTimeMarkovChain:
    rates = {
        ("idle", "busy"): 2.0,
        ("busy", "idle"): 1.0,
        ("busy", "down"): 0.5,
        ("down", "idle"): 4.0,
    }
    return ContinuousTimeMarkovChain.from_rates(rates)


class TestConstruction:
    def test_from_rates_builds_expected_states(self, three_state_chain):
        assert three_state_chain.number_of_states == 3
        assert three_state_chain.labels == ["idle", "busy", "down"]

    def test_from_rates_with_explicit_state_order(self):
        chain = ContinuousTimeMarkovChain.from_rates(
            {("a", "b"): 1.0, ("b", "a"): 2.0}, states=["b", "a"]
        )
        assert chain.labels == ["b", "a"]

    def test_rate_lookup_by_label_and_index(self, three_state_chain):
        assert three_state_chain.rate("idle", "busy") == pytest.approx(2.0)
        assert three_state_chain.rate(0, 1) == pytest.approx(2.0)
        assert three_state_chain.rate("idle", "down") == pytest.approx(0.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="negative rate"):
            ContinuousTimeMarkovChain.from_rates({("a", "b"): -1.0, ("b", "a"): 1.0})

    def test_non_square_generator_rejected(self):
        with pytest.raises(ValueError, match="square"):
            ContinuousTimeMarkovChain(np.zeros((2, 3)))

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="labels"):
            ContinuousTimeMarkovChain(np.array([[-1.0, 1.0], [1.0, -1.0]]), labels=["x"])

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            ContinuousTimeMarkovChain(
                np.array([[-1.0, 1.0], [1.0, -1.0]]), labels=["x", "x"]
            )

    def test_fix_diagonal_recomputes_row_sums(self):
        raw = np.array([[0.0, 2.0], [3.0, 0.0]])
        chain = ContinuousTimeMarkovChain(raw, fix_diagonal=True)
        rows = np.asarray(chain.generator.sum(axis=1)).ravel()
        assert rows == pytest.approx([0.0, 0.0], abs=1e-12)

    def test_validation_rejects_bad_row_sums(self):
        bad = np.array([[-1.0, 2.0], [1.0, -1.0]])
        with pytest.raises(ValueError, match="sum to zero"):
            ContinuousTimeMarkovChain(bad)

    def test_validation_rejects_negative_off_diagonal(self):
        bad = np.array([[1.0, -1.0], [1.0, -1.0]])
        with pytest.raises(ValueError, match="negative off-diagonal"):
            ContinuousTimeMarkovChain(bad)


class TestSolutions:
    def test_stationary_distribution_sums_to_one(self, three_state_chain):
        pi = three_state_chain.stationary_distribution()
        assert pi.sum() == pytest.approx(1.0)
        assert np.all(pi > 0)

    def test_stationary_distribution_is_cached(self, three_state_chain):
        first = three_state_chain.steady_state()
        second = three_state_chain.steady_state()
        assert first is second
        refreshed = three_state_chain.steady_state(refresh=True)
        assert refreshed is not first

    def test_expected_reward_with_callable_and_vector(self, three_state_chain):
        pi = three_state_chain.stationary_distribution()
        by_vector = three_state_chain.expected_reward([0.0, 1.0, 5.0])
        by_callable = three_state_chain.expected_reward(lambda i: [0.0, 1.0, 5.0][i])
        assert by_vector == pytest.approx(pi[1] + 5 * pi[2])
        assert by_callable == pytest.approx(by_vector)

    def test_expected_reward_rejects_wrong_length(self, three_state_chain):
        with pytest.raises(ValueError, match="length"):
            three_state_chain.expected_reward([1.0, 2.0])

    def test_transient_distribution_converges_to_stationary(self, three_state_chain):
        initial = np.array([1.0, 0.0, 0.0])
        late = three_state_chain.transient_distribution(initial, time=200.0)
        assert late == pytest.approx(three_state_chain.stationary_distribution(), abs=1e-6)

    def test_balance_holds_per_state(self, three_state_chain):
        pi = three_state_chain.stationary_distribution()
        residual = pi @ three_state_chain.generator.toarray()
        assert np.max(np.abs(residual)) < 1e-10


class TestDerivedChains:
    def test_embedded_jump_chain_is_stochastic(self, three_state_chain):
        p = three_state_chain.embedded_jump_chain()
        rows = np.asarray(p.sum(axis=1)).ravel()
        assert rows == pytest.approx(np.ones(3))

    def test_embedded_jump_chain_probabilities(self, three_state_chain):
        p = three_state_chain.embedded_jump_chain().toarray()
        busy = three_state_chain.state_index("busy")
        idle = three_state_chain.state_index("idle")
        down = three_state_chain.state_index("down")
        assert p[busy, idle] == pytest.approx(1.0 / 1.5)
        assert p[busy, down] == pytest.approx(0.5 / 1.5)

    def test_absorbing_state_gets_self_loop(self):
        generator = np.array([[-1.0, 1.0], [0.0, 0.0]])
        chain = ContinuousTimeMarkovChain(generator, validate=False)
        p = chain.embedded_jump_chain().toarray()
        assert p[1, 1] == pytest.approx(1.0)

    def test_mean_holding_times(self, three_state_chain):
        holding = three_state_chain.mean_holding_times()
        assert holding[three_state_chain.state_index("idle")] == pytest.approx(0.5)
        assert holding[three_state_chain.state_index("busy")] == pytest.approx(1 / 1.5)

    def test_exit_rates(self, three_state_chain):
        exit_rates = three_state_chain.exit_rates()
        assert exit_rates[three_state_chain.state_index("busy")] == pytest.approx(1.5)

    def test_unknown_label_raises(self, three_state_chain):
        with pytest.raises(KeyError):
            three_state_chain.state_index("missing")

    def test_sparse_generator_accepted(self):
        generator = sp.csr_matrix(np.array([[-1.0, 1.0], [2.0, -2.0]]))
        chain = ContinuousTimeMarkovChain(generator)
        assert chain.stationary_distribution() == pytest.approx([2 / 3, 1 / 3])
