"""Tests of the phase-type distribution library."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.markov.phase_type import (
    PhaseTypeDistribution,
    coxian_ph,
    erlang_ph,
    exponential_ph,
    fit_two_moments,
    hyperexponential_ph,
)


class TestConstruction:
    def test_exponential_moments(self):
        ph = exponential_ph(0.25)
        assert ph.mean() == pytest.approx(4.0)
        assert ph.variance() == pytest.approx(16.0)
        assert ph.squared_coefficient_of_variation() == pytest.approx(1.0)

    def test_erlang_moments(self):
        ph = erlang_ph(4, 2.0)
        assert ph.mean() == pytest.approx(2.0)
        assert ph.squared_coefficient_of_variation() == pytest.approx(0.25)

    def test_hyperexponential_moments(self):
        ph = hyperexponential_ph([0.3, 0.7], [1.0, 5.0])
        expected_mean = 0.3 / 1.0 + 0.7 / 5.0
        assert ph.mean() == pytest.approx(expected_mean)
        assert ph.squared_coefficient_of_variation() > 1.0

    def test_coxian_reduces_to_erlang_when_always_continuing(self):
        cox = coxian_ph([3.0, 3.0, 3.0], [1.0, 1.0])
        erl = erlang_ph(3, 3.0)
        assert cox.mean() == pytest.approx(erl.mean())
        assert cox.variance() == pytest.approx(erl.variance())

    def test_coxian_with_early_exit_is_shorter(self):
        cox = coxian_ph([3.0, 3.0, 3.0], [0.5, 0.5])
        erl = erlang_ph(3, 3.0)
        assert cox.mean() < erl.mean()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            exponential_ph(0.0)
        with pytest.raises(ValueError):
            erlang_ph(0, 1.0)
        with pytest.raises(ValueError):
            erlang_ph(3, -1.0)
        with pytest.raises(ValueError):
            hyperexponential_ph([0.5, 0.6], [1.0, 2.0])
        with pytest.raises(ValueError):
            hyperexponential_ph([0.5, 0.5], [1.0, 0.0])
        with pytest.raises(ValueError):
            coxian_ph([1.0, 2.0], [1.5])
        with pytest.raises(ValueError):
            coxian_ph([1.0, 2.0], [0.4, 0.6])

    def test_malformed_matrices_rejected(self):
        with pytest.raises(ValueError):
            PhaseTypeDistribution(np.array([1.0, 0.0]), np.array([[-1.0]]))
        with pytest.raises(ValueError):
            PhaseTypeDistribution(np.array([1.0]), np.array([[1.0]]))
        with pytest.raises(ValueError):
            PhaseTypeDistribution(np.array([1.5]), np.array([[-1.0]]))


class TestDistributionFunctions:
    def test_exponential_cdf_matches_closed_form(self):
        ph = exponential_ph(2.0)
        for t in (0.1, 0.5, 1.0, 3.0):
            assert ph.cdf(t) == pytest.approx(1.0 - np.exp(-2.0 * t), rel=1e-9)
            assert ph.pdf(t) == pytest.approx(2.0 * np.exp(-2.0 * t), rel=1e-9)

    def test_cdf_is_zero_at_negative_times(self):
        ph = erlang_ph(2, 1.0)
        assert ph.cdf(-1.0) == 0.0
        assert ph.pdf(-1.0) == 0.0

    def test_cdf_is_monotone_and_reaches_one(self):
        ph = hyperexponential_ph([0.4, 0.6], [0.5, 4.0])
        values = [ph.cdf(t) for t in np.linspace(0.0, 50.0, 40)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))
        assert values[-1] == pytest.approx(1.0, abs=1e-6)

    def test_survival_complements_cdf(self):
        ph = erlang_ph(3, 2.0)
        assert ph.survival(1.3) == pytest.approx(1.0 - ph.cdf(1.3))


class TestSampling:
    def test_sample_mean_matches_analytic_mean(self):
        ph = erlang_ph(3, 1.5)
        rng = np.random.default_rng(42)
        samples = ph.sample(20_000, rng)
        assert samples.mean() == pytest.approx(ph.mean(), rel=0.05)

    def test_sample_size_and_nonnegativity(self):
        ph = hyperexponential_ph([0.2, 0.8], [0.1, 2.0])
        samples = ph.sample(500, np.random.default_rng(1))
        assert samples.shape == (500,)
        assert np.all(samples >= 0)

    def test_invalid_sample_size_rejected(self):
        with pytest.raises(ValueError):
            exponential_ph(1.0).sample(-1)


class TestTwoMomentFit:
    def test_exponential_when_scv_is_one(self):
        ph = fit_two_moments(3.0, 1.0)
        assert ph.number_of_phases == 1
        assert ph.mean() == pytest.approx(3.0)

    def test_hyperexponential_branch_matches_both_moments(self):
        ph = fit_two_moments(2.0, 4.0)
        assert ph.mean() == pytest.approx(2.0, rel=1e-9)
        assert ph.squared_coefficient_of_variation() == pytest.approx(4.0, rel=1e-6)

    def test_erlang_mixture_branch_matches_both_moments(self):
        ph = fit_two_moments(5.0, 0.4)
        assert ph.mean() == pytest.approx(5.0, rel=1e-6)
        assert ph.squared_coefficient_of_variation() == pytest.approx(0.4, rel=1e-3)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            fit_two_moments(0.0, 1.0)
        with pytest.raises(ValueError):
            fit_two_moments(1.0, 0.0)

    @given(
        mean=st.floats(min_value=0.1, max_value=100.0),
        scv=st.floats(min_value=0.15, max_value=10.0),
    )
    @settings(max_examples=60)
    def test_fit_reproduces_the_mean_for_any_target(self, mean, scv):
        ph = fit_two_moments(mean, scv)
        assert ph.mean() == pytest.approx(mean, rel=1e-5)

    @given(
        mean=st.floats(min_value=0.1, max_value=100.0),
        scv=st.floats(min_value=1.0, max_value=20.0),
    )
    @settings(max_examples=40)
    def test_hyperexponential_fit_reproduces_the_scv(self, mean, scv):
        ph = fit_two_moments(mean, scv)
        assert ph.squared_coefficient_of_variation() == pytest.approx(scv, rel=1e-4)


class TestMomentProperties:
    @given(stages=st.integers(min_value=1, max_value=15), rate=st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=50)
    def test_erlang_scv_is_one_over_stages(self, stages, rate):
        ph = erlang_ph(stages, rate)
        assert ph.squared_coefficient_of_variation() == pytest.approx(1.0 / stages, rel=1e-9)

    @given(rate=st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=50)
    def test_exponential_mean_is_reciprocal_rate(self, rate):
        assert exponential_ph(rate).mean() == pytest.approx(1.0 / rate, rel=1e-9)

    def test_invalid_moment_order_rejected(self):
        with pytest.raises(ValueError):
            exponential_ph(1.0).moment(0)
