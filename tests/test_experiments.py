"""Tests of the experiment harness: scale presets, sweeps, tables and figures."""

from __future__ import annotations

import csv
import io

import pytest

from repro.core.parameters import GprsModelParameters
from repro.experiments.figures import (
    figure5,
    figure6,
    figure10,
    figure11,
    figure13,
    figure14,
    figure15,
)
from repro.experiments.reporting import (
    figure_result_to_csv,
    format_figure_result,
    format_table,
)
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.experiments.scale import ExperimentScale
from repro.experiments.sweep import sweep_arrival_rates
from repro.experiments.tables import table2, table3
from repro.traffic.presets import TRAFFIC_MODEL_3


SMOKE = ExperimentScale.smoke()


class TestExperimentScale:
    def test_presets_exist(self):
        assert ExperimentScale.paper().buffer_size is None
        assert ExperimentScale.default().buffer_size == 20
        assert ExperimentScale.smoke().buffer_size == 8

    def test_effective_values_respect_cap(self):
        scale = ExperimentScale.default()
        assert scale.effective_buffer_size(100) == 20
        assert scale.effective_max_sessions(50) == 10
        paper = ExperimentScale.paper()
        assert paper.effective_buffer_size(100) == 100
        assert paper.effective_max_sessions(50) == 50

    def test_scaled_session_limit_is_proportional(self):
        scale = ExperimentScale.default()
        assert scale.scaled_session_limit(50, paper_reference=50) == 10
        assert scale.scaled_session_limit(100, paper_reference=50) == 20
        assert scale.scaled_session_limit(150, paper_reference=50) == 30
        assert ExperimentScale.paper().scaled_session_limit(150, 50) == 150

    def test_replace(self):
        scale = ExperimentScale.default().replace(arrival_rates=(0.1,))
        assert scale.arrival_rates == (0.1,)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentScale.default().replace(arrival_rates=())
        with pytest.raises(ValueError):
            ExperimentScale.default().replace(arrival_rates=(-0.1,))
        with pytest.raises(ValueError):
            ExperimentScale.default().replace(buffer_size=1)


class TestSweep:
    def test_sweep_produces_one_measure_per_rate(self):
        params = GprsModelParameters.from_traffic_model(
            TRAFFIC_MODEL_3, 0.1, buffer_size=5, max_gprs_sessions=3
        )
        sweep = sweep_arrival_rates(params, (0.2, 0.5, 0.8))
        assert len(sweep) == 3
        assert sweep.arrival_rates == (0.2, 0.5, 0.8)
        series = sweep.series("carried_voice_traffic")
        assert len(series) == 3
        # Voice traffic grows with the call arrival rate.
        assert series[0] < series[-1]

    def test_sweep_as_table(self):
        params = GprsModelParameters.from_traffic_model(
            TRAFFIC_MODEL_3, 0.1, buffer_size=4, max_gprs_sessions=2
        )
        rows = sweep_arrival_rates(params, (0.3, 0.6)).as_table(
            ["packet_loss_probability"]
        )
        assert len(rows) == 2
        assert set(rows[0]) == {"total_call_arrival_rate", "packet_loss_probability"}

    def test_empty_sweep_rejected(self):
        params = GprsModelParameters.from_traffic_model(
            TRAFFIC_MODEL_3, 0.1, buffer_size=4, max_gprs_sessions=2
        )
        with pytest.raises(ValueError):
            sweep_arrival_rates(params, ())


class TestTables:
    def test_table2_matches_paper_values(self):
        rows = table2()
        assert rows["Number of physical channels, N"] == 20
        assert rows["Number of fixed PDCHs, N_GPRS"] == 1
        assert rows["BSC buffer size, K [data packets]"] == 100
        assert rows["Transfer rate for one PDCH (CS-2) [kbit/s]"] == pytest.approx(13.4)
        assert rows["Average GSM voice call duration, 1/mu_GSM [s]"] == 120
        assert rows["Average GSM voice call dwell time, 1/mu_h,GSM [s]"] == 60
        assert rows["Average GPRS session dwell time, 1/mu_h,GPRS [s]"] == 120
        assert rows["Percentage of GSM users"] == 95
        assert rows["Percentage of GPRS users"] == 5

    def test_table3_matches_paper_values(self):
        rows = table3()
        model1 = rows["traffic model 1"]
        model3 = rows["traffic model 3"]
        assert model1["Maximum number of active GPRS sessions, M"] == 50
        assert model1["Average GPRS session duration, 1/mu_GPRS [s]"] == pytest.approx(2122.5)
        assert model3["Maximum number of active GPRS sessions, M"] == 20
        assert model3["Average GPRS session duration, 1/mu_GPRS [s]"] == pytest.approx(312.5)
        assert model3["Average reading time between packet calls, 1/b [s]"] == (
            pytest.approx(3.125)
        )


class TestFigures:
    def test_figure5_eta_ordering(self):
        result = figure5(SMOKE, thresholds=(0.6, 1.0))
        assert result.metrics == ("packet_loss_probability",)
        throttled = result.get("Markov model, eta = 0.6")
        uncontrolled = result.get("Markov model, eta = 1")
        # Without flow control the loss probability is higher at every load.
        for low, high in zip(throttled.metric("packet_loss_probability"),
                             uncontrolled.metric("packet_loss_probability")):
            assert high >= low - 1e-12

    def test_figure6_has_model_and_optional_simulation_series(self):
        without_sim = figure6(SMOKE, gprs_fractions=(0.05,))
        assert len(without_sim.series) == 1
        with_sim = figure6(SMOKE, gprs_fractions=(0.05,), include_simulation=True)
        assert len(with_sim.series) == 2
        simulation = with_sim.series[-1]
        assert simulation.half_widths  # confidence intervals attached

    def test_figure10_blocking_drops_with_larger_session_limit(self):
        result = figure10(SMOKE, session_limits=(50, 150))
        small_limit = result.series[0]
        large_limit = result.series[1]
        blocking_small = small_limit.metric("gprs_blocking_probability")
        blocking_large = large_limit.metric("gprs_blocking_probability")
        assert blocking_large[-1] <= blocking_small[-1] + 1e-12

    def test_figure11_13_more_pdchs_help_throughput_under_load(self):
        for figure in (figure11, figure13):
            result = figure(SMOKE)
            none_reserved = result.get("0 reserved PDCH")
            four_reserved = result.get("4 reserved PDCH")
            high_load_index = len(SMOKE.arrival_rates) - 1
            assert (
                four_reserved.metric("throughput_per_user_kbit_s")[high_load_index]
                >= none_reserved.metric("throughput_per_user_kbit_s")[high_load_index]
            )

    def test_figure14_voice_blocking_increases_with_reserved_pdchs(self):
        result = figure14(SMOKE, reserved=(0, 4))
        no_reservation = result.get("0 reserved PDCH")
        four_reserved = result.get("4 reserved PDCH")
        assert (
            four_reserved.metric("voice_blocking_probability")[-1]
            >= no_reservation.metric("voice_blocking_probability")[-1]
        )

    def test_figure15_more_gprs_users_mean_more_sessions(self):
        result = figure15(SMOKE, gprs_fractions=(0.02, 0.10))
        few = result.get("2% GPRS users")
        many = result.get("10% GPRS users")
        assert (
            many.metric("average_gprs_sessions")[-1]
            > few.metric("average_gprs_sessions")[-1]
        )

    def test_figure_result_accessors(self):
        result = figure14(SMOKE, reserved=(0, 1))
        assert result.labels() == ("0 reserved PDCH", "1 reserved PDCH")
        with pytest.raises(KeyError):
            result.get("missing series")


class TestReportingAndRunner:
    def test_format_table_renders_all_rows(self):
        text = format_table("Example", {"alpha": 1.5, "beta": "two"})
        assert "Example" in text and "alpha" in text and "two" in text

    def test_format_figure_result_mentions_labels_and_metric(self):
        result = figure14(SMOKE, reserved=(0, 1))
        text = format_figure_result(result)
        assert "figure14" in text
        assert "voice_blocking_probability" in text
        assert "0 reserved PDCH" in text

    def test_csv_export_is_parseable(self):
        result = figure14(SMOKE, reserved=(0, 1))
        content = figure_result_to_csv(result)
        rows = list(csv.reader(io.StringIO(content)))
        header, data = rows[0], rows[1:]
        assert header[:4] == ["figure", "metric", "series", "arrival_rate"]
        expected = len(result.metrics) * len(result.series) * len(SMOKE.arrival_rates)
        assert len(data) == expected

    def test_registry_covers_every_table_and_figure(self):
        expected = {"table2", "table3"} | {f"figure{i}" for i in range(5, 16)}
        assert set(EXPERIMENTS) == expected

    def test_run_experiment_by_name(self):
        report = run_experiment("table2")
        assert "physical channels" in report

    def test_run_experiment_unknown_name(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("figure99")
