"""Tests of the QBD / block-tridiagonal solution techniques."""

from __future__ import annotations

import numpy as np
import pytest

from repro.markov.mmpp import InterruptedPoissonProcess
from repro.markov.qbd import QuasiBirthDeathProcess, solve_finite_level_chain
from repro.markov.solvers import solve_steady_state
from repro.queueing.mmck import MMcKQueue


def mm1k_blocks(arrival: float, service: float, capacity: int):
    """Block description of an M/M/1/K queue with one phase per level."""
    local = []
    for level in range(capacity + 1):
        diagonal = 0.0
        if level < capacity:
            diagonal -= arrival
        if level > 0:
            diagonal -= service
        local.append(np.array([[diagonal]]))
    up = [np.array([[arrival]]) for _ in range(capacity)]
    down = [np.array([[service]]) for _ in range(capacity)]
    return local, up, down


class TestFiniteLevelChain:
    def test_mm1k_matches_the_closed_form(self):
        arrival, service, capacity = 2.0, 3.0, 10
        local, up, down = mm1k_blocks(arrival, service, capacity)
        levels = solve_finite_level_chain(local, up, down)
        rho = arrival / service
        normalisation = sum(rho**k for k in range(capacity + 1))
        for k, level in enumerate(levels):
            assert float(level.sum()) == pytest.approx(rho**k / normalisation, rel=1e-9)

    def test_mmck_blocking_matches_queueing_library(self):
        """Block elimination on an M/M/c/K chain agrees with the closed form."""
        arrival, service, servers, capacity = 3.0, 1.0, 4, 12
        local, up, down = [], [], []
        for level in range(capacity + 1):
            departures = min(level, servers) * service
            diagonal = -departures
            if level < capacity:
                diagonal -= arrival
            local.append(np.array([[diagonal]]))
            if level < capacity:
                up.append(np.array([[arrival]]))
            if level > 0:
                down.append(np.array([[min(level, servers) * service]]))
        levels = solve_finite_level_chain(local, up, down)
        queue = MMcKQueue(arrival_rate=arrival, service_rate=service, servers=servers,
                          capacity=capacity)
        assert float(levels[-1].sum()) == pytest.approx(queue.blocking_probability(), rel=1e-8)

    def test_ipp_m_1_k_matches_the_generic_sparse_solver(self):
        """A phase-modulated buffer solved by block elimination equals the flat solve."""
        ipp = InterruptedPoissonProcess(packet_rate=3.0, on_to_off_rate=0.4, off_to_on_rate=0.2)
        capacity = 8
        service = 1.0
        generator = ipp.composite_generator(capacity)  # service rate one
        flat = solve_steady_state(generator, method="gth").distribution
        # Build the same chain as blocks over the buffer level.
        phase_generator = ipp.generator
        rates = ipp.rates
        local, up, down = [], [], []
        for level in range(capacity + 1):
            block = phase_generator.copy().astype(float)
            np.fill_diagonal(block, np.diag(phase_generator))
            diagonal_adjust = np.zeros(2)
            if level < capacity:
                diagonal_adjust -= rates
            if level > 0:
                diagonal_adjust -= service
            local.append(block + np.diag(diagonal_adjust))
            if level < capacity:
                up.append(np.diag(rates))
            if level > 0:
                down.append(np.eye(2) * service)
        levels = solve_finite_level_chain(local, up, down)
        stacked = np.concatenate(levels)
        assert np.allclose(stacked, flat, atol=1e-9)

    def test_block_count_mismatch_rejected(self):
        local, up, down = mm1k_blocks(1.0, 2.0, 3)
        with pytest.raises(ValueError):
            solve_finite_level_chain(local, up[:-1], down)
        with pytest.raises(ValueError):
            solve_finite_level_chain([], [], [])


class TestQuasiBirthDeath:
    def make_mm1_qbd(self, arrival: float, service: float) -> QuasiBirthDeathProcess:
        return QuasiBirthDeathProcess(
            boundary_block=np.array([[-arrival]]),
            up_block=np.array([[arrival]]),
            local_block=np.array([[-(arrival + service)]]),
            down_block=np.array([[service]]),
        )

    def test_mm1_rate_matrix_is_rho(self):
        qbd = self.make_mm1_qbd(1.0, 2.0)
        assert qbd.rate_matrix()[0, 0] == pytest.approx(0.5, rel=1e-9)
        assert qbd.spectral_radius() == pytest.approx(0.5, rel=1e-9)

    def test_mm1_stationary_distribution_is_geometric(self):
        qbd = self.make_mm1_qbd(1.0, 2.0)
        levels = qbd.stationary_distribution(6)
        for k, level in enumerate(levels):
            assert float(level.sum()) == pytest.approx(0.5 * 0.5**k, rel=1e-8)

    def test_mm1_mean_level_matches_rho_over_one_minus_rho(self):
        qbd = self.make_mm1_qbd(1.5, 2.0)
        rho = 0.75
        assert qbd.mean_level() == pytest.approx(rho / (1.0 - rho), rel=1e-6)

    def test_stability_detection(self):
        assert self.make_mm1_qbd(1.0, 2.0).is_stable()
        assert not self.make_mm1_qbd(3.0, 2.0).is_stable()

    def test_unstable_qbd_refuses_to_produce_a_distribution(self):
        with pytest.raises(ValueError):
            self.make_mm1_qbd(3.0, 2.0).stationary_distribution(3)

    def test_phase_modulated_qbd_total_probability_decreases_geometrically(self):
        """An IPP/M/1 queue: per-level mass decays and the prefix nearly sums to one."""
        ipp = InterruptedPoissonProcess(packet_rate=1.2, on_to_off_rate=0.5, off_to_on_rate=0.5)
        arrival_matrix = np.diag(ipp.rates)
        service = 2.0
        phase = ipp.generator
        qbd = QuasiBirthDeathProcess(
            boundary_block=phase - arrival_matrix,
            up_block=arrival_matrix,
            local_block=phase - arrival_matrix - service * np.eye(2),
            down_block=service * np.eye(2),
            boundary_down_block=service * np.eye(2),
        )
        assert qbd.is_stable()
        levels = qbd.stationary_distribution(60)
        masses = [float(level.sum()) for level in levels]
        assert all(later <= earlier + 1e-12 for earlier, later in zip(masses[5:], masses[6:]))
        assert sum(masses) == pytest.approx(1.0, abs=1e-6)

    def test_mismatched_block_sizes_rejected(self):
        with pytest.raises(ValueError):
            QuasiBirthDeathProcess(
                boundary_block=np.zeros((2, 2)),
                up_block=np.zeros((1, 1)),
                local_block=-np.eye(1),
                down_block=np.zeros((1, 1)),
            )

    def test_invalid_level_count_rejected(self):
        with pytest.raises(ValueError):
            self.make_mm1_qbd(1.0, 2.0).stationary_distribution(0)
