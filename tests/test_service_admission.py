"""Unit tests of the service admission layer (repro.service.admission).

Everything here drives :class:`AdmissionQueue` and :class:`RequestJournal`
directly with event-gated stub solves, so coalescing, backpressure,
deadlines, drain and journal replay are each exercised deterministically --
no HTTP, no real solver.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.service import request_key
from repro.service.admission import (
    JOURNAL_SCHEMA,
    JOURNAL_SCHEMA_VERSION,
    AdmissionQueue,
    Draining,
    Overloaded,
    RequestJournal,
    RequestTimeout,
)


def _request(name: str = "alpha", **extra) -> dict:
    base = {
        "command": "transient",
        "scenario": name,
        "preset": "smoke",
        "rate": None,
        "pipelined": False,
        "cache": True,
    }
    base.update(extra)
    return base


class _GatedSolve:
    """A stub solve that blocks until released, recording every call."""

    def __init__(self) -> None:
        self.gate = threading.Event()
        self.calls: list[dict] = []
        self._lock = threading.Lock()

    def __call__(self, request: dict) -> dict:
        with self._lock:
            self.calls.append(request)
        self.gate.wait(timeout=30)
        return {"ok": True, "scenario": request["scenario"]}


def _make_queue(solve, **kwargs) -> AdmissionQueue:
    queue = AdmissionQueue(solve, **kwargs)
    queue.start()
    return queue


class TestRequestJournal:
    def test_round_trip_and_pending(self, tmp_path):
        journal = RequestJournal(tmp_path / "journal.jsonl")
        first = journal.accept(_request("alpha"))
        second = journal.accept(_request("beta"))
        journal.finish(first, "done")
        assert [entry_id for entry_id, _ in journal.pending()] == [second]

        # A fresh load sees exactly the unfinished entry and continues ids.
        reloaded = RequestJournal(tmp_path / "journal.jsonl")
        pending = reloaded.pending()
        assert len(pending) == 1
        assert pending[0][0] == second
        assert pending[0][1]["scenario"] == "beta"
        assert reloaded.accept(_request("gamma")) == second + 1

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = RequestJournal(path)
        kept = journal.accept(_request("alpha"))
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"event": "accept", "id": 2, "req')  # torn append
        reloaded = RequestJournal(path)
        assert [entry_id for entry_id, _ in reloaded.pending()] == [kept]

    def test_corrupt_line_elsewhere_is_an_error(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = RequestJournal(path)
        journal.accept(_request("alpha"))
        journal.accept(_request("beta"))
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[1] = lines[1][:10]  # corrupt a NON-final line
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(ValueError, match="not JSON"):
            RequestJournal(path)

    def test_bitflipped_request_is_dropped_not_replayed(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = RequestJournal(path)
        journal.accept(_request("alpha"))
        lines = path.read_text(encoding="utf-8").splitlines()
        record = json.loads(lines[1])
        record["request"]["scenario"] = "tampered"
        lines[1] = json.dumps(record, sort_keys=True)
        lines.append("")  # keep a final newline shape
        path.write_text("\n".join(lines), encoding="utf-8")
        assert RequestJournal(path).pending() == []

    def test_future_schema_version_is_refused(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        header = {
            "schema": JOURNAL_SCHEMA,
            "schema_version": JOURNAL_SCHEMA_VERSION + 1,
        }
        path.write_text(json.dumps(header) + "\n", encoding="utf-8")
        with pytest.raises(ValueError, match="newer than supported"):
            RequestJournal(path)

    def test_foreign_file_is_refused(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"schema": "something-else"}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="not a"):
            RequestJournal(path)


class TestCoalescing:
    def test_identical_inflight_requests_share_one_solve(self):
        solve = _GatedSolve()
        queue = _make_queue(solve, workers=2, max_queue=8)
        try:
            leader, coalesced = queue.submit(_request("alpha"))
            assert coalesced is False
            # Wait until the solve is actually running, then pile on.
            for _ in range(100):
                if solve.calls:
                    break
                time.sleep(0.01)
            followers = [queue.submit(_request("alpha")) for _ in range(3)]
            assert all(entry is leader for entry, _ in followers)
            assert all(was_coalesced for _, was_coalesced in followers)
            solve.gate.set()
            responses = [queue.wait(entry, 10) for entry, _ in followers]
            responses.append(queue.wait(leader, 10))
            assert all(response["ok"] for response in responses)
            assert len(solve.calls) == 1  # exactly one solve ran
            assert queue.counters["coalesced"] == 3
            assert queue.counters["accepted"] == 1
            assert queue.counters["completed"] == 1
        finally:
            solve.gate.set()
            queue.close()

    def test_distinct_keys_do_not_coalesce(self):
        solve = _GatedSolve()
        solve.gate.set()  # run through immediately
        queue = _make_queue(solve, workers=2, max_queue=8)
        try:
            entries = [
                queue.submit(_request("alpha"))[0],
                queue.submit(_request("alpha", cache=False))[0],
                queue.submit(_request("alpha", rate=0.5))[0],
            ]
            for entry in entries:
                queue.wait(entry, 10)
            assert len({request_key(call) for call in solve.calls}) == 3
            assert queue.counters["coalesced"] == 0
        finally:
            queue.close()


class TestBackpressure:
    def test_over_budget_raises_overloaded_with_retry_after(self):
        solve = _GatedSolve()
        queue = _make_queue(solve, workers=1, max_queue=1)
        try:
            running, _ = queue.submit(_request("alpha"))
            for _ in range(100):
                if solve.calls:
                    break
                time.sleep(0.01)
            queued, _ = queue.submit(_request("beta"))  # fills the queue
            with pytest.raises(Overloaded) as overloaded:
                queue.submit(_request("gamma"))
            assert overloaded.value.retry_after_s >= 1.0
            assert queue.counters["rejected"] == 1
            solve.gate.set()
            assert queue.wait(running, 10)["ok"]
            assert queue.wait(queued, 10)["ok"]
            # Capacity freed: the rejected request is admissible now.
            entry, _ = queue.submit(_request("gamma"))
            assert queue.wait(entry, 10)["ok"]
        finally:
            solve.gate.set()
            queue.close()


class TestDeadlines:
    def test_expired_waiter_gets_request_timeout(self):
        solve = _GatedSolve()
        queue = _make_queue(solve, workers=1, max_queue=4)
        try:
            entry, _ = queue.submit(_request("alpha"))
            with pytest.raises(RequestTimeout):
                queue.wait(entry, 0.1)
            assert queue.counters["timed_out"] == 1
            # The solve was already running, so it finishes into the cache:
            # the entry resolves even though its waiter gave up.
            solve.gate.set()
            assert entry.event.wait(10)
            assert entry.response["ok"]
            assert queue.counters["completed"] == 1
        finally:
            solve.gate.set()
            queue.close()

    def test_queued_entry_with_no_waiters_is_cancelled(self, tmp_path):
        solve = _GatedSolve()
        journal = RequestJournal(tmp_path / "journal.jsonl")
        queue = _make_queue(solve, workers=1, max_queue=4, journal=journal)
        try:
            blocker, _ = queue.submit(_request("alpha"))
            for _ in range(100):
                if solve.calls:
                    break
                time.sleep(0.01)
            queued, _ = queue.submit(_request("beta"))  # never starts
            with pytest.raises(RequestTimeout):
                queue.wait(queued, 0.1)
            assert queue.counters["cancelled"] == 1
            solve.gate.set()
            assert queue.wait(blocker, 10)["ok"]
            # The cancelled entry is finished in the journal (status
            # "cancelled"), so a restart does NOT replay it.
            assert [r["scenario"] for _, r in journal.pending()] == []
            assert len(solve.calls) == 1
        finally:
            solve.gate.set()
            queue.close()


class TestDrain:
    def test_drain_finishes_inflight_and_rejects_new(self):
        solve = _GatedSolve()
        queue = _make_queue(solve, workers=1, max_queue=4)
        try:
            entry, _ = queue.submit(_request("alpha"))
            for _ in range(100):
                if solve.calls:
                    break
                time.sleep(0.01)
            done = threading.Event()
            summary = {}

            def _drain():
                summary.update(queue.drain(10))
                done.set()

            threading.Thread(target=_drain, daemon=True).start()
            time.sleep(0.05)
            with pytest.raises(Draining):
                queue.submit(_request("beta"))
            solve.gate.set()
            assert done.wait(10)
            assert summary["still_running"] == 0
            assert queue.wait(entry, 10)["ok"]
            assert queue.counters["drained"] == 1
        finally:
            solve.gate.set()
            queue.close()

    def test_drain_timeout_abandons_queued_entries_for_replay(self, tmp_path):
        solve = _GatedSolve()
        journal = RequestJournal(tmp_path / "journal.jsonl")
        queue = _make_queue(solve, workers=1, max_queue=4, journal=journal)
        try:
            running, _ = queue.submit(_request("alpha"))
            for _ in range(100):
                if solve.calls:
                    break
                time.sleep(0.01)
            queued, _ = queue.submit(_request("beta"))
            summary = queue.drain(0.2)  # far shorter than the stuck solve
            # The queued entry was answered with a journalled-for-replay
            # error; its accept line survives.
            response = queue.wait(queued, 1)
            assert response["ok"] is False and response["status"] == 503
            assert queue.counters["abandoned"] >= 1
            assert summary["abandoned"] >= 1
            # The running solve may still be stuck; release and let it
            # finish into the cache like any drained entry.
            solve.gate.set()
            assert running.event.wait(10)
        finally:
            solve.gate.set()
            queue.close()
        pending = [r["scenario"] for _, r in journal.pending()]
        assert pending == ["beta"]

        # A fresh queue over the same journal replays exactly the backlog.
        replay_solve = _GatedSolve()
        replay_solve.gate.set()
        replay_queue = AdmissionQueue(
            replay_solve,
            workers=1,
            max_queue=4,
            journal=RequestJournal(tmp_path / "journal.jsonl"),
        )
        replay_queue.start()
        try:
            for _ in range(200):
                if replay_queue.counters["completed"] >= 1:
                    break
                time.sleep(0.01)
            assert [c["scenario"] for c in replay_solve.calls] == ["beta"]
            assert replay_queue.counters["replayed"] == 1
            assert (
                RequestJournal(tmp_path / "journal.jsonl").pending() == []
            )
        finally:
            replay_queue.close()


class TestStats:
    def test_stats_snapshot_is_consistent(self):
        solve = _GatedSolve()
        solve.gate.set()
        queue = _make_queue(solve, workers=2, max_queue=8)
        try:
            entries = [queue.submit(_request(f"s{i}"))[0] for i in range(4)]
            for entry in entries:
                queue.wait(entry, 10)
            stats = queue.stats()
            assert stats["accepted"] == 4
            assert stats["completed"] == 4
            assert stats["queued"] == 0
            assert stats["running"] == 0
            assert stats["workers"] == 2
            assert stats["draining"] is False
        finally:
            queue.close()
