"""Tests of the sweep executor: ordering, options plumbing, result objects."""

from __future__ import annotations

import json

import pytest

from repro.core.measures import GprsPerformanceMeasures
from repro.experiments.scale import ExperimentScale
from repro.experiments.sweep import sweep_arrival_rates
from repro.runtime import (
    ResultCache,
    current_options,
    execution_options,
    run_sweep,
    scenario,
)

SMOKE = ExperimentScale.smoke()


class TestOrdering:
    def test_points_come_back_in_sweep_order(self):
        spec = scenario("figure12").replace(arrival_rates=(0.9, 0.1, 0.5))
        result = run_sweep(spec, SMOKE, jobs=3, cache=None)
        assert result.arrival_rates == (0.9, 0.1, 0.5)
        assert tuple(point.index for point in result.points) == (0, 1, 2)

    def test_partial_cache_preserves_order(self, tmp_path):
        """A half-warm cache must not reorder hits before misses."""
        cache = ResultCache(tmp_path)
        warm = scenario("figure12").replace(arrival_rates=(0.5,))
        run_sweep(warm, SMOKE, cache=cache)
        mixed = scenario("figure12").replace(arrival_rates=(0.2, 0.5, 0.8))
        result = run_sweep(mixed, SMOKE, jobs=2, cache=cache)
        assert result.arrival_rates == (0.2, 0.5, 0.8)
        assert [point.from_cache for point in result.points] == [False, True, False]
        assert result.cache_hits == 1 and result.cache_misses == 2


class TestResultObjects:
    def test_series_and_measures(self):
        result = run_sweep(scenario("figure15"), SMOKE, cache=None)
        series = result.series("average_gprs_sessions")
        assert len(series) == len(SMOKE.arrival_rates)
        measures = result.measures()
        assert all(isinstance(m, GprsPerformanceMeasures) for m in measures)
        assert measures[0].average_gprs_sessions == series[0]

    def test_as_dict_is_json_serialisable_and_self_describing(self):
        result = run_sweep(scenario("figure5"), SMOKE, cache=None)
        data = json.loads(json.dumps(result.as_dict()))
        assert data["scenario"]["name"] == "figure5"
        assert len(data["points"]) == len(SMOKE.arrival_rates)
        assert data["cache"] == {"hits": 0, "misses": len(SMOKE.arrival_rates)}
        # The record must say which scale produced it, not just which scenario.
        from repro.experiments.scale import ExperimentScale

        assert ExperimentScale.from_dict(data["scale"]) == SMOKE

    def test_point_seeds_recorded(self):
        result = run_sweep(scenario("figure5"), SMOKE, cache=None)
        spec = result.spec
        assert [point.seed for point in result.points] == [
            spec.point_seed(i) for i in range(len(result.points))
        ]


class TestAmbientOptions:
    def test_default_options_are_serial_and_uncached(self):
        options = current_options()
        assert options.jobs == 1 and options.cache is None

    def test_execution_options_scope(self, tmp_path):
        cache = ResultCache(tmp_path)
        with execution_options(jobs=2, cache=cache):
            inner = current_options()
            assert inner.jobs == 2 and inner.cache is cache
        after = current_options()
        assert after.jobs == 1 and after.cache is None

    def test_sweep_arrival_rates_uses_ambient_cache(self, tmp_path):
        params = scenario("figure12").parameters(SMOKE)
        cache = ResultCache(tmp_path)
        with execution_options(cache=cache):
            first = sweep_arrival_rates(params, (0.3, 0.6))
            second = sweep_arrival_rates(params, (0.3, 0.6))
        assert cache.stats.writes == 2
        assert cache.stats.hits == 2
        assert first.measures == second.measures

    def test_explicit_arguments_override_ambient(self, tmp_path):
        params = scenario("figure12").parameters(SMOKE)
        ambient = ResultCache(tmp_path / "ambient")
        explicit = ResultCache(tmp_path / "explicit")
        with execution_options(cache=ambient):
            sweep_arrival_rates(params, (0.4,), cache=explicit)
        assert ambient.stats.writes == 0
        assert explicit.stats.writes == 1

    def test_cache_none_forces_uncached_sweep(self, tmp_path):
        """``cache=None`` must opt out of the ambient cache, not inherit it."""
        params = scenario("figure12").parameters(SMOKE)
        ambient = ResultCache(tmp_path)
        with execution_options(cache=ambient):
            sweep_arrival_rates(params, (0.4,), cache=None)
        assert ambient.stats.writes == 0
        assert ambient.stats.hits == 0

    def test_cached_sweep_matches_plain_sweep(self, tmp_path):
        params = scenario("figure12").parameters(SMOKE)
        plain = sweep_arrival_rates(params, (0.3, 0.6))
        cached = sweep_arrival_rates(
            params, (0.3, 0.6), jobs=2, cache=ResultCache(tmp_path)
        )
        assert plain.measures == cached.measures
        assert plain.arrival_rates == cached.arrival_rates


class TestRunSweepValidation:
    def test_jobs_below_one_degrades_to_serial(self):
        spec = scenario("figure5").replace(arrival_rates=(0.3,))
        result = run_sweep(spec, SMOKE, jobs=0, cache=None)
        assert len(result.points) == 1

    def test_unknown_metric_raises_at_access_time(self):
        result = run_sweep(
            scenario("figure5").replace(arrival_rates=(0.3,)), SMOKE, cache=None
        )
        with pytest.raises(KeyError):
            result.series("not_a_metric")


def _double(job):
    """Top-level worker for drive_pipelined tests (pickled under jobs > 1)."""
    return job * 2


class _FakeDriver:
    """Minimal driver: `rounds` lists of ints, result = all doubled values."""

    def __init__(self, rounds):
        self._rounds = list(rounds)
        self._cursor = 0
        self.absorbed = []
        self.done = False

    def next_jobs(self):
        if self.done:
            return []
        jobs = self._rounds[self._cursor]
        self._cursor += 1
        return list(jobs)

    def absorb(self, results):
        self.absorbed.append(list(results))
        self.done = self._cursor >= len(self._rounds)
        return self.done

    def result(self):
        return [value for batch in self.absorbed for value in batch]


class TestDrivePipelined:
    def test_serial_drives_every_round_in_order(self):
        from repro.runtime.executor import drive_pipelined

        drivers = [_FakeDriver([[1, 2], [3]]), _FakeDriver([[4], [5, 6]])]
        results, dispatched = drive_pipelined(drivers, _double, jobs=1)
        assert results == [[2, 4, 6], [8, 10, 12]]
        assert dispatched == 6

    def test_empty_rounds_are_absorbed_and_skipped(self):
        from repro.runtime.executor import drive_pipelined

        driver = _FakeDriver([[], [7], []])
        results, dispatched = drive_pipelined([driver], _double, jobs=1)
        assert results == [[14]]
        assert dispatched == 1
        assert driver.absorbed == [[], [14], []]

    def test_parallel_matches_serial(self):
        from repro.runtime.executor import drive_pipelined

        rounds = [[[1, 2, 3], [4]], [[5], [6, 7]], [[8, 9]]]
        serial, serial_count = drive_pipelined(
            [_FakeDriver(r) for r in rounds], _double, jobs=1
        )
        parallel, parallel_count = drive_pipelined(
            [_FakeDriver(r) for r in rounds], _double, jobs=2
        )
        assert parallel == serial
        assert parallel_count == serial_count == 9
