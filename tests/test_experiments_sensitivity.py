"""Tests of the sensitivity analyses."""

from __future__ import annotations

import pytest

from repro.core.measures import GprsPerformanceMeasures
from repro.core.parameters import GprsModelParameters
from repro.experiments.sensitivity import (
    SensitivityResult,
    sweep_block_error_rate,
    sweep_buffer_size,
    sweep_coding_scheme,
    sweep_gprs_dwell_time,
    sweep_tcp_threshold,
)
from repro.traffic.presets import TRAFFIC_MODEL_3
from repro.validation.shapes import is_monotone


@pytest.fixture(scope="module")
def base_parameters() -> GprsModelParameters:
    """A deliberately small configuration so every sweep solves quickly."""
    return GprsModelParameters.from_traffic_model(
        TRAFFIC_MODEL_3,
        total_call_arrival_rate=0.7,
        buffer_size=12,
        max_gprs_sessions=6,
        gprs_fraction=0.1,
    )


class TestResultContainer:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            SensitivityResult("x", (1.0, 2.0), ())
        with pytest.raises(ValueError):
            SensitivityResult("x", (), ())

    def test_series_and_rows(self, base_parameters):
        result = sweep_tcp_threshold(base_parameters, (0.5, 1.0))
        series = result.series("packet_loss_probability")
        assert len(series) == 2
        rows = result.as_rows(["packet_loss_probability", "carried_data_traffic"])
        assert rows[0]["tcp_threshold"] == 0.5
        assert set(rows[0]) == {"tcp_threshold", "packet_loss_probability",
                                "carried_data_traffic"}


class TestTcpThresholdSweep:
    def test_disabling_flow_control_maximises_loss(self, base_parameters):
        result = sweep_tcp_threshold(base_parameters, (0.5, 0.7, 1.0))
        losses = result.series("packet_loss_probability")
        assert losses[-1] == max(losses)

    def test_all_measures_are_valid(self, base_parameters):
        result = sweep_tcp_threshold(base_parameters, (0.3, 1.0))
        for measure in result.measures:
            assert isinstance(measure, GprsPerformanceMeasures)
            assert 0.0 <= measure.packet_loss_probability <= 1.0


class TestBufferSizeSweep:
    def test_larger_buffers_lose_less_and_delay_more(self, base_parameters):
        result = sweep_buffer_size(base_parameters, (5, 10, 20))
        assert is_monotone(result.series("packet_loss_probability"), increasing=False,
                           tolerance=1e-9)
        assert is_monotone(result.series("queueing_delay"), tolerance=1e-9)


class TestDwellTimeSweep:
    def test_runs_and_keeps_measures_sane(self, base_parameters):
        result = sweep_gprs_dwell_time(base_parameters, (60.0, 120.0))
        assert len(result.measures) == 2
        for measure in result.measures:
            assert measure.carried_data_traffic >= 0.0


class TestCodingSchemeSweep:
    def test_faster_coding_schemes_reduce_loss_on_a_clean_link(self, base_parameters):
        result = sweep_coding_scheme(base_parameters, ("CS-1", "CS-2", "CS-4"))
        losses = result.series("packet_loss_probability")
        assert is_monotone(losses, increasing=False, tolerance=1e-9)
        throughputs = result.series("throughput_per_user_kbit_s")
        assert throughputs[-1] >= throughputs[0]


class TestBlockErrorRateSweep:
    def test_bler_degrades_throughput_and_raises_loss(self, base_parameters):
        result = sweep_block_error_rate(base_parameters, (0.0, 0.2, 0.4))
        assert is_monotone(result.series("throughput_per_user_kbit_s"), increasing=False,
                           tolerance=1e-9)
        assert is_monotone(result.series("packet_loss_probability"), tolerance=1e-9)

    def test_zero_bler_matches_the_unmodified_model(self, base_parameters):
        from repro.core.model import GprsMarkovModel

        result = sweep_block_error_rate(base_parameters, (0.0,))
        reference = GprsMarkovModel(base_parameters).measures()
        assert result.measures[0].carried_data_traffic == pytest.approx(
            reference.carried_data_traffic, rel=1e-9
        )
