"""Tests of the birth-death chain closed forms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov.birth_death import BirthDeathChain
from repro.queueing.erlang import ErlangLossSystem, erlang_b


class TestValidation:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            BirthDeathChain([1.0, 2.0], [1.0])

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            BirthDeathChain([-1.0], [1.0])

    def test_zero_death_rate_for_reachable_state_rejected(self):
        with pytest.raises(ValueError, match="positive death rate"):
            BirthDeathChain([1.0], [0.0])

    def test_multidimensional_input_rejected(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            BirthDeathChain([[1.0]], [[1.0]])


class TestClosedForm:
    def test_two_state_chain(self):
        chain = BirthDeathChain([2.0], [3.0])
        assert chain.stationary_distribution() == pytest.approx([0.6, 0.4])

    def test_mm1k_geometric_solution(self):
        rho = 0.5
        chain = BirthDeathChain([rho] * 6, [1.0] * 6)
        expected = np.array([rho**k for k in range(7)])
        expected /= expected.sum()
        assert chain.stationary_distribution() == pytest.approx(expected)

    def test_unreachable_states_get_zero_probability(self):
        chain = BirthDeathChain([1.0, 0.0, 0.0], [1.0, 1.0, 1.0])
        pi = chain.stationary_distribution()
        assert pi[2] == 0.0
        assert pi[3] == 0.0
        assert pi.sum() == pytest.approx(1.0)

    def test_mean_matches_distribution(self):
        chain = BirthDeathChain([1.0, 1.0], [2.0, 4.0])
        pi = chain.stationary_distribution()
        assert chain.mean() == pytest.approx(np.dot(pi, np.arange(3)))

    def test_large_chain_does_not_overflow(self):
        """200-state chain with strongly increasing load stays finite (log-space)."""
        births = np.full(200, 50.0)
        deaths = np.full(200, 0.5)
        chain = BirthDeathChain(births, deaths)
        pi = chain.stationary_distribution()
        assert np.all(np.isfinite(pi))
        assert pi.sum() == pytest.approx(1.0)


class TestAgreementWithCtmc:
    def test_matches_generic_ctmc_solution(self):
        births = [1.5, 1.0, 0.5]
        deaths = [1.0, 2.0, 3.0]
        chain = BirthDeathChain(births, deaths)
        ctmc_pi = chain.to_ctmc().stationary_distribution()
        assert chain.stationary_distribution() == pytest.approx(ctmc_pi, abs=1e-10)


class TestQueueFactories:
    def test_erlang_loss_blocking_matches_erlang_b(self):
        chain = BirthDeathChain.erlang_loss(arrival_rate=3.0, service_rate=1.0, servers=5)
        assert chain.blocking_probability() == pytest.approx(erlang_b(3.0, 5), rel=1e-10)

    def test_erlang_loss_matches_erlang_system(self):
        system = ErlangLossSystem(arrival_rate=2.0, service_rate=0.5, servers=6)
        chain = BirthDeathChain.erlang_loss(2.0, 0.5, 6)
        assert chain.stationary_distribution() == pytest.approx(
            system.state_distribution(), abs=1e-12
        )

    def test_mmck_reduces_to_erlang_loss_when_capacity_equals_servers(self):
        loss = BirthDeathChain.erlang_loss(2.0, 1.0, 4)
        mmck = BirthDeathChain.mmck(2.0, 1.0, servers=4, capacity=4)
        assert mmck.stationary_distribution() == pytest.approx(
            loss.stationary_distribution()
        )

    def test_mmck_capacity_below_servers_rejected(self):
        with pytest.raises(ValueError):
            BirthDeathChain.mmck(1.0, 1.0, servers=4, capacity=3)

    def test_erlang_loss_invalid_arguments(self):
        with pytest.raises(ValueError):
            BirthDeathChain.erlang_loss(1.0, 1.0, servers=0)
        with pytest.raises(ValueError):
            BirthDeathChain.erlang_loss(1.0, 0.0, servers=2)


class TestPropertyBased:
    @given(
        loads=st.lists(st.floats(min_value=0.01, max_value=20.0), min_size=1, max_size=20),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_distribution_is_always_valid(self, loads, seed):
        rng = np.random.default_rng(seed)
        births = np.array(loads)
        deaths = rng.uniform(0.1, 10.0, size=len(loads))
        chain = BirthDeathChain(births, deaths)
        pi = chain.stationary_distribution()
        assert pi.shape == (len(loads) + 1,)
        assert np.all(pi >= 0)
        assert pi.sum() == pytest.approx(1.0)

    @given(load=st.floats(min_value=0.05, max_value=30.0),
           servers=st.integers(min_value=1, max_value=40))
    @settings(max_examples=40, deadline=None)
    def test_erlang_loss_blocking_decreases_with_servers(self, load, servers):
        smaller = BirthDeathChain.erlang_loss(load, 1.0, servers).blocking_probability()
        larger = BirthDeathChain.erlang_loss(load, 1.0, servers + 1).blocking_probability()
        assert larger <= smaller + 1e-12
