"""Tests of cell topologies: routing validity, constructors, serialisation."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.parameters import GprsModelParameters
from repro.network import (
    CellTopology,
    grid,
    hexagonal_cluster,
    hotspot,
    ring,
)
from repro.traffic.presets import TRAFFIC_MODEL_3


def _base(rate: float = 0.4) -> GprsModelParameters:
    return GprsModelParameters.from_traffic_model(
        TRAFFIC_MODEL_3, rate, buffer_size=5, max_gprs_sessions=3
    )


class TestValidation:
    def test_rows_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            CellTopology(name="bad", routing=((0.0, 0.4), (1.0, 0.0)))

    def test_probabilities_must_be_non_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            CellTopology(name="bad", routing=((0.0, 1.5, -0.5),) * 3)

    def test_matrix_must_be_square(self):
        with pytest.raises(ValueError, match="square"):
            CellTopology(name="bad", routing=((0.5, 0.5),))

    def test_self_loops_rejected_beyond_single_cell(self):
        with pytest.raises(ValueError, match="self"):
            CellTopology(name="bad", routing=((0.5, 0.5), (1.0, 0.0)))

    def test_single_cell_self_loop_is_the_homogeneity_assumption(self):
        topology = CellTopology(name="solo", routing=((1.0,),))
        assert topology.number_of_cells == 1
        assert topology.is_doubly_stochastic()

    def test_unknown_override_field_rejected(self):
        with pytest.raises(ValueError, match="unknown cell override"):
            hexagonal_cluster(3, overrides={0: {"no_such_field": 1.0}})

    def test_override_cell_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            hexagonal_cluster(3, overrides={5: {"reserved_pdch": 2}})


class TestConstructors:
    def test_seven_cell_cluster_is_fully_wrapped(self):
        """With wrap-around every cell of the 7-cell cluster borders the six others."""
        topology = hexagonal_cluster(7)
        for cell in range(7):
            assert topology.neighbours(cell) == tuple(
                c for c in range(7) if c != cell
            )
        assert topology.is_doubly_stochastic()
        assert topology.is_homogeneous()

    def test_ring_has_two_neighbours_each(self):
        topology = ring(6)
        assert topology.neighbours(0) == (1, 5)
        assert topology.neighbours(3) == (2, 4)
        assert topology.is_doubly_stochastic()

    def test_wrapped_grid_is_doubly_stochastic(self):
        topology = grid(3, 4, wrap=True)
        assert topology.number_of_cells == 12
        assert topology.is_doubly_stochastic()

    def test_open_grid_is_not_doubly_stochastic(self):
        topology = grid(2, 3, wrap=False)
        assert not topology.is_doubly_stochastic()
        # Rows still are stochastic -- flow stays inside the lattice.
        assert np.allclose(topology.routing_matrix().sum(axis=1), 1.0)

    def test_hotspot_sets_arrival_multiplier(self):
        topology = hotspot(7, hot_cell=2, arrival_multiplier=3.0)
        assert topology.overrides[2]["arrival_rate_multiplier"] == 3.0
        assert not topology.is_homogeneous()

    def test_hotspot_merges_extra_overrides(self):
        topology = hotspot(
            5,
            hot_cell=0,
            arrival_multiplier=2.0,
            extra_overrides={0: {"reserved_pdch": 4}, 1: {"block_error_rate": 0.1}},
        )
        assert topology.overrides[0] == {
            "reserved_pdch": 4,
            "arrival_rate_multiplier": 2.0,
        }
        assert topology.overrides[1] == {"block_error_rate": 0.1}


class TestCellParameters:
    def test_overrides_replace_fields(self):
        topology = hexagonal_cluster(
            3, overrides={1: {"coding_scheme": "CS-1", "block_error_rate": 0.1}}
        )
        base = _base()
        assert topology.cell_parameters(0, base) == base
        degraded = topology.cell_parameters(1, base)
        assert degraded.coding_scheme == "CS-1"
        assert degraded.block_error_rate == 0.1
        assert degraded.total_call_arrival_rate == base.total_call_arrival_rate

    def test_arrival_multiplier_composes_with_the_sweep(self):
        topology = hotspot(3, hot_cell=0, arrival_multiplier=2.5)
        for rate in (0.2, 0.8):
            hot = topology.cell_parameters(0, _base(rate))
            assert hot.total_call_arrival_rate == pytest.approx(2.5 * rate)


class TestSerialisation:
    def test_round_trip(self):
        topology = hotspot(
            7, hot_cell=1, arrival_multiplier=1.5,
            extra_overrides={3: {"coding_scheme": "CS-3"}},
        )
        rebuilt = CellTopology.from_dict(topology.to_dict())
        assert rebuilt == topology

    def test_round_trip_through_json(self):
        """JSON stringifies integer keys; from_dict must restore them."""
        topology = hexagonal_cluster(4, overrides={2: {"reserved_pdch": 3}})
        rebuilt = CellTopology.from_dict(json.loads(json.dumps(topology.to_dict())))
        assert rebuilt == topology
        assert rebuilt.overrides[2] == {"reserved_pdch": 3}

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown topology field"):
            CellTopology.from_dict({"name": "x", "routing": [[1.0]], "bogus": 1})

    def test_overrides_are_read_only(self):
        """Registered topologies are digest-addressed singletons: no mutation."""
        topology = hotspot(7, hot_cell=0, arrival_multiplier=2.0)
        with pytest.raises(TypeError):
            topology.overrides[0]["arrival_rate_multiplier"] = 5.0
        with pytest.raises(TypeError):
            topology.overrides[1] = {"reserved_pdch": 3}

    def test_pickle_round_trip(self):
        import pickle

        topology = hotspot(5, hot_cell=1, arrival_multiplier=1.5)
        rebuilt = pickle.loads(pickle.dumps(topology))
        assert rebuilt == topology
        assert rebuilt.digest() == topology.digest()

    def test_digest_tracks_content(self):
        uniform = hexagonal_cluster(7)
        assert uniform.digest() == hexagonal_cluster(7).digest()
        assert uniform.digest() != ring(7).digest()
        assert (
            uniform.digest()
            != hexagonal_cluster(7, overrides={0: {"reserved_pdch": 3}}).digest()
        )
