"""Warm-across-process behaviour of the artifact-store seams.

Each seam (propagator replay checkpoints, generator templates, coarse
corrector operators, warm-seed stacks) is exercised the way a second
*process* would see it: fresh in-memory caches, a shared on-disk store.
The acceptance-level CLI tests at the bottom really do cross a process
boundary (``python -m repro`` subprocesses sharing one ``--store-dir``).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.model import GprsMarkovModel
from repro.core.parameters import GprsModelParameters
from repro.core.template import GeneratorTemplate
from repro.experiments.scale import ExperimentScale
from repro.obs.metrics import current_registry
from repro.runtime import run_sweep, scenario
from repro.store import ArtifactStore, store_context
from repro.traffic.presets import TRAFFIC_MODEL_3
from repro.transient import PropagatorCache, TransientModel
from repro.transient.propagator import ENTRY_OVERHEAD_BYTES


def _params(rate: float = 0.4) -> GprsModelParameters:
    return GprsModelParameters.from_traffic_model(
        TRAFFIC_MODEL_3, rate, buffer_size=6, max_gprs_sessions=3
    )


def _transient_spec():
    spec = scenario("diurnal-24h")
    return spec.parameters(ExperimentScale.smoke()).with_arrival_rate(0.3), spec.transient


class TestPropagatorSeam:
    def test_fresh_cache_replays_from_store_bitwise(self, tmp_path):
        """Second 'process': new PropagatorCache, same store, zero matvecs."""
        store = ArtifactStore(tmp_path)
        params, profile = _transient_spec()
        with store_context(store):
            cold = TransientModel(
                profile, params, propagator_cache=PropagatorCache()
            ).solve()
            warm = TransientModel(
                profile, params, propagator_cache=PropagatorCache()
            ).solve()
        assert cold.propagator_hits == 0
        assert warm.matvecs == 0
        assert warm.propagator_hits == profile.schedule.number_of_segments
        assert all(trace.replayed for trace in warm.segments)
        for metric in cold.points[0].values:
            assert warm.series(metric) == cold.series(metric)
        assert np.array_equal(warm.final_distribution, cold.final_distribution)
        assert store.stats.writes > 0 and store.stats.hits > 0

    def test_store_hits_are_counted_separately(self, tmp_path):
        store = ArtifactStore(tmp_path)
        params, profile = _transient_spec()
        registry = current_registry()
        with store_context(store):
            TransientModel(profile, params, propagator_cache=PropagatorCache()).solve()
            baseline = registry.snapshot()
            cache = PropagatorCache()
            TransientModel(profile, params, propagator_cache=cache).solve()
        delta = registry.delta_since(baseline)["counters"]
        assert cache.store_hits == profile.schedule.number_of_segments
        assert delta["cache.propagator.store_hits"] == cache.store_hits
        assert delta.get("transient.matvecs", 0) == 0

    def test_no_store_means_cold_as_before(self):
        params, profile = _transient_spec()
        with store_context(None):
            first = TransientModel(
                profile, params, propagator_cache=PropagatorCache()
            ).solve()
            second = TransientModel(
                profile, params, propagator_cache=PropagatorCache()
            ).solve()
        assert first.propagator_hits == 0
        assert second.propagator_hits == 0
        assert second.matvecs > 0

    def test_aliased_checkpoints_survive_the_store(self, tmp_path):
        """Repeated identical segments share checkpoint arrays; the store
        round-trip must preserve the replay bytes exactly even so."""
        store = ArtifactStore(tmp_path)
        params, profile = _transient_spec()
        with store_context(store):
            cold = TransientModel(
                profile, params, propagator_cache=PropagatorCache()
            ).solve()
            warm = TransientModel(
                profile, params, propagator_cache=PropagatorCache()
            ).solve()
        for cold_trace, warm_trace in zip(cold.segments, warm.segments):
            assert warm_trace.stationary_from_s == cold_trace.stationary_from_s
            assert warm_trace.stationarity_residual == cold_trace.stationarity_residual


class TestTemplateSeam:
    def test_fresh_process_builds_zero_templates(self, tmp_path):
        store = ArtifactStore(tmp_path)
        params = _params()
        registry = current_registry()
        with store_context(store):
            cold = GeneratorTemplate.build(params)
            baseline = registry.snapshot()
            warm = GeneratorTemplate.build(params)
        delta = registry.delta_since(baseline)["counters"]
        assert delta.get("template.builds", 0) == 0
        assert delta["template.store_hits"] == 1
        rates = {
            "gsm_handover_arrival_rate": 0.1,
            "gprs_handover_arrival_rate": 0.02,
        }
        matrix_cold = cold.generator(params, **rates).toarray()
        matrix_warm = warm.generator(params, **rates).toarray()
        assert np.array_equal(matrix_cold, matrix_warm)

    def test_solutions_through_store_templates_are_bitwise(self, tmp_path):
        store = ArtifactStore(tmp_path)
        params = _params()
        with store_context(store):
            cold = GprsMarkovModel(params).solve()
        with store_context(store):
            warm = GprsMarkovModel(params).solve()
        with store_context(None):
            plain = GprsMarkovModel(params).solve()
        assert np.array_equal(
            warm.steady_state.distribution, cold.steady_state.distribution
        )
        assert np.array_equal(
            warm.steady_state.distribution, plain.steady_state.distribution
        )
        assert warm.measures.as_dict() == plain.measures.as_dict()


class TestCoarseSeam:
    def test_structured_solver_reuses_the_coarse_operator(self, tmp_path):
        # The correction engages only at real buffer depth (the paper's
        # K=100); shallow presets never build the coarse operator at all.
        store = ArtifactStore(tmp_path)
        params = GprsModelParameters.from_traffic_model(
            TRAFFIC_MODEL_3, 0.5, buffer_size=100, max_gprs_sessions=10
        )
        registry = current_registry()
        with store_context(store):
            cold = GprsMarkovModel(params, solver_method="structured").solve()
            assert cold.steady_state.coarse_corrections >= 1
            baseline = registry.snapshot()
            warm = GprsMarkovModel(params, solver_method="structured").solve()
        delta = registry.delta_since(baseline)["counters"]
        assert delta.get("solver.structured.coarse_store_hits", 0) >= 1
        assert np.array_equal(
            warm.steady_state.distribution, cold.steady_state.distribution
        )
        with store_context(None):
            plain = GprsMarkovModel(params, solver_method="structured").solve()
        assert np.array_equal(
            warm.steady_state.distribution, plain.steady_state.distribution
        )


class TestWarmSeedSeam:
    def test_seeding_is_opt_in_and_tolerance_level(self, tmp_path):
        store = ArtifactStore(tmp_path)
        spec = scenario("figure12")
        scale = ExperimentScale.smoke()
        registry = current_registry()
        with store_context(store):
            cold = run_sweep(spec, scale, cache=None)  # persists the seed stack
            baseline = registry.snapshot()
            default = run_sweep(spec, scale, cache=None)  # seeding OFF by default
            unseeded_delta = registry.delta_since(baseline)["counters"]
            baseline = registry.snapshot()
            seeded = run_sweep(spec, scale, cache=None, seed_from_store=True)
            seeded_delta = registry.delta_since(baseline)["counters"]
        assert unseeded_delta.get("executor.store_seeded", 0) == 0
        assert seeded_delta.get("executor.store_seeded", 0) >= 1
        for cold_point, default_point, seeded_point in zip(
            cold.points, default.points, seeded.points
        ):
            for name, value in cold_point.values.items():
                assert default_point.values[name] == value  # default stays bitwise
                assert seeded_point.values[name] == pytest.approx(
                    value, rel=1e-6, abs=1e-9
                )


def _cli(tmp_path: Path, *argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
    env.pop("REPRO_STORE_DIR", None)
    env.pop("REPRO_FAULTS", None)
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=tmp_path,
        timeout=600,
    )


class TestCrossProcessAcceptance:
    """The ISSUE's acceptance bar: a *second process* sharing the store
    re-solves with zero propagator matvecs / zero cold template builds and
    byte-identical canonical output."""

    def test_transient_second_process_is_warm_and_bitwise(self, tmp_path):
        store_dir = tmp_path / "store"
        args = (
            "transient", "diurnal-24h", "--preset", "smoke", "--no-cache",
            "--store-dir", str(store_dir), "--canonical",
        )
        first = _cli(tmp_path, *args, "--ledger", str(tmp_path / "first.jsonl"))
        assert first.returncode == 0, first.stderr
        second = _cli(tmp_path, *args, "--ledger", str(tmp_path / "second.jsonl"))
        assert second.returncode == 0, second.stderr
        assert second.stdout == first.stdout  # byte-identical canonical JSON

        first_rec = json.loads((tmp_path / "first.jsonl").read_text().splitlines()[-1])
        second_rec = json.loads((tmp_path / "second.jsonl").read_text().splitlines()[-1])
        assert first_rec["metrics"]["counters"].get("transient.matvecs", 0) > 0
        assert second_rec["metrics"]["counters"].get("transient.matvecs", 0) == 0
        assert second_rec["store"]["hits"] > 0
        assert first_rec["store"]["writes"] > 0

    def test_network_second_process_builds_no_templates(self, tmp_path):
        store_dir = tmp_path / "store"
        args = (
            "network", "homogeneous-7", "--preset", "smoke", "--no-cache",
            "--store-dir", str(store_dir), "--canonical",
        )
        first = _cli(tmp_path, *args, "--ledger", str(tmp_path / "first.jsonl"))
        assert first.returncode == 0, first.stderr
        second = _cli(tmp_path, *args, "--ledger", str(tmp_path / "second.jsonl"))
        assert second.returncode == 0, second.stderr
        assert second.stdout == first.stdout

        first_rec = json.loads((tmp_path / "first.jsonl").read_text().splitlines()[-1])
        second_rec = json.loads((tmp_path / "second.jsonl").read_text().splitlines()[-1])
        assert first_rec["metrics"]["counters"].get("template.builds", 0) > 0
        assert second_rec["metrics"]["counters"].get("template.builds", 0) == 0
        assert (
            second_rec["metrics"]["counters"].get("template.store_hits", 0) > 0
        )

    def test_no_store_runs_match_store_runs_canonically(self, tmp_path):
        warm = _cli(
            tmp_path,
            "transient", "diurnal-24h", "--preset", "smoke", "--no-cache",
            "--store-dir", str(tmp_path / "store"), "--canonical",
        )
        assert warm.returncode == 0, warm.stderr
        cold = _cli(
            tmp_path,
            "transient", "diurnal-24h", "--preset", "smoke", "--no-cache",
            "--no-store", "--canonical",
        )
        assert cold.returncode == 0, cold.stderr
        assert warm.stdout == cold.stdout
