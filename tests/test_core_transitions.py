"""Tests of the transition rules of Table 1."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parameters import GprsModelParameters
from repro.core.state_space import GprsStateSpace
from repro.core.transitions import (
    enumerate_transitions,
    offered_packet_rate,
    pdch_in_use,
)
from repro.traffic.presets import TRAFFIC_MODEL_3


@pytest.fixture
def params() -> GprsModelParameters:
    return GprsModelParameters.from_traffic_model(
        TRAFFIC_MODEL_3,
        total_call_arrival_rate=0.5,
        buffer_size=5,
        max_gprs_sessions=3,
    )


@pytest.fixture
def space(params) -> GprsStateSpace:
    return GprsStateSpace(params.gsm_channels, params.buffer_size, params.max_gprs_sessions)


@pytest.fixture
def batches(params, space):
    return enumerate_transitions(
        params, space, gsm_handover_arrival_rate=0.1, gprs_handover_arrival_rate=0.02
    )


def batch_by_event(batches, event):
    for batch in batches:
        if batch.event == event:
            return batch
    raise AssertionError(f"no batch for event {event}")


def transitions_as_dict(batches):
    """Return {(source, target): total rate} over all batches."""
    rates: dict[tuple[int, int], float] = {}
    for batch in batches:
        for source, target, rate in zip(batch.source, batch.target, batch.rate):
            key = (int(source), int(target))
            rates[key] = rates.get(key, 0.0) + float(rate)
    return rates


class TestChannelAndRateHelpers:
    def test_pdch_in_use_is_min_of_free_channels_and_multislot(self, params):
        assert pdch_in_use(params, gsm_calls=np.array([0]), buffered_packets=np.array([1])) == 8
        assert pdch_in_use(params, np.array([0]), np.array([5])) == 20
        assert pdch_in_use(params, np.array([19]), np.array([5])) == 1
        assert pdch_in_use(params, np.array([10]), np.array([0])) == 0

    def test_offered_rate_below_threshold_is_uncontrolled(self, params):
        rate = offered_packet_rate(
            params, np.array([0]), np.array([0]), np.array([3]), np.array([1])
        )
        assert rate[0] == pytest.approx(2 * params.packet_rate)

    def test_offered_rate_above_threshold_is_capped(self, params):
        # Buffer size 5, threshold 0.7 -> throttling above k = 3.
        k = params.tcp_threshold_packets + 1
        rate = offered_packet_rate(
            params, np.array([19]), np.array([k]), np.array([3]), np.array([0])
        )
        capacity = min(params.number_of_channels - 19, 8 * k) * params.pdch_service_rate
        assert rate[0] == pytest.approx(min(3 * params.packet_rate, capacity))


class TestTransitionStructure:
    def test_event_classes_present(self, batches):
        events = {batch.event for batch in batches}
        assert events == {
            "gsm_arrival",
            "gprs_arrival_on",
            "gprs_arrival_off",
            "gsm_departure",
            "gprs_departure_off",
            "gprs_departure_on",
            "packet_arrival",
            "packet_service",
            "source_switches_off",
            "source_switches_on",
        }

    def test_no_self_loops_and_positive_rates(self, batches):
        for batch in batches:
            assert np.all(batch.source != batch.target), batch.event
            assert np.all(batch.rate > 0), batch.event

    def test_gsm_arrival_count_and_rate(self, params, space, batches):
        batch = batch_by_event(batches, "gsm_arrival")
        states = space.all_states()
        eligible = int(np.sum(states.gsm_calls < space.gsm_channels))
        assert len(batch) == eligible
        assert np.all(
            batch.rate == pytest.approx(params.gsm_arrival_rate + 0.1)
        )

    def test_packet_arrival_blocked_at_full_buffer(self, space, batches):
        batch = batch_by_event(batches, "packet_arrival")
        sources = space.decode(batch.source)
        assert np.all(sources.buffered_packets < space.buffer_size)
        targets = space.decode(batch.target)
        assert np.array_equal(targets.buffered_packets, sources.buffered_packets + 1)

    def test_packet_service_needs_packets_and_channels(self, space, batches, params):
        batch = batch_by_event(batches, "packet_service")
        sources = space.decode(batch.source)
        assert np.all(sources.buffered_packets > 0)
        expected = (
            pdch_in_use(params, sources.gsm_calls, sources.buffered_packets)
            * params.pdch_service_rate
        )
        assert batch.rate == pytest.approx(expected)

    def test_mmpp_switch_rates(self, space, batches, params):
        less_bursty = batch_by_event(batches, "source_switches_off")
        sources = space.decode(less_bursty.source)
        expected = (sources.gprs_sessions - sources.sessions_off) * params.on_to_off_rate
        assert less_bursty.rate == pytest.approx(expected)

        more_bursty = batch_by_event(batches, "source_switches_on")
        sources = space.decode(more_bursty.source)
        assert more_bursty.rate == pytest.approx(sources.sessions_off * params.off_to_on_rate)

    def test_gprs_departure_splits_by_phase(self, space, batches, params):
        """Rates r*(mu+mu_h) towards (m-1, r-1) and (m-r)*(mu+mu_h) towards (m-1, r)."""
        departure_rate = params.gprs_completion_rate + params.gprs_handover_departure_rate
        off_batch = batch_by_event(batches, "gprs_departure_off")
        sources = space.decode(off_batch.source)
        assert off_batch.rate == pytest.approx(sources.sessions_off * departure_rate)
        on_batch = batch_by_event(batches, "gprs_departure_on")
        sources = space.decode(on_batch.source)
        assert on_batch.rate == pytest.approx(
            (sources.gprs_sessions - sources.sessions_off) * departure_rate
        )

    def test_total_gprs_departure_rate_matches_table1(self, params, space, batches):
        """Summed over both phases the departure rate is m * (mu_GPRS + mu_h,GPRS)."""
        departure_rate = params.gprs_completion_rate + params.gprs_handover_departure_rate
        totals: dict[int, float] = {}
        for event in ("gprs_departure_off", "gprs_departure_on"):
            batch = batch_by_event(batches, event)
            for source, rate in zip(batch.source, batch.rate):
                totals[int(source)] = totals.get(int(source), 0.0) + float(rate)
        states = space.all_states()
        for source, total in totals.items():
            m = states.gprs_sessions[source]
            assert total == pytest.approx(m * departure_rate)

    def test_gprs_arrival_phase_split(self, params, space, batches):
        """New sessions start on with probability b/(a+b) and off otherwise."""
        arrival_rate = params.gprs_arrival_rate + 0.02
        on_batch = batch_by_event(batches, "gprs_arrival_on")
        off_batch = batch_by_event(batches, "gprs_arrival_off")
        p_on = params.probability_session_starts_on
        assert np.all(on_batch.rate == pytest.approx(p_on * arrival_rate))
        assert np.all(off_batch.rate == pytest.approx((1 - p_on) * arrival_rate))
        # Targets: on keeps r, off increments r.
        on_sources = space.decode(on_batch.source)
        on_targets = space.decode(on_batch.target)
        assert np.array_equal(on_targets.sessions_off, on_sources.sessions_off)
        assert np.array_equal(on_targets.gprs_sessions, on_sources.gprs_sessions + 1)
        off_sources = space.decode(off_batch.source)
        off_targets = space.decode(off_batch.target)
        assert np.array_equal(off_targets.sessions_off, off_sources.sessions_off + 1)

    def test_transitions_conserve_user_counts(self, space, batches):
        """Packet events never change (n, m, r); user events never change k."""
        for event in ("packet_arrival", "packet_service"):
            batch = batch_by_event(batches, event)
            sources = space.decode(batch.source)
            targets = space.decode(batch.target)
            assert np.array_equal(sources.gsm_calls, targets.gsm_calls)
            assert np.array_equal(sources.gprs_sessions, targets.gprs_sessions)
            assert np.array_equal(sources.sessions_off, targets.sessions_off)
        for event in ("gsm_arrival", "gsm_departure", "gprs_arrival_on",
                      "gprs_departure_on", "source_switches_on"):
            batch = batch_by_event(batches, event)
            sources = space.decode(batch.source)
            targets = space.decode(batch.target)
            assert np.array_equal(sources.buffered_packets, targets.buffered_packets)


class TestParameterMismatch:
    def test_space_mismatch_rejected(self, params):
        wrong_space = GprsStateSpace(10, params.buffer_size, params.max_gprs_sessions)
        with pytest.raises(ValueError, match="GSM channels"):
            enumerate_transitions(
                params, wrong_space,
                gsm_handover_arrival_rate=0.0, gprs_handover_arrival_rate=0.0,
            )

    def test_negative_handover_rates_rejected(self, params, space):
        with pytest.raises(ValueError, match="non-negative"):
            enumerate_transitions(
                params, space,
                gsm_handover_arrival_rate=-0.1, gprs_handover_arrival_rate=0.0,
            )
