"""Tests of MMPP / IPP processes and the aggregation used by the GPRS model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov.mmpp import (
    InterruptedPoissonProcess,
    MarkovModulatedPoissonProcess,
    aggregate_identical_ipps,
    product_form_ipps,
    stationary_phase_distribution,
    superpose_mmpps,
)


@pytest.fixture
def web_browsing_ipp() -> InterruptedPoissonProcess:
    """IPP of traffic model 2: 8 packets/s while on, a = 0.32, b = 1/412."""
    return InterruptedPoissonProcess(
        packet_rate=8.0, on_to_off_rate=1 / 3.125, off_to_on_rate=1 / 412.0
    )


class TestInterruptedPoissonProcess:
    def test_on_off_probabilities(self, web_browsing_ipp):
        a = web_browsing_ipp.on_to_off_rate
        b = web_browsing_ipp.off_to_on_rate
        assert web_browsing_ipp.probability_on() == pytest.approx(b / (a + b))
        assert web_browsing_ipp.probability_on() + web_browsing_ipp.probability_off() == (
            pytest.approx(1.0)
        )

    def test_mean_durations(self, web_browsing_ipp):
        assert web_browsing_ipp.mean_on_duration() == pytest.approx(3.125)
        assert web_browsing_ipp.mean_off_duration() == pytest.approx(412.0)

    def test_mean_arrival_rate(self, web_browsing_ipp):
        expected = 8.0 * web_browsing_ipp.probability_on()
        assert web_browsing_ipp.mean_arrival_rate() == pytest.approx(expected)

    def test_peak_rate(self, web_browsing_ipp):
        assert web_browsing_ipp.peak_arrival_rate() == pytest.approx(8.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            InterruptedPoissonProcess(-1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            InterruptedPoissonProcess(1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            InterruptedPoissonProcess(1.0, 1.0, -2.0)

    def test_burstiness_exceeds_poisson(self, web_browsing_ipp):
        """An on-off source is burstier than Poisson: IDC > 1."""
        assert web_browsing_ipp.index_of_dispersion() > 1.0


class TestMmppValidation:
    def test_rates_must_match_generator_dimension(self):
        with pytest.raises(ValueError, match="vector matching"):
            MarkovModulatedPoissonProcess(np.zeros((2, 2)), np.array([1.0]))

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            MarkovModulatedPoissonProcess(np.zeros((1, 1)), np.array([-1.0]))

    def test_generator_must_be_square(self):
        with pytest.raises(ValueError, match="square"):
            MarkovModulatedPoissonProcess(np.zeros((2, 3)), np.array([1.0, 2.0]))

    def test_constant_rate_mmpp_is_poisson(self):
        process = MarkovModulatedPoissonProcess(
            np.array([[-1.0, 1.0], [1.0, -1.0]]), np.array([5.0, 5.0])
        )
        assert process.mean_arrival_rate() == pytest.approx(5.0)
        assert process.index_of_dispersion() == pytest.approx(1.0, abs=1e-6)


class TestAggregation:
    """m identical IPPs aggregate into an (m+1)-state birth-death MMPP."""

    def test_zero_sources(self, web_browsing_ipp):
        aggregated = aggregate_identical_ipps(web_browsing_ipp, 0)
        assert aggregated.number_of_states == 1
        assert aggregated.mean_arrival_rate() == pytest.approx(0.0)

    def test_single_source_matches_ipp(self, web_browsing_ipp):
        aggregated = aggregate_identical_ipps(web_browsing_ipp, 1)
        assert aggregated.number_of_states == 2
        assert aggregated.mean_arrival_rate() == pytest.approx(
            web_browsing_ipp.mean_arrival_rate()
        )

    @pytest.mark.parametrize("count", [2, 3, 5])
    def test_mean_rate_scales_linearly(self, web_browsing_ipp, count):
        aggregated = aggregate_identical_ipps(web_browsing_ipp, count)
        assert aggregated.mean_arrival_rate() == pytest.approx(
            count * web_browsing_ipp.mean_arrival_rate(), rel=1e-9
        )

    @pytest.mark.parametrize("count", [2, 3, 4])
    def test_aggregation_matches_product_form(self, count):
        """The (m+1)-state aggregation has the same rate statistics as the 2^m product."""
        source = InterruptedPoissonProcess(4.0, 0.5, 0.25)
        aggregated = aggregate_identical_ipps(source, count)
        product = product_form_ipps(source, count)
        assert aggregated.mean_arrival_rate() == pytest.approx(
            product.mean_arrival_rate(), rel=1e-10
        )
        # Second moment of the stationary arrival rate matches as well.
        agg_pi = aggregated.stationary_distribution()
        prod_pi = product.stationary_distribution()
        agg_second = float(np.dot(agg_pi, aggregated.rates**2))
        prod_second = float(np.dot(prod_pi, product.rates**2))
        assert agg_second == pytest.approx(prod_second, rel=1e-10)

    def test_aggregated_phase_distribution_is_binomial(self, web_browsing_ipp):
        """The number of off sources is Binomial(m, p_off) in steady state."""
        count = 6
        aggregated = aggregate_identical_ipps(web_browsing_ipp, count)
        pi = aggregated.stationary_distribution()
        p_off = web_browsing_ipp.probability_off()
        from scipy.stats import binom

        expected = binom.pmf(np.arange(count + 1), count, p_off)
        assert pi == pytest.approx(expected, abs=1e-9)

    def test_negative_count_rejected(self, web_browsing_ipp):
        with pytest.raises(ValueError):
            aggregate_identical_ipps(web_browsing_ipp, -1)

    def test_product_form_limited_to_small_counts(self, web_browsing_ipp):
        with pytest.raises(ValueError, match="limited"):
            product_form_ipps(web_browsing_ipp, 20)


class TestSuperposition:
    def test_superposition_mean_rate_is_additive(self):
        first = InterruptedPoissonProcess(3.0, 1.0, 1.0)
        second = InterruptedPoissonProcess(5.0, 0.2, 0.6)
        combined = superpose_mmpps(first, second)
        assert combined.number_of_states == 4
        assert combined.mean_arrival_rate() == pytest.approx(
            first.mean_arrival_rate() + second.mean_arrival_rate(), rel=1e-9
        )

    def test_superposition_generator_rows_sum_to_zero(self):
        first = InterruptedPoissonProcess(3.0, 1.0, 1.0)
        second = InterruptedPoissonProcess(5.0, 0.2, 0.6)
        combined = superpose_mmpps(first, second)
        assert np.allclose(combined.generator.sum(axis=1), 0.0)


class TestCompositeGenerator:
    def test_mmpp_m1k_generator_is_valid(self, web_browsing_ipp):
        generator = web_browsing_ipp.composite_generator(buffer_levels=5)
        assert generator.shape == (12, 12)
        assert np.allclose(np.asarray(generator.sum(axis=1)).ravel(), 0.0, atol=1e-12)

    def test_buffer_levels_must_be_positive(self, web_browsing_ipp):
        with pytest.raises(ValueError):
            web_browsing_ipp.composite_generator(0)

    def test_stationary_phase_distribution_helper(self, web_browsing_ipp):
        pi = stationary_phase_distribution(web_browsing_ipp)
        assert pi == pytest.approx(
            [web_browsing_ipp.probability_on(), web_browsing_ipp.probability_off()]
        )


class TestPropertyBased:
    @given(
        packet_rate=st.floats(min_value=0.1, max_value=50.0),
        on_rate=st.floats(min_value=0.01, max_value=10.0),
        off_rate=st.floats(min_value=0.01, max_value=10.0),
        count=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_aggregated_rate_always_scales(self, packet_rate, on_rate, off_rate, count):
        source = InterruptedPoissonProcess(packet_rate, on_rate, off_rate)
        aggregated = aggregate_identical_ipps(source, count)
        assert aggregated.mean_arrival_rate() == pytest.approx(
            count * source.mean_arrival_rate(), rel=1e-8
        )
        pi = aggregated.stationary_distribution()
        assert pi.sum() == pytest.approx(1.0)
        assert np.all(pi >= -1e-12)
