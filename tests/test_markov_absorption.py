"""Tests of first-passage / absorption analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.markov.absorption import (
    AbsorbingCtmcAnalysis,
    absorption_probabilities,
    expected_time_to_absorption,
    first_passage_time_moments,
)


def busy_mobile_generator(completion_rate: float, handover_rate: float) -> np.ndarray:
    """Three-state chain: 0 = busy in cell, 1 = call completed, 2 = handed over.

    This is the paper's mobility question in miniature: a busy mobile leaves
    the cell either because its call completes or because it hands over.
    """
    total = completion_rate + handover_rate
    return np.array(
        [
            [-total, completion_rate, handover_rate],
            [0.0, 0.0, 0.0],
            [0.0, 0.0, 0.0],
        ]
    )


class TestExpectedAbsorptionTime:
    def test_exponential_race(self):
        """Busy mobile: time to leave is exponential with the combined rate."""
        generator = busy_mobile_generator(1.0 / 120.0, 1.0 / 60.0)
        times = expected_time_to_absorption(generator, transient=[0], absorbing=[1, 2])
        assert times[0] == pytest.approx(1.0 / (1.0 / 120.0 + 1.0 / 60.0), rel=1e-9)

    def test_tandem_stages_add_up(self):
        """Two exponential stages in series absorb after the sum of their means."""
        generator = np.array(
            [
                [-2.0, 2.0, 0.0],
                [0.0, -5.0, 5.0],
                [0.0, 0.0, 0.0],
            ]
        )
        times = expected_time_to_absorption(generator, transient=[0, 1], absorbing=[2])
        assert times[1] == pytest.approx(0.2, rel=1e-9)
        assert times[0] == pytest.approx(0.5 + 0.2, rel=1e-9)

    def test_partition_validation(self):
        generator = busy_mobile_generator(0.1, 0.1)
        with pytest.raises(ValueError):
            expected_time_to_absorption(generator, transient=[0, 1], absorbing=[1, 2])
        with pytest.raises(ValueError):
            expected_time_to_absorption(generator, transient=[], absorbing=[1])
        with pytest.raises(ValueError):
            expected_time_to_absorption(generator, transient=[0], absorbing=[])


class TestAbsorptionProbabilities:
    def test_competing_risks_split(self):
        """P(handover before completion) = handover rate / total rate."""
        completion, handover = 1.0 / 120.0, 1.0 / 60.0
        generator = busy_mobile_generator(completion, handover)
        matrix = absorption_probabilities(generator, transient=[0], absorbing=[1, 2])
        assert matrix[0, 0] == pytest.approx(completion / (completion + handover), rel=1e-9)
        assert matrix[0, 1] == pytest.approx(handover / (completion + handover), rel=1e-9)

    def test_rows_sum_to_one(self):
        generator = np.array(
            [
                [-3.0, 1.0, 1.0, 1.0],
                [0.5, -2.5, 1.0, 1.0],
                [0.0, 0.0, 0.0, 0.0],
                [0.0, 0.0, 0.0, 0.0],
            ]
        )
        matrix = absorption_probabilities(generator, transient=[0, 1], absorbing=[2, 3])
        assert np.allclose(matrix.sum(axis=1), 1.0)


class TestMoments:
    def test_first_moment_matches_expected_time(self):
        generator = busy_mobile_generator(0.01, 0.02)
        times = expected_time_to_absorption(generator, [0], [1, 2])
        moments = first_passage_time_moments(generator, [0], [1, 2], order=2)
        assert moments[0, 0] == pytest.approx(times[0], rel=1e-12)

    def test_exponential_second_moment(self):
        generator = busy_mobile_generator(0.05, 0.05)
        moments = first_passage_time_moments(generator, [0], [1, 2], order=2)
        mean = moments[0, 0]
        assert moments[1, 0] == pytest.approx(2.0 * mean * mean, rel=1e-9)

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            first_passage_time_moments(busy_mobile_generator(0.1, 0.1), [0], [1, 2], order=0)


class TestAnalysisWrapper:
    def test_dictionaries_are_keyed_by_state_index(self):
        generator = busy_mobile_generator(1.0 / 120.0, 1.0 / 60.0)
        analysis = AbsorbingCtmcAnalysis(generator, transient_states=(0,), absorbing_states=(1, 2))
        times = analysis.expected_absorption_times()
        probabilities = analysis.absorption_probability_matrix()
        assert set(times) == {0}
        assert set(probabilities[0]) == {1, 2}
        assert sum(probabilities[0].values()) == pytest.approx(1.0)

    def test_standard_deviation_of_exponential_equals_mean(self):
        generator = busy_mobile_generator(0.02, 0.03)
        analysis = AbsorbingCtmcAnalysis(generator, (0,), (1, 2))
        times = analysis.expected_absorption_times()
        stds = analysis.absorption_time_std()
        assert stds[0] == pytest.approx(times[0], rel=1e-9)

    def test_overlapping_partition_rejected_at_construction(self):
        with pytest.raises(ValueError):
            AbsorbingCtmcAnalysis(busy_mobile_generator(0.1, 0.1), (0, 1), (1, 2))
