"""Tests of the transient model: anchors, continuity, early stop, templates."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GprsMarkovModel, GprsModelParameters, traffic_model
from repro.core.handover import balance_handover_rates
from repro.experiments.scale import ExperimentScale
from repro.runtime import scenario
from repro.transient import (
    RateSchedule,
    ScheduleSegment,
    TransientModel,
    WorkloadProfile,
    busy_hour_ramp,
    constant_workload,
    flash_crowd,
    outage_recovery,
)
from repro.validation.transient import check_transient_steady_state


def mini_parameters(rate: float = 0.5) -> GprsModelParameters:
    """A small, fast-mixing configuration (the GSM call duration dominates
    the relaxation time, so it is shortened to make 1e-8 convergence cheap)."""
    return GprsModelParameters.from_traffic_model(
        traffic_model(3),
        total_call_arrival_rate=rate,
        number_of_channels=6,
        reserved_pdch=2,
        buffer_size=4,
        max_gprs_sessions=2,
        mean_gsm_call_duration_s=5.0,
        mean_gsm_dwell_time_s=3.0,
        mean_gprs_dwell_time_s=4.0,
    )


def short_profile(samples: int = 6) -> WorkloadProfile:
    """A quick three-segment spike used by several tests."""
    return flash_crowd(
        spike_multiplier=2.5,
        lead_duration_s=6.0,
        spike_duration_s=8.0,
        recovery_duration_s=16.0,
        samples=samples,
    )


class TestValidationAnchor:
    def test_constant_schedule_stays_on_steady_state_default_preset(self):
        """Acceptance anchor: at the default preset (26k states) a constant
        schedule started on the fixed point must agree with the steady-state
        solver to 1e-8 at every sample -- and the early stop must make the
        whole trajectory cost a handful of matrix-vector products."""
        params = scenario("figure12").parameters(
            ExperimentScale.default()
        ).with_arrival_rate(0.5)
        check = check_transient_steady_state(params, horizon_s=3600.0, samples=5)
        assert check.passed, check.summary()
        assert check.worst_measure_error <= 1e-8
        assert check.early_stopped
        assert check.matvecs <= 10

    def test_empty_start_converges_to_steady_state(self):
        """Genuine relaxation: from the empty cell a constant schedule must
        land on the steady-state measures within 1e-8 by a long horizon."""
        check = check_transient_steady_state(
            mini_parameters(), horizon_s=200.0, samples=4, initial="empty"
        )
        assert check.passed, check.summary()
        assert check.final_measure_error <= 1e-8
        assert not check.early_stopped  # convergence proved without the shortcut
        # The early samples legitimately deviate (they are the transient).
        assert check.worst_measure_error > check.final_measure_error

    def test_summary_mentions_pass_and_tolerance(self):
        check = check_transient_steady_state(mini_parameters(), horizon_s=50.0)
        assert "transient anchor" in check.summary()
        assert "PASS" in check.summary()


class TestSegmentContinuity:
    def test_split_segment_matches_single_segment(self):
        """A segment split in two at a breakpoint is the same workload: the
        distribution must carry across the breakpoint and produce the same
        trajectory."""
        params = mini_parameters()
        whole = TransientModel(
            WorkloadProfile(
                schedule=RateSchedule(
                    name="whole",
                    segments=(
                        ScheduleSegment(duration_s=30.0, arrival_rate_multiplier=2.0),
                    ),
                ),
                times=(15.0, 30.0),
                initial="empty",
            ),
            params,
        ).solve()
        split = TransientModel(
            WorkloadProfile(
                schedule=RateSchedule(
                    name="split",
                    segments=(
                        ScheduleSegment(duration_s=15.0, arrival_rate_multiplier=2.0),
                        ScheduleSegment(duration_s=15.0, arrival_rate_multiplier=2.0),
                    ),
                ),
                times=(15.0, 30.0),
                initial="empty",
            ),
            params,
        ).solve()
        assert np.allclose(
            whole.final_distribution, split.final_distribution, atol=1e-12
        )
        for metric in ("packet_loss_probability", "carried_data_traffic"):
            assert whole.series(metric) == pytest.approx(
                split.series(metric), abs=1e-10
            )

    def test_shape_change_conserves_mass_and_remaps(self):
        params = mini_parameters()
        result = TransientModel(
            outage_recovery(
                outage_channels=4,
                lead_duration_s=5.0,
                outage_duration_s=10.0,
                recovery_duration_s=10.0,
                samples=5,
            ),
            params,
        ).solve()
        assert [trace.remapped for trace in result.segments] == [False, True, True]
        sizes = [trace.states for trace in result.segments]
        assert sizes[0] == sizes[2] and sizes[1] < sizes[0]
        assert result.final_distribution.sum() == pytest.approx(1.0, abs=1e-12)
        assert all(
            point.values["packet_loss_probability"] >= 0.0 for point in result.points
        )

    def test_sample_at_breakpoint_uses_the_new_segment(self):
        params = mini_parameters()
        result = TransientModel(
            WorkloadProfile(
                schedule=RateSchedule(
                    name="step",
                    segments=(
                        ScheduleSegment(duration_s=10.0),
                        ScheduleSegment(duration_s=10.0, arrival_rate_multiplier=3.0),
                    ),
                ),
                times=(0.0, 10.0, 20.0),
            ),
            params,
        ).solve()
        assert result.points[0].arrival_rate == pytest.approx(0.5)
        assert result.points[1].segment == 1
        assert result.points[1].arrival_rate == pytest.approx(1.5)


class TestEarlyStop:
    def test_early_stop_matches_disabled_early_stop(self):
        params = mini_parameters()
        profile = short_profile()
        adaptive = TransientModel(profile, params).solve()
        exhaustive = TransientModel(profile, params, steady_state_tol=0.0).solve()
        for metric in ("packet_loss_probability", "mean_queue_length"):
            assert adaptive.series(metric) == pytest.approx(
                exhaustive.series(metric), abs=1e-9
            )
        assert exhaustive.early_stopped_segments == 0
        assert adaptive.matvecs <= exhaustive.matvecs

    def test_stationary_start_on_constant_schedule_is_free(self):
        params = mini_parameters()
        result = TransientModel(constant_workload(500.0, samples=5), params).solve()
        assert result.early_stopped_segments == 1
        assert result.matvecs <= 2
        assert result.segments[0].stationary_from_s == 0.0


class TestQuasiStationaryHandover:
    def test_segment_rates_solve_the_segment_balance(self):
        params = mini_parameters()
        result = TransientModel(short_profile(), params).solve()
        for trace, segment in zip(
            result.segments, short_profile().schedule.segments
        ):
            fresh = balance_handover_rates(segment.parameters(params))
            assert trace.gsm_handover_rate == pytest.approx(
                fresh.gsm_handover_arrival_rate, abs=1e-8
            )
            assert trace.gprs_handover_rate == pytest.approx(
                fresh.gprs_handover_arrival_rate, abs=1e-8
            )


class TestTemplateReuse:
    def test_rate_only_schedule_enumerates_once(self):
        params = mini_parameters()
        result = TransientModel(
            busy_hour_ramp(step_duration_s=4.0, hold_duration_s=8.0, samples=6),
            params,
        ).solve()
        assert result.templates_built == 1
        assert sum(1 for trace in result.segments if trace.template_reused) == (
            len(result.segments) - 1
        )

    def test_shape_changes_build_one_template_per_configuration(self):
        params = mini_parameters()
        result = TransientModel(
            outage_recovery(
                outage_channels=4,
                lead_duration_s=4.0,
                outage_duration_s=4.0,
                recovery_duration_s=4.0,
                samples=3,
            ),
            params,
        ).solve()
        # lead and recovery share a configuration; the outage differs.
        assert result.templates_built == 2

    def test_shared_templates_are_bitwise_equal_to_cold_rebuilds(self):
        params = mini_parameters()
        profile = short_profile()
        shared = TransientModel(profile, params).solve()
        cold = TransientModel(profile, params, share_templates=False).solve()
        assert cold.templates_built == len(profile.schedule.segments)
        for metric in shared.points[0].values:
            assert shared.series(metric) == cold.series(metric)
        assert np.array_equal(shared.final_distribution, cold.final_distribution)


class TestResultShape:
    def test_time_averages_and_peaks(self):
        params = mini_parameters()
        result = TransientModel(short_profile(), params).solve()
        averages = result.time_averages()
        peaks = result.peaks()
        series = result.series("packet_loss_probability")
        assert min(series) <= averages["packet_loss_probability"] <= max(series)
        assert peaks["packet_loss_probability"] == max(series)
        # The spike must actually show up in the trajectory.
        assert peaks["packet_loss_probability"] > series[0]

    def test_as_dict_is_json_serialisable(self):
        import json

        params = mini_parameters()
        result = TransientModel(short_profile(samples=3), params).solve()
        payload = json.loads(json.dumps(result.as_dict()))
        assert payload["profile"]["name"] == "flash-crowd"
        assert len(payload["points"]) == 4
        assert payload["templates_built"] == 1
        assert set(payload["time_averages"]) == set(payload["points"][0]["values"])

    def test_validation_of_constructor_arguments(self):
        params = mini_parameters()
        with pytest.raises(ValueError, match="WorkloadProfile"):
            TransientModel({"not": "a profile"}, params)
        with pytest.raises(ValueError, match="truncation_tol"):
            TransientModel(short_profile(), params, truncation_tol=0.0)
        with pytest.raises(ValueError, match="steady_state_tol"):
            TransientModel(short_profile(), params, steady_state_tol=-1.0)
        with pytest.raises(ValueError, match="max_step_mean"):
            TransientModel(short_profile(), params, max_step_mean=0.0)
        # exp(-mean) underflows past ~745: the cap keeps the series weights
        # representable (a larger step would yield a zero distribution).
        with pytest.raises(ValueError, match="max_step_mean"):
            TransientModel(short_profile(), params, max_step_mean=1000.0)
