"""Tests of workload schedules and profiles (repro.transient.schedule)."""

from __future__ import annotations

import json
import pickle

import pytest

from repro import GprsModelParameters, traffic_model
from repro.transient.schedule import (
    RateSchedule,
    ScheduleSegment,
    WorkloadProfile,
    busy_hour_ramp,
    constant_workload,
    diurnal_cycle,
    flash_crowd,
    outage_recovery,
)


BASE = GprsModelParameters.from_traffic_model(
    traffic_model(3), total_call_arrival_rate=0.5
)


class TestScheduleSegment:
    def test_duration_must_be_positive(self):
        with pytest.raises(ValueError, match="duration"):
            ScheduleSegment(duration_s=0.0)
        with pytest.raises(ValueError, match="duration"):
            ScheduleSegment(duration_s=-1.0)

    def test_negative_multiplier_rejected(self):
        with pytest.raises(ValueError, match="arrival_rate_multiplier"):
            ScheduleSegment(duration_s=1.0, arrival_rate_multiplier=-0.5)

    def test_unknown_override_rejected(self):
        with pytest.raises(ValueError, match="unknown segment override"):
            ScheduleSegment(duration_s=1.0, overrides={"total_call_arrival_rate": 1.0})

    def test_multiplier_composes_with_base_rate(self):
        segment = ScheduleSegment(duration_s=10.0, arrival_rate_multiplier=2.5)
        params = segment.parameters(BASE)
        assert params.total_call_arrival_rate == pytest.approx(1.25)

    def test_overrides_replace_fields(self):
        segment = ScheduleSegment(
            duration_s=10.0, overrides={"number_of_channels": 12, "tcp_threshold": 0.9}
        )
        params = segment.parameters(BASE)
        assert params.number_of_channels == 12
        assert params.tcp_threshold == 0.9
        assert params.total_call_arrival_rate == BASE.total_call_arrival_rate

    def test_round_trip(self):
        segment = ScheduleSegment(
            duration_s=7.5, arrival_rate_multiplier=1.5, overrides={"reserved_pdch": 3}
        )
        data = json.loads(json.dumps(segment.to_dict()))
        assert ScheduleSegment.from_dict(data) == segment

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown segment field"):
            ScheduleSegment.from_dict({"duration_s": 1.0, "typo": 2})


class TestRateSchedule:
    def schedule(self) -> RateSchedule:
        return RateSchedule(
            name="test",
            segments=(
                ScheduleSegment(duration_s=10.0),
                ScheduleSegment(duration_s=20.0, arrival_rate_multiplier=2.0),
                ScheduleSegment(duration_s=5.0),
            ),
        )

    def test_needs_name_and_segments(self):
        with pytest.raises(ValueError, match="name"):
            RateSchedule(name="", segments=(ScheduleSegment(duration_s=1.0),))
        with pytest.raises(ValueError, match="at least one segment"):
            RateSchedule(name="x", segments=())

    def test_total_duration_and_breakpoints(self):
        schedule = self.schedule()
        assert schedule.total_duration_s == pytest.approx(35.0)
        assert schedule.breakpoints() == (0.0, 10.0, 30.0)

    def test_segment_at_is_left_closed(self):
        schedule = self.schedule()
        assert schedule.segment_at(0.0) == 0
        assert schedule.segment_at(9.999) == 0
        assert schedule.segment_at(10.0) == 1
        assert schedule.segment_at(30.0) == 2
        assert schedule.segment_at(35.0) == 2  # the end maps to the last segment

    def test_segment_at_rejects_times_outside_the_schedule(self):
        with pytest.raises(ValueError, match="outside the schedule"):
            self.schedule().segment_at(-1.0)
        with pytest.raises(ValueError, match="outside the schedule"):
            self.schedule().segment_at(35.1)

    def test_is_constant(self):
        assert not self.schedule().is_constant()
        assert RateSchedule(
            name="flat",
            segments=(
                ScheduleSegment(duration_s=1.0),
                ScheduleSegment(duration_s=2.0),
            ),
        ).is_constant()

    def test_round_trip_and_digest(self):
        schedule = self.schedule()
        data = json.loads(json.dumps(schedule.to_dict()))
        rebuilt = RateSchedule.from_dict(data)
        assert rebuilt == schedule
        assert rebuilt.digest() == schedule.digest()
        different = RateSchedule(
            name="test", segments=schedule.segments[:2]
        )
        assert different.digest() != schedule.digest()


class TestWorkloadProfile:
    def test_requires_a_schedule(self):
        with pytest.raises(ValueError, match="RateSchedule"):
            WorkloadProfile(schedule={"not": "a schedule"})

    def test_initial_must_be_known(self):
        with pytest.raises(ValueError, match="initial"):
            constant_workload(10.0, initial="warm")

    def test_uniform_grid_covers_the_schedule(self):
        profile = constant_workload(10.0, samples=4)
        assert profile.sample_times() == (0.0, 2.5, 5.0, 7.5, 10.0)

    def test_explicit_times_validated(self):
        schedule = RateSchedule(name="x", segments=(ScheduleSegment(duration_s=10.0),))
        profile = WorkloadProfile(schedule=schedule, times=(1.0, 4.0, 10.0))
        assert profile.sample_times() == (1.0, 4.0, 10.0)
        with pytest.raises(ValueError, match="within"):
            WorkloadProfile(schedule=schedule, times=(1.0, 11.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            WorkloadProfile(schedule=schedule, times=(4.0, 4.0))
        with pytest.raises(ValueError, match="non-empty"):
            WorkloadProfile(schedule=schedule, times=())

    def test_uniform_grid_never_exceeds_the_schedule(self):
        """Non-representable segment durations must not push the last grid
        point one ULP past the schedule end (segment_at would reject it)."""
        schedule = RateSchedule(
            name="ulp",
            segments=(
                ScheduleSegment(duration_s=0.1),
                ScheduleSegment(duration_s=0.2),
                ScheduleSegment(duration_s=0.3),
            ),
        )
        profile = WorkloadProfile(schedule=schedule, samples=7)
        total = schedule.total_duration_s
        for time in profile.sample_times():
            assert time <= total
            schedule.segment_at(time)  # must not raise

    def test_samples_must_be_positive(self):
        schedule = RateSchedule(name="x", segments=(ScheduleSegment(duration_s=1.0),))
        with pytest.raises(ValueError, match="samples"):
            WorkloadProfile(schedule=schedule, samples=0)

    def test_round_trip_digest_and_pickle(self):
        for profile in (
            busy_hour_ramp(),
            flash_crowd(),
            outage_recovery(outage_channels=12),
            diurnal_cycle(),
            constant_workload(60.0, initial="empty"),
        ):
            data = json.loads(json.dumps(profile.to_dict()))
            rebuilt = WorkloadProfile.from_dict(data)
            assert rebuilt == profile
            assert rebuilt.digest() == profile.digest()
            assert pickle.loads(pickle.dumps(profile)) == profile

    def test_digest_distinguishes_sampling_and_initial(self):
        base = constant_workload(60.0)
        assert constant_workload(60.0, samples=16).digest() != base.digest()
        assert constant_workload(60.0, initial="empty").digest() != base.digest()


class TestConstructors:
    def test_busy_hour_ramp_staircases_up_and_down(self):
        profile = busy_hour_ramp(peak_multiplier=2.0, ramp_steps=4)
        multipliers = [
            segment.arrival_rate_multiplier for segment in profile.schedule.segments
        ]
        assert multipliers[0] == 1.0 and multipliers[-1] == 1.0
        assert max(multipliers) == pytest.approx(2.0)
        assert multipliers == multipliers[::-1]  # symmetric ramp
        rising = multipliers[: len(multipliers) // 2 + 1]
        assert all(b > a for a, b in zip(rising, rising[1:]))

    def test_busy_hour_ramp_validation(self):
        with pytest.raises(ValueError, match="peak_multiplier"):
            busy_hour_ramp(peak_multiplier=1.0)
        with pytest.raises(ValueError, match="ramp_steps"):
            busy_hour_ramp(ramp_steps=0)

    def test_flash_crowd_shape(self):
        profile = flash_crowd(spike_multiplier=3.0)
        multipliers = [
            segment.arrival_rate_multiplier for segment in profile.schedule.segments
        ]
        assert multipliers == [1.0, 3.0, 1.0]
        with pytest.raises(ValueError, match="spike_multiplier"):
            flash_crowd(spike_multiplier=0.9)

    def test_outage_recovery_overrides_channels(self):
        profile = outage_recovery(outage_channels=12)
        overrides = [
            dict(segment.overrides) for segment in profile.schedule.segments
        ]
        assert overrides == [{}, {"number_of_channels": 12}, {}]
        with pytest.raises(ValueError, match="at least 2 channels"):
            outage_recovery(outage_channels=1)

    def test_diurnal_cycle_peaks_at_peak_hour(self):
        profile = diurnal_cycle(hours=24, amplitude=0.5, peak_hour=18.0)
        multipliers = [
            segment.arrival_rate_multiplier for segment in profile.schedule.segments
        ]
        assert len(multipliers) == 24
        assert multipliers.index(max(multipliers)) in (17, 18)
        assert max(multipliers) <= 1.5 + 1e-12
        assert min(multipliers) >= 0.5 - 1e-12
        with pytest.raises(ValueError, match="amplitude"):
            diurnal_cycle(amplitude=1.0)
        with pytest.raises(ValueError, match="hours"):
            diurnal_cycle(hours=1)
