"""Tests of the coding-scheme block-error-rate curves."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.radio.bler import (
    CODING_SCHEME_BLER_PARAMETERS,
    BlerCurve,
    block_error_rate,
    nominal_rate_kbit_s,
    required_ci_for_bler,
)

SCHEMES = ("CS-1", "CS-2", "CS-3", "CS-4")


class TestBlerCurves:
    def test_all_four_schemes_have_curves(self):
        assert set(CODING_SCHEME_BLER_PARAMETERS) == set(SCHEMES)

    def test_bler_is_a_probability(self):
        for scheme in SCHEMES:
            for ci in (-20.0, 0.0, 9.0, 30.0):
                assert 0.0 <= block_error_rate(scheme, ci) <= 1.0

    def test_stronger_coding_is_more_robust_at_any_ci(self):
        """At every C/I the block error rate is ordered CS-1 <= ... <= CS-4."""
        for ci in (-5.0, 0.0, 5.0, 9.0, 12.0, 20.0):
            blers = [block_error_rate(scheme, ci) for scheme in SCHEMES]
            assert blers == sorted(blers)

    def test_bler_decreases_with_ci(self):
        for scheme in SCHEMES:
            values = [block_error_rate(scheme, ci) for ci in range(-10, 31, 2)]
            assert all(a >= b for a, b in zip(values, values[1:]))

    def test_midpoint_gives_half(self):
        for scheme, curve in CODING_SCHEME_BLER_PARAMETERS.items():
            assert block_error_rate(scheme, curve.midpoint_db) == pytest.approx(0.5)

    def test_extreme_ci_saturates_without_overflow(self):
        assert block_error_rate("CS-2", 1e6) == pytest.approx(0.0, abs=1e-12)
        assert block_error_rate("CS-2", -1e6) == pytest.approx(1.0, abs=1e-12)

    def test_cs2_is_reasonable_at_the_usual_operating_point(self):
        """Around 9 dB (a planned GSM network) CS-2 loses only a modest block fraction."""
        assert block_error_rate("CS-2", 9.0) < 0.25
        assert block_error_rate("CS-2", 15.0) < 0.01

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            block_error_rate("CS-5", 9.0)
        with pytest.raises(ValueError):
            required_ci_for_bler("CS-0", 0.1)
        with pytest.raises(ValueError):
            nominal_rate_kbit_s("CS-9")


class TestRequiredCi:
    def test_required_ci_inverts_the_curve(self):
        for scheme in SCHEMES:
            for target in (0.01, 0.1, 0.5, 0.9):
                ci = required_ci_for_bler(scheme, target)
                assert block_error_rate(scheme, ci) == pytest.approx(target, rel=1e-6)

    def test_weaker_coding_needs_more_ci_for_the_same_bler(self):
        required = [required_ci_for_bler(scheme, 0.1) for scheme in SCHEMES]
        assert required == sorted(required)

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            required_ci_for_bler("CS-2", 0.0)
        with pytest.raises(ValueError):
            required_ci_for_bler("CS-2", 1.0)

    def test_invalid_slope_rejected(self):
        with pytest.raises(ValueError):
            BlerCurve("CS-2", midpoint_db=7.0, slope_per_db=0.0)


class TestBlerProperties:
    @given(
        ci=st.floats(min_value=-50.0, max_value=50.0),
        scheme=st.sampled_from(SCHEMES),
    )
    def test_bler_always_in_unit_interval(self, ci, scheme):
        assert 0.0 <= block_error_rate(scheme, ci) <= 1.0

    @given(
        ci_low=st.floats(min_value=-30.0, max_value=30.0),
        delta=st.floats(min_value=0.0, max_value=30.0),
        scheme=st.sampled_from(SCHEMES),
    )
    def test_bler_monotone_in_ci(self, ci_low, delta, scheme):
        assert block_error_rate(scheme, ci_low + delta) <= block_error_rate(scheme, ci_low) + 1e-12

    @given(target=st.floats(min_value=1e-4, max_value=0.999))
    def test_round_trip_through_required_ci(self, target):
        ci = required_ci_for_bler("CS-3", target)
        assert block_error_rate("CS-3", ci) == pytest.approx(target, rel=1e-6, abs=1e-9)
