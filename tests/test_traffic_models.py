"""Tests of the 3GPP traffic model: units, session arithmetic and the Table 3 presets."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic.presets import (
    TRAFFIC_MODEL_1,
    TRAFFIC_MODEL_2,
    TRAFFIC_MODEL_3,
    traffic_model,
)
from repro.traffic.session import PacketSessionModel
from repro.traffic.units import (
    CODING_SCHEME_RATES_KBIT_S,
    DATA_PACKET_SIZE_BYTES,
    bits_per_packet,
    kbit_per_s_to_packets_per_s,
    packets_per_s_to_kbit_per_s,
    pdch_service_rate,
)


class TestUnits:
    def test_bits_per_packet_default(self):
        assert bits_per_packet() == 480 * 8 == 3840

    def test_conversion_roundtrip(self):
        rate = 13.4
        packets = kbit_per_s_to_packets_per_s(rate)
        assert packets_per_s_to_kbit_per_s(packets) == pytest.approx(rate)

    def test_cs2_service_rate_value(self):
        """One PDCH under CS-2 serves 13.4 kbit/s = about 3.49 packets of 480 byte per second."""
        assert pdch_service_rate("CS-2") == pytest.approx(13400.0 / 3840.0)

    def test_coding_scheme_rates_ordering(self):
        """More aggressive coding schemes carry more payload: CS-1 < CS-2 < CS-3 < CS-4."""
        rates = [CODING_SCHEME_RATES_KBIT_S[f"CS-{i}"] for i in range(1, 5)]
        assert rates == sorted(rates)
        assert CODING_SCHEME_RATES_KBIT_S["CS-2"] == pytest.approx(13.4)

    def test_unknown_coding_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown coding scheme"):
            pdch_service_rate("CS-9")

    def test_invalid_packet_size_rejected(self):
        with pytest.raises(ValueError):
            bits_per_packet(0)

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError):
            kbit_per_s_to_packets_per_s(-1.0)
        with pytest.raises(ValueError):
            packets_per_s_to_kbit_per_s(-1.0)


class TestPacketSessionModel:
    def test_ipp_parameters_of_traffic_model_1(self):
        session = TRAFFIC_MODEL_1.session
        assert session.packet_rate == pytest.approx(2.0)  # 1 / 0.5 s
        assert session.on_to_off_rate == pytest.approx(1.0 / 12.5)
        assert session.off_to_on_rate == pytest.approx(1.0 / 412.0)

    def test_session_duration_formula(self):
        session = PacketSessionModel(
            packet_calls_per_session=5,
            reading_time_s=412.0,
            packets_per_packet_call=25,
            packet_interarrival_s=0.5,
        )
        assert session.mean_session_duration_s == pytest.approx(5 * (412 + 25 * 0.5))

    def test_peak_bit_rates_match_labels(self):
        """Traffic model 1 is the 8 kbit/s model, model 2 and 3 are the 32 kbit/s models."""
        assert TRAFFIC_MODEL_1.session.peak_bit_rate_kbit_s == pytest.approx(7.68)
        assert TRAFFIC_MODEL_2.session.peak_bit_rate_kbit_s == pytest.approx(30.72)
        assert TRAFFIC_MODEL_3.session.peak_bit_rate_kbit_s == pytest.approx(30.72)

    def test_activity_factor_and_mean_rate(self):
        session = TRAFFIC_MODEL_3.session
        assert session.activity_factor == pytest.approx(0.5)  # on time == reading time
        assert session.mean_bit_rate_kbit_s == pytest.approx(
            session.peak_bit_rate_kbit_s * 0.5
        )

    def test_to_ipp_preserves_rates(self):
        session = TRAFFIC_MODEL_2.session
        ipp = session.to_ipp()
        assert ipp.packet_rate == pytest.approx(session.packet_rate)
        assert ipp.on_to_off_rate == pytest.approx(session.on_to_off_rate)
        assert ipp.off_to_on_rate == pytest.approx(session.off_to_on_rate)

    def test_mean_packets_per_session(self):
        assert TRAFFIC_MODEL_1.session.mean_packets_per_session == pytest.approx(125)
        assert TRAFFIC_MODEL_3.session.mean_packets_per_session == pytest.approx(1250)

    def test_with_name_copies_parameters(self):
        renamed = TRAFFIC_MODEL_1.session.with_name("renamed")
        assert renamed.name == "renamed"
        assert renamed.packet_rate == TRAFFIC_MODEL_1.session.packet_rate

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            PacketSessionModel(0.5, 1.0, 25, 0.5)
        with pytest.raises(ValueError):
            PacketSessionModel(5, -1.0, 25, 0.5)
        with pytest.raises(ValueError):
            PacketSessionModel(5, 1.0, 0.5, 0.5)
        with pytest.raises(ValueError):
            PacketSessionModel(5, 1.0, 25, 0.0)
        with pytest.raises(ValueError):
            PacketSessionModel(5, 1.0, 25, 0.5, packet_size_bytes=0)

    @given(
        packet_calls=st.floats(min_value=1.0, max_value=100.0),
        reading=st.floats(min_value=0.1, max_value=1000.0),
        packets=st.floats(min_value=1.0, max_value=100.0),
        interarrival=st.floats(min_value=0.01, max_value=10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_session_rate_consistency(self, packet_calls, reading, packets, interarrival):
        """Session completion rate times mean packets per session never exceeds the peak rate."""
        session = PacketSessionModel(packet_calls, reading, packets, interarrival)
        assert session.session_departure_rate == pytest.approx(
            1.0 / session.mean_session_duration_s
        )
        mean_rate = session.mean_packets_per_session * session.session_departure_rate
        assert mean_rate <= session.packet_rate * (1 + 1e-9)
        assert 0.0 < session.activity_factor < 1.0


class TestTable3Presets:
    """The presets reproduce the Table 3 rows exactly."""

    def test_traffic_model_lookup(self):
        assert traffic_model(1) is TRAFFIC_MODEL_1
        assert traffic_model(2) is TRAFFIC_MODEL_2
        assert traffic_model(3) is TRAFFIC_MODEL_3
        with pytest.raises(ValueError):
            traffic_model(4)

    def test_session_limits(self):
        assert TRAFFIC_MODEL_1.max_active_sessions == 50
        assert TRAFFIC_MODEL_2.max_active_sessions == 50
        assert TRAFFIC_MODEL_3.max_active_sessions == 20

    def test_session_durations_match_paper(self):
        assert TRAFFIC_MODEL_1.session.mean_session_duration_s == pytest.approx(2122.5)
        assert TRAFFIC_MODEL_2.session.mean_session_duration_s == pytest.approx(
            2075.6, abs=0.05
        )
        assert TRAFFIC_MODEL_3.session.mean_session_duration_s == pytest.approx(312.5)

    def test_packet_call_durations_match_paper(self):
        assert TRAFFIC_MODEL_1.session.mean_packet_call_duration_s == pytest.approx(12.5)
        assert TRAFFIC_MODEL_2.session.mean_packet_call_duration_s == pytest.approx(
            3.1, abs=0.05
        )
        assert TRAFFIC_MODEL_3.session.mean_packet_call_duration_s == pytest.approx(
            3.1, abs=0.05
        )

    def test_reading_times_match_paper(self):
        assert TRAFFIC_MODEL_1.session.reading_time_s == pytest.approx(412.0)
        assert TRAFFIC_MODEL_2.session.reading_time_s == pytest.approx(412.0)
        assert TRAFFIC_MODEL_3.session.reading_time_s == pytest.approx(3.1, abs=0.05)

    def test_model_3_on_off_symmetry(self):
        """Traffic model 3 sets the reading time equal to the packet-call duration."""
        session = TRAFFIC_MODEL_3.session
        assert session.reading_time_s == pytest.approx(session.mean_packet_call_duration_s)

    def test_describe_contains_table_rows(self):
        row = TRAFFIC_MODEL_2.describe()
        assert row["max active GPRS sessions M"] == 50
        assert row["average GPRS session duration 1/mu_GPRS [s]"] == pytest.approx(
            2075.6, abs=0.05
        )

    def test_packet_size_is_480_bytes(self):
        for preset in (TRAFFIC_MODEL_1, TRAFFIC_MODEL_2, TRAFFIC_MODEL_3):
            assert preset.session.packet_size_bytes == DATA_PACKET_SIZE_BYTES == 480
