"""Tests of the DES event calendar, clock and events."""

from __future__ import annotations

import pytest

from repro.des.engine import SimulationEngine, SimulationError


class TestScheduling:
    def test_callbacks_run_in_time_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(3.0, lambda: order.append("late"))
        engine.schedule(1.0, lambda: order.append("early"))
        engine.schedule(2.0, lambda: order.append("middle"))
        engine.run()
        assert order == ["early", "middle", "late"]

    def test_ties_run_in_insertion_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(1.0, lambda: order.append("first"))
        engine.schedule(1.0, lambda: order.append("second"))
        engine.run()
        assert order == ["first", "second"]

    def test_clock_advances_to_event_times(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(2.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [2.5]
        assert engine.now == 2.5

    def test_schedule_at_absolute_time(self):
        engine = SimulationEngine(start_time=10.0)
        seen = []
        engine.schedule_at(12.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [12.0]

    def test_scheduling_in_the_past_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda: None)

    def test_callbacks_can_schedule_more_work(self):
        engine = SimulationEngine()
        times = []

        def chain(count):
            times.append(engine.now)
            if count > 0:
                engine.schedule(1.0, chain, count - 1)

        engine.schedule(0.0, chain, 3)
        engine.run()
        assert times == [0.0, 1.0, 2.0, 3.0]

    def test_processed_and_pending_counters(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        assert engine.pending_events == 2
        engine.run()
        assert engine.pending_events == 0
        assert engine.processed_events == 2


class TestRunUntil:
    def test_run_until_stops_before_later_events(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(1.0, lambda: seen.append(1))
        engine.schedule(5.0, lambda: seen.append(5))
        engine.run(until=3.0)
        assert seen == [1]
        assert engine.now == 3.0
        engine.run(until=10.0)
        assert seen == [1, 5]

    def test_run_until_advances_clock_when_idle(self):
        engine = SimulationEngine()
        engine.run(until=7.0)
        assert engine.now == 7.0

    def test_max_events_limit(self):
        engine = SimulationEngine()
        for _ in range(10):
            engine.schedule(1.0, lambda: None)
        engine.run(max_events=4)
        assert engine.processed_events == 4

    def test_peek_returns_next_event_time(self):
        engine = SimulationEngine()
        assert engine.peek() == float("inf")
        engine.schedule(4.0, lambda: None)
        assert engine.peek() == 4.0

    def test_step_returns_false_when_empty(self):
        assert SimulationEngine().step() is False


class TestEvents:
    def test_timeout_event_delivers_value(self):
        engine = SimulationEngine()
        received = []
        event = engine.timeout(2.0, value="done")
        event.add_callback(received.append)
        engine.run()
        assert received == ["done"]
        assert event.triggered
        assert event.value == "done"

    def test_callback_added_after_trigger_still_fires(self):
        engine = SimulationEngine()
        event = engine.event()
        event.succeed(41)
        received = []
        event.add_callback(received.append)
        engine.run()
        assert received == [41]

    def test_event_cannot_trigger_twice(self):
        engine = SimulationEngine()
        event = engine.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_multiple_callbacks_all_fire(self):
        engine = SimulationEngine()
        event = engine.event()
        results = []
        event.add_callback(lambda v: results.append(("a", v)))
        event.add_callback(lambda v: results.append(("b", v)))
        engine.schedule(1.0, event.succeed, 7)
        engine.run()
        assert results == [("a", 7), ("b", 7)]
