"""Tests of the retry/deadline/checkpoint layer (`repro.runtime.resilience`).

Fault paths are driven by the deterministic injection plan of
:mod:`repro.runtime.faults` rather than monkeypatched internals wherever a
seam exists, so these tests exercise the same machinery production does.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.obs.metrics import current_registry
from repro.runtime.faults import inject_faults
from repro.runtime.resilience import (
    CHECKPOINT_SCHEMA,
    CHECKPOINT_SCHEMA_VERSION,
    ResilientPool,
    RetryPolicy,
    SweepCheckpoint,
    SweepFailure,
    SweepFailureError,
    checkpointed_get,
    collect_failures,
    payload_digest,
    report_failure,
)

#: No-backoff policy so retry tests never sleep.
FAST = RetryPolicy(max_attempts=3, backoff_base_s=0.0)


def _double(job):
    """Top-level worker (parallel tests pickle it)."""
    return job * 2


def _nap(job):
    """Worker that sleeps ``job`` seconds then returns (deadline tests)."""
    time.sleep(job)
    return job


def _read_env(key):
    """Worker that reports one environment variable (env-parity tests)."""
    return os.environ.get(key)


class TestRetryPolicy:
    @pytest.mark.parametrize(
        "error", [BrokenProcessPool("died"), TimeoutError("late"), OSError("io")]
    )
    def test_transient_errors_are_retryable(self, error):
        assert RetryPolicy().is_retryable(error)

    @pytest.mark.parametrize(
        "error", [ValueError("bad"), KeyboardInterrupt(), SystemExit()]
    )
    def test_fatal_errors_are_not(self, error):
        assert not RetryPolicy().is_retryable(error)

    def test_backoff_is_deterministic(self):
        policy = RetryPolicy(seed=7)
        assert policy.backoff_s("chunk", 3, 2) == policy.backoff_s("chunk", 3, 2)
        assert policy.backoff_s("chunk", 3, 2) != policy.backoff_s("chunk", 4, 2)
        assert RetryPolicy(seed=8).backoff_s("chunk", 3, 2) != policy.backoff_s(
            "chunk", 3, 2
        )

    def test_backoff_grows_exponentially_within_jitter(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=60.0
        )
        for attempt, base in ((1, 0.1), (2, 0.2), (3, 0.4)):
            delay = policy.backoff_s("cell", 0, attempt)
            assert base * 0.75 <= delay <= base * 1.25

    def test_backoff_is_capped(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_max_s=1.5)
        assert policy.backoff_s("cell", 0, 50) <= 1.5 * 1.25

    def test_attempt_zero_never_waits(self):
        assert RetryPolicy().backoff_s("cell", 0, 0) == 0.0


class TestSerialRetries:
    def test_retry_escapes_a_transient_fault(self):
        with inject_faults("cell@0=raise*1"):
            with ResilientPool(1, policy=FAST) as pool:
                outcomes = pool.run(_double, [21], site="cell")
        assert outcomes == [42]

    def test_exhausted_attempts_yield_a_sweep_failure(self):
        with inject_faults("cell@0=raise*9"):
            with ResilientPool(1, policy=FAST) as pool:
                outcomes = pool.run(_double, [21], site="cell")
        (failure,) = outcomes
        assert isinstance(failure, SweepFailure)
        assert failure.site == "cell"
        assert failure.index == 0
        assert failure.attempts == FAST.max_attempts
        assert failure.error_type == "InjectedFault"

    def test_strict_raises_at_the_first_terminal_failure(self):
        with inject_faults("cell@0=raise*9"):
            with ResilientPool(1, policy=FAST, strict=True) as pool:
                with pytest.raises(SweepFailureError) as excinfo:
                    pool.run(_double, [21], site="cell")
        assert excinfo.value.failure.site == "cell"

    def test_fatal_errors_are_not_retried(self):
        def _bad(job):
            raise ValueError("deterministic bug")

        with ResilientPool(1, policy=FAST) as pool:
            (failure,) = pool.run(_bad, [1], site="cell")
        assert isinstance(failure, SweepFailure)
        assert failure.attempts == 1  # no retry for a fatal error
        assert failure.error_type == "ValueError"

    def test_indices_steer_fault_targeting(self):
        """Explicit indices let a plan target a specific logical task."""
        with inject_faults("cell@7=raise*9"):
            with ResilientPool(1, policy=FAST) as pool:
                outcomes = pool.run(_double, [1, 2], site="cell", indices=[6, 7])
        assert outcomes[0] == 2
        assert isinstance(outcomes[1], SweepFailure)
        assert outcomes[1].index == 7


class TestParallelRecovery:
    def test_killed_worker_is_retried_to_success(self):
        with inject_faults("cell@1=kill"):
            with ResilientPool(2, policy=FAST) as pool:
                outcomes = pool.run(_double, [1, 2, 3], site="cell")
        assert outcomes == [2, 4, 6]
        assert pool._respawns >= 1

    def test_repeated_pool_death_degrades_to_in_process(self):
        policy = RetryPolicy(max_attempts=6, backoff_base_s=0.0, max_pool_respawns=1)
        with inject_faults("cell@0=kill*4"):
            with ResilientPool(2, policy=policy) as pool:
                outcomes = pool.run(_double, [5, 6], site="cell")
        assert pool.degraded
        assert outcomes == [10, 12]  # degraded runs still finish, same numbers

    def test_deadline_timeout_is_terminal_after_retries(self):
        policy = RetryPolicy(max_attempts=2, backoff_base_s=0.0)
        registry = current_registry()
        before = registry.snapshot()["counters"].get("resilience.timeouts", 0)
        with ResilientPool(2, policy=policy, task_timeout=0.2) as pool:
            outcomes = pool.run(_nap, [1.0, 0.0], site="cell")
        assert outcomes[1] == 0.0  # the punctual task survives the recycles
        failure = outcomes[0]
        assert isinstance(failure, SweepFailure)
        assert failure.timed_out
        assert failure.attempts == 2
        after = registry.snapshot()["counters"].get("resilience.timeouts", 0)
        assert after - before == 2  # one timeout per attempt


class TestWorkerEnvParity:
    """Workers must see the parent's *current* repro env knobs.

    The forkserver snapshots the environment when it first starts, so a
    variable exported afterwards (``--store-dir`` sets ``$REPRO_STORE_DIR``
    precisely so pool workers resolve the same store) would silently read
    the stale snapshot without the per-pool initializer.
    """

    PROBE = "REPRO_TEST_ENV_PARITY_PROBE"

    def test_env_set_after_forkserver_start_reaches_new_pools(self, monkeypatch):
        with ResilientPool(1) as warmup:  # forkserver is running after this
            assert warmup.run(_double, [1], site="cell") == [2]
        monkeypatch.setenv(self.PROBE, "set-after-start")
        with ResilientPool(1) as pool:
            assert pool.run(_read_env, [self.PROBE], site="cell") == [
                "set-after-start"
            ]

    def test_env_deleted_in_parent_is_deleted_in_workers(self, monkeypatch):
        monkeypatch.setenv(self.PROBE, "doomed")
        with ResilientPool(1) as warmup:
            assert warmup.run(_read_env, [self.PROBE], site="cell") == ["doomed"]
        monkeypatch.delenv(self.PROBE)
        with ResilientPool(1) as pool:
            assert pool.run(_read_env, [self.PROBE], site="cell") == [None]


class TestFailureSink:
    def test_collect_failures_scopes_a_sink(self):
        failure = SweepFailure(
            site="cell", index=0, error_type="X", message="", attempts=1
        )
        with collect_failures() as outer:
            with collect_failures() as inner:
                report_failure(failure)
            report_failure(failure)
        assert inner == [failure]
        assert outer == [failure]  # reported after the inner scope closed

    def test_report_without_sink_only_counts(self):
        registry = current_registry()
        before = registry.snapshot()["counters"].get("resilience.task_failures", 0)
        report_failure(
            SweepFailure(site="cell", index=0, error_type="X", message="", attempts=1)
        )
        after = registry.snapshot()["counters"].get("resilience.task_failures", 0)
        assert after == before + 1


class TestSweepCheckpoint:
    def test_missing_file_loads_empty(self, tmp_path):
        ckpt = SweepCheckpoint.load(tmp_path / "absent.jsonl")
        assert len(ckpt) == 0

    def test_record_and_reload_round_trip(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        ckpt = SweepCheckpoint.load(path)
        ckpt.record(site="chunk", index=0, key="k0", digest="d0")
        ckpt.record(site="chunk", index=1, key="k1", digest="d1")
        assert ckpt.has("k0") and ckpt.matches("k1", "d1")
        reloaded = SweepCheckpoint.load(path)
        assert len(reloaded) == 2
        assert reloaded.matches("k0", "d0")
        header = json.loads(path.read_text(encoding="utf-8").splitlines()[0])
        assert header["schema"] == CHECKPOINT_SCHEMA
        assert header["schema_version"] == CHECKPOINT_SCHEMA_VERSION

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        ckpt = SweepCheckpoint.load(path)
        ckpt.record(site="chunk", index=0, key="k0", digest="d0")
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "k1", "dig')  # interrupted append
        reloaded = SweepCheckpoint.load(path)
        assert len(reloaded) == 1
        assert reloaded.has("k0")

    def test_torn_middle_line_is_an_error(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        ckpt = SweepCheckpoint.load(path)
        ckpt.record(site="chunk", index=0, key="k0", digest="d0")
        text = path.read_text(encoding="utf-8") + "{garbage\n"
        ckpt.record(site="chunk", index=1, key="k1", digest="d1")
        path.write_text(text + path.read_text(encoding="utf-8").splitlines()[-1] + "\n")
        with pytest.raises(ValueError, match="not JSON"):
            SweepCheckpoint.load(path)

    def test_future_schema_version_is_refused(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        header = {
            "schema": CHECKPOINT_SCHEMA,
            "schema_version": CHECKPOINT_SCHEMA_VERSION + 1,
        }
        path.write_text(json.dumps(header) + "\n", encoding="utf-8")
        with pytest.raises(ValueError, match="newer than supported"):
            SweepCheckpoint.load(path)

    def test_foreign_jsonl_is_refused(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text('{"schema": "something-else"}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="not a"):
            SweepCheckpoint.load(path)


class TestCheckpointedGet:
    class _FakeCache:
        def __init__(self, payloads):
            self._payloads = payloads

        def get(self, key):
            return self._payloads.get(key)

    def test_digest_match_counts_a_resumed_point(self):
        payload = {"value": 1.5}
        cache = self._FakeCache({"k": payload})
        ckpt = SweepCheckpoint("unused", {"k": payload_digest(payload)})
        registry = current_registry()
        before = registry.snapshot()["counters"].get("resilience.resumed_points", 0)
        assert checkpointed_get(cache, "k", ckpt) == payload
        after = registry.snapshot()["counters"].get("resilience.resumed_points", 0)
        assert after == before + 1

    def test_digest_mismatch_demotes_to_miss(self):
        cache = self._FakeCache({"k": {"value": 2.5}})
        ckpt = SweepCheckpoint("unused", {"k": "stale-digest"})
        registry = current_registry()
        before = registry.snapshot()["counters"].get(
            "resilience.checkpoint_mismatches", 0
        )
        assert checkpointed_get(cache, "k", ckpt) is None
        after = registry.snapshot()["counters"].get(
            "resilience.checkpoint_mismatches", 0
        )
        assert after == before + 1

    def test_unknown_key_is_a_plain_hit(self):
        """Keys the checkpoint never saw pass through unverified."""
        cache = self._FakeCache({"k": {"value": 3.5}})
        ckpt = SweepCheckpoint("unused", {})
        assert checkpointed_get(cache, "k", ckpt) == {"value": 3.5}

    def test_no_cache_or_checkpoint(self):
        assert checkpointed_get(None, "k", None) is None
        cache = self._FakeCache({"k": {"value": 1.0}})
        assert checkpointed_get(cache, "k", None) == {"value": 1.0}


class TestPayloadDigest:
    def test_digest_is_order_insensitive_and_content_sensitive(self):
        assert payload_digest({"a": 1, "b": 2}) == payload_digest({"b": 2, "a": 1})
        assert payload_digest({"a": 1}) != payload_digest({"a": 2})
        assert len(payload_digest({})) == 16


class TestCancelToken:
    def test_scope_installs_and_restores_the_ambient_token(self):
        from repro.runtime.resilience import (
            CancelToken,
            cancel_scope,
            current_cancel_token,
        )

        assert current_cancel_token() is None
        token = CancelToken("test")
        with cancel_scope(token):
            assert current_cancel_token() is token
        assert current_cancel_token() is None

    def test_cancel_is_sticky_and_carries_a_reason(self):
        from repro.runtime.resilience import CancelToken

        token = CancelToken()
        assert not token.cancelled
        token.cancel("drain deadline")
        assert token.cancelled
        assert token.reason == "drain deadline"

    def test_tripped_token_aborts_serial_submission(self):
        from repro.runtime.resilience import (
            CancelToken,
            TaskCancelledError,
            cancel_scope,
        )

        token = CancelToken()
        token.cancel("stop")
        pool = ResilientPool(1, policy=FAST)
        with cancel_scope(token), pytest.raises(TaskCancelledError):
            pool.submit(_double, 2, site="t", index=0)

    def test_tripped_token_aborts_pool_poll_and_counts_cancelled(self):
        from repro.runtime.resilience import (
            CancelToken,
            TaskCancelledError,
            cancel_scope,
        )

        registry = current_registry()
        before = registry.snapshot()["counters"].get("resilience.cancelled", 0)
        token = CancelToken()
        pool = ResilientPool(2, policy=FAST)
        try:
            with cancel_scope(token):
                pool.submit(_nap, 5, site="t", index=0)
                token.cancel("mid-flight")
                with pytest.raises(TaskCancelledError):
                    pool.poll()  # any further interaction must abort
        finally:
            pool.shutdown()
        after = registry.snapshot()["counters"].get("resilience.cancelled", 0)
        assert after == before + 1

    def test_untripped_token_is_free(self):
        from repro.runtime.resilience import CancelToken, cancel_scope

        token = CancelToken()
        pool = ResilientPool(1, policy=FAST)
        with cancel_scope(token):
            pool.submit(_double, 21, site="t", index=0)
            outcomes = list(pool.poll())
        assert outcomes == [(("t", 0), 42)]
