"""Tests of the beyond-the-paper extension experiments."""

from __future__ import annotations

import pytest

from repro.core.parameters import GprsModelParameters
from repro.experiments.extensions import (
    adaptive_policy_comparison,
    arq_impact,
    guard_channel_tradeoff,
    link_adaptation_gain,
)
from repro.traffic.presets import TRAFFIC_MODEL_3


@pytest.fixture(scope="module")
def base_parameters() -> GprsModelParameters:
    return GprsModelParameters.from_traffic_model(
        TRAFFIC_MODEL_3,
        total_call_arrival_rate=0.6,
        buffer_size=10,
        max_gprs_sessions=5,
        gprs_fraction=0.1,
    )


class TestArqImpact:
    def test_throughput_decreases_with_bler(self, base_parameters):
        result = arq_impact(base_parameters, (0.0, 0.2, 0.4))
        throughputs = result.series("throughput_per_user_kbit_s")
        assert throughputs[0] >= throughputs[1] >= throughputs[2]
        assert result.parameter == "block_error_rate"


class TestLinkAdaptationGain:
    def test_adaptation_never_loses_to_fixed_cs2(self):
        for point in link_adaptation_gain():
            assert point.adapted_goodput_kbit_s >= point.fixed_cs2_goodput_kbit_s - 1e-9
            assert point.gain >= -1e-9

    def test_poor_links_prefer_robust_schemes_and_clean_links_fast_ones(self):
        points = link_adaptation_gain((2.0, 30.0))
        assert points[0].adapted_scheme == "CS-1"
        assert points[-1].adapted_scheme == "CS-4"

    def test_gain_is_largest_at_the_extremes(self):
        points = {point.ci_db: point.gain for point in link_adaptation_gain((2.0, 11.0, 30.0))}
        assert points[2.0] > points[11.0] - 1e-9
        assert points[30.0] > points[11.0] - 1e-9


class TestGuardChannelTradeoff:
    def test_guard_channels_trade_blocking_for_dropping(self, base_parameters):
        rows = guard_channel_tradeoff(base_parameters, (0, 1, 2, 4))
        failures = [row.handover_failure for row in rows]
        blockings = [row.new_call_blocking for row in rows]
        assert failures == sorted(failures, reverse=True)
        assert blockings == sorted(blockings)
        assert all(row.carried_traffic_erlangs >= 0 for row in rows)

    def test_oversized_guard_counts_are_skipped(self, base_parameters):
        rows = guard_channel_tradeoff(base_parameters, (0, 500))
        assert [row.guard_channels for row in rows] == [0]

    def test_invalid_handover_fraction_rejected(self, base_parameters):
        with pytest.raises(ValueError):
            guard_channel_tradeoff(base_parameters, (0,), handover_fraction=1.0)


class TestAdaptivePolicyComparison:
    def test_adaptive_policy_tracks_the_best_static_one(self, base_parameters):
        comparison = adaptive_policy_comparison(
            base_parameters,
            load_trajectory=(0.1, 0.5, 0.9),
            static_reservations=(1, 4),
        )
        assert set(comparison.static_evaluations) == {1, 4}
        assert comparison.adaptive_matches_best_static_throughput(tolerance=0.10)
        # The adaptive policy reserves less than the largest static policy on
        # average (it only reserves what the QoS profile needs).
        assert comparison.adaptive_evaluation.mean_reserved_pdch() <= 4.0

    def test_best_static_reservation_identified(self, base_parameters):
        comparison = adaptive_policy_comparison(
            base_parameters,
            load_trajectory=(0.2, 0.8),
            static_reservations=(1, 2),
        )
        best = comparison.best_static_reservation()
        assert best in (1, 2)
        best_throughput = comparison.static_evaluations[best].mean_throughput_per_user_kbit_s()
        for evaluation in comparison.static_evaluations.values():
            assert best_throughput >= evaluation.mean_throughput_per_user_kbit_s() - 1e-12
