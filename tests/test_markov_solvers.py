"""Tests of the generic CTMC steady-state solvers."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov.solvers import (
    SolverError,
    residual_norm,
    solve_steady_state,
    steady_state_direct,
    steady_state_gauss_seidel,
    steady_state_gth,
    steady_state_power,
    uniformization_rate,
)

ALL_SOLVERS = [
    steady_state_gth,
    steady_state_direct,
    steady_state_power,
    steady_state_gauss_seidel,
]


def two_state_generator(up: float, down: float) -> np.ndarray:
    return np.array([[-up, up], [down, -down]])


def random_generator(rng: np.random.Generator, size: int, density: float = 0.4) -> np.ndarray:
    """Random irreducible generator: dense-ish random rates plus a cycle."""
    rates = rng.uniform(0.0, 5.0, size=(size, size)) * (
        rng.uniform(size=(size, size)) < density
    )
    np.fill_diagonal(rates, 0.0)
    # Guarantee irreducibility with a cycle of positive rates.
    for i in range(size):
        rates[i, (i + 1) % size] += rng.uniform(0.1, 1.0)
    generator = rates - np.diag(rates.sum(axis=1))
    return generator


class TestTwoStateChain:
    """Every solver must reproduce the closed form of the two-state chain."""

    @pytest.mark.parametrize("solver", ALL_SOLVERS, ids=lambda f: f.__name__)
    def test_two_state_closed_form(self, solver):
        up, down = 2.0, 3.0
        result = solver(two_state_generator(up, down))
        expected = np.array([down, up]) / (up + down)
        assert result.distribution == pytest.approx(expected, rel=1e-6)

    @pytest.mark.parametrize("solver", ALL_SOLVERS, ids=lambda f: f.__name__)
    def test_distribution_sums_to_one(self, solver):
        result = solver(two_state_generator(0.7, 0.1))
        assert result.distribution.sum() == pytest.approx(1.0)

    def test_single_state_chain(self):
        result = solve_steady_state(np.zeros((1, 1)))
        assert result.distribution == pytest.approx([1.0])


class TestSolverAgreement:
    """All solvers agree on random irreducible chains (within tolerance)."""

    @pytest.mark.parametrize("size", [3, 7, 15, 40])
    def test_solvers_agree(self, rng, size):
        generator = random_generator(rng, size)
        reference = steady_state_gth(generator)
        for solver in (steady_state_direct, steady_state_power, steady_state_gauss_seidel):
            result = solver(generator)
            assert result.distribution == pytest.approx(
                reference.distribution, abs=1e-6
            ), solver.__name__

    @pytest.mark.parametrize("size", [5, 25])
    def test_residuals_are_small(self, rng, size):
        generator = random_generator(rng, size)
        for solver in ALL_SOLVERS:
            result = solver(generator)
            assert result.residual < 1e-6

    def test_sparse_input_matches_dense(self, rng):
        generator = random_generator(rng, 12)
        dense = steady_state_gth(generator)
        sparse = steady_state_gth(sp.csr_matrix(generator))
        assert sparse.distribution == pytest.approx(dense.distribution, abs=1e-10)


class TestBirthDeathAgainstClosedForm:
    """Solvers reproduce the truncated-geometric solution of an M/M/1/K queue."""

    @pytest.mark.parametrize("rho", [0.3, 0.9, 1.5])
    def test_mm1k_distribution(self, rho):
        capacity = 8
        arrival, service = rho, 1.0
        size = capacity + 1
        generator = np.zeros((size, size))
        for level in range(capacity):
            generator[level, level + 1] = arrival
            generator[level + 1, level] = service
        generator -= np.diag(generator.sum(axis=1))
        expected = np.array([rho**k for k in range(size)])
        expected /= expected.sum()
        result = solve_steady_state(generator, method="gth")
        assert result.distribution == pytest.approx(expected, rel=1e-9)


class TestAutoSelection:
    def test_auto_uses_gth_for_small_chains(self, rng):
        result = solve_steady_state(random_generator(rng, 10), method="auto")
        assert result.method == "gth"

    def test_explicit_method_names(self, rng):
        generator = random_generator(rng, 6)
        for name in ("gth", "direct", "power", "gauss-seidel"):
            assert solve_steady_state(generator, method=name).method == name

    def test_unknown_method_rejected(self, rng):
        with pytest.raises(ValueError, match="unknown steady-state method"):
            solve_steady_state(random_generator(rng, 4), method="voodoo")


class TestValidationAndErrors:
    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            solve_steady_state(np.zeros((2, 3)))

    def test_gth_rejects_empty_generator(self):
        with pytest.raises(ValueError):
            steady_state_gth(np.zeros((0, 0)))

    def test_gth_detects_reducible_chain(self):
        # State 1 is absorbing: no transitions back to state 0.
        generator = np.array([[-1.0, 1.0], [0.0, 0.0]])
        with pytest.raises(SolverError):
            steady_state_gth(generator)

    def test_gauss_seidel_rejects_bad_relaxation(self):
        generator = two_state_generator(1.0, 1.0)
        with pytest.raises(ValueError, match="relaxation"):
            steady_state_gauss_seidel(generator, relaxation=2.5)

    def test_uniformization_rate_covers_exit_rates(self, rng):
        generator = random_generator(rng, 9)
        rate = uniformization_rate(sp.csr_matrix(generator))
        assert rate >= np.max(np.abs(np.diag(generator)))

    def test_residual_norm_zero_for_exact_solution(self):
        generator = two_state_generator(1.0, 4.0)
        pi = np.array([0.8, 0.2])
        assert residual_norm(generator, pi) < 1e-12


class TestPropertyBased:
    """Property-based checks over randomly generated irreducible chains."""

    @given(
        size=st.integers(min_value=2, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_gth_produces_valid_distribution(self, size, seed):
        generator = random_generator(np.random.default_rng(seed), size)
        result = steady_state_gth(generator)
        assert np.all(result.distribution >= 0)
        assert result.distribution.sum() == pytest.approx(1.0)
        assert residual_norm(generator, result.distribution) < 1e-8

    @given(
        size=st.integers(min_value=2, max_value=10),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_direct_matches_gth(self, size, seed):
        generator = random_generator(np.random.default_rng(seed), size)
        gth = steady_state_gth(generator)
        direct = steady_state_direct(generator)
        assert direct.distribution == pytest.approx(gth.distribution, abs=1e-8)

    @given(
        up=st.floats(min_value=0.01, max_value=100.0),
        down=st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_two_state_detailed_balance(self, up, down):
        result = steady_state_gth(two_state_generator(up, down))
        pi = result.distribution
        # Detailed balance of a reversible two-state chain: pi_0 * up = pi_1 * down.
        assert pi[0] * up == pytest.approx(pi[1] * down, rel=1e-9)
