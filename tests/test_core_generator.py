"""Tests of the sparse generator assembly and its graph properties."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.core.generator import assemble_generator, build_generator, transition_rate_summary
from repro.core.parameters import GprsModelParameters
from repro.core.transitions import TransitionBatch, enumerate_transitions
from repro.core.state_space import GprsStateSpace
from repro.traffic.presets import TRAFFIC_MODEL_3


@pytest.fixture
def params() -> GprsModelParameters:
    return GprsModelParameters.from_traffic_model(
        TRAFFIC_MODEL_3, total_call_arrival_rate=0.4, buffer_size=4, max_gprs_sessions=3
    )


@pytest.fixture
def generator_and_space(params):
    return build_generator(
        params, gsm_handover_arrival_rate=0.05, gprs_handover_arrival_rate=0.01
    )


class TestGeneratorProperties:
    def test_rows_sum_to_zero(self, generator_and_space):
        q, _ = generator_and_space
        rows = np.asarray(q.sum(axis=1)).ravel()
        assert np.max(np.abs(rows)) < 1e-9

    def test_off_diagonal_non_negative(self, generator_and_space):
        q, _ = generator_and_space
        off = q.copy()
        off.setdiag(0.0)
        assert off.nnz == 0 or off.data.min() >= 0

    def test_diagonal_non_positive(self, generator_and_space):
        q, _ = generator_and_space
        assert np.all(q.diagonal() <= 0)

    def test_dimension_matches_state_space(self, generator_and_space, params):
        q, space = generator_and_space
        assert q.shape == (space.size, space.size)
        assert space.size == params.state_space_size

    def test_chain_is_irreducible(self, generator_and_space):
        """The transition graph must be strongly connected (single recurrent class)."""
        q, _ = generator_and_space
        adjacency = (q > 0).astype(np.int8)
        components, _ = csgraph.connected_components(adjacency, directed=True,
                                                     connection="strong")
        assert components == 1

    def test_generator_nonzero_count_is_moderate(self, generator_and_space):
        """Each state has a bounded number of outgoing transitions (Table 1 has ~11 rows)."""
        q, space = generator_and_space
        assert q.nnz <= 13 * space.size


class TestAssembly:
    def test_duplicate_transitions_are_summed(self):
        batch_a = TransitionBatch(
            event="a", source=np.array([0]), target=np.array([1]), rate=np.array([2.0])
        )
        batch_b = TransitionBatch(
            event="b", source=np.array([0]), target=np.array([1]), rate=np.array([3.0])
        )
        q = assemble_generator([batch_a, batch_b], number_of_states=2)
        assert q[0, 1] == pytest.approx(5.0)
        assert q[0, 0] == pytest.approx(-5.0)

    def test_self_loop_rejected(self):
        batch = TransitionBatch(
            event="loop", source=np.array([1]), target=np.array([1]), rate=np.array([1.0])
        )
        with pytest.raises(ValueError, match="self-loop"):
            assemble_generator([batch], number_of_states=2)

    def test_empty_batches_give_zero_generator(self):
        q = assemble_generator([], number_of_states=3)
        assert q.shape == (3, 3)
        assert q.nnz == 0

    def test_mismatched_batch_arrays_rejected(self):
        with pytest.raises(ValueError, match="identical shapes"):
            TransitionBatch(
                event="bad",
                source=np.array([0, 1]),
                target=np.array([1]),
                rate=np.array([1.0]),
            )


class TestSummary:
    def test_transition_rate_summary(self, params):
        space = GprsStateSpace(params.gsm_channels, params.buffer_size,
                               params.max_gprs_sessions)
        batches = enumerate_transitions(
            params, space, gsm_handover_arrival_rate=0.0, gprs_handover_arrival_rate=0.0
        )
        summary = transition_rate_summary(batches)
        assert "gsm_arrival" in summary
        assert summary["gsm_arrival"]["count"] > 0
        assert summary["gsm_arrival"]["max_rate"] >= summary["gsm_arrival"]["min_rate"] > 0


class TestHigherLoadGenerators:
    @pytest.mark.parametrize("reserved", [0, 2, 4])
    def test_reserved_pdch_variants_build_valid_generators(self, reserved):
        params = GprsModelParameters.from_traffic_model(
            TRAFFIC_MODEL_3,
            total_call_arrival_rate=0.8,
            buffer_size=3,
            max_gprs_sessions=2,
            reserved_pdch=reserved,
        )
        q, space = build_generator(
            params, gsm_handover_arrival_rate=0.2, gprs_handover_arrival_rate=0.03
        )
        rows = np.asarray(q.sum(axis=1)).ravel()
        assert np.max(np.abs(rows)) < 1e-9
        assert sp.issparse(q)
        assert space.gsm_channels == 20 - reserved
