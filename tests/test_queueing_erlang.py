"""Tests of the Erlang-loss formulas used by the handover balance and Eq. (6)-(7)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.erlang import (
    ErlangLossSystem,
    erlang_b,
    erlang_b_recursive,
    erlang_c,
    offered_load,
)


def erlang_b_direct(load: float, servers: int) -> float:
    """Direct factorial evaluation of Erlang B (only stable for small inputs)."""
    numerator = load**servers / math.factorial(servers)
    denominator = sum(load**k / math.factorial(k) for k in range(servers + 1))
    return numerator / denominator


class TestErlangB:
    @pytest.mark.parametrize("load,servers", [(1.0, 1), (2.5, 4), (10.0, 12), (0.1, 3)])
    def test_recursive_matches_direct_formula(self, load, servers):
        assert erlang_b_recursive(load, servers) == pytest.approx(
            erlang_b_direct(load, servers), rel=1e-12
        )

    def test_zero_servers_blocks_everything(self):
        assert erlang_b(5.0, 0) == pytest.approx(1.0)

    def test_zero_load_never_blocks(self):
        assert erlang_b(0.0, 3) == pytest.approx(0.0)

    def test_known_textbook_value(self):
        # Classic example: 10 Erlang offered to 10 trunks -> about 21.5% blocking.
        assert erlang_b(10.0, 10) == pytest.approx(0.2146, abs=1e-4)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            erlang_b(-1.0, 3)
        with pytest.raises(ValueError):
            erlang_b(1.0, -3)

    @given(load=st.floats(min_value=0.0, max_value=200.0),
           servers=st.integers(min_value=0, max_value=150))
    @settings(max_examples=60, deadline=None)
    def test_blocking_probability_is_valid(self, load, servers):
        blocking = erlang_b(load, servers)
        assert 0.0 <= blocking <= 1.0

    @given(load=st.floats(min_value=0.1, max_value=50.0),
           servers=st.integers(min_value=1, max_value=60))
    @settings(max_examples=40, deadline=None)
    def test_blocking_monotone_in_servers(self, load, servers):
        assert erlang_b(load, servers + 1) <= erlang_b(load, servers) + 1e-12


class TestErlangC:
    def test_requires_stable_queue(self):
        with pytest.raises(ValueError, match="stable"):
            erlang_c(5.0, 5)

    def test_known_value(self):
        # 2 Erlang offered to 3 servers: P(wait) ~ 0.4444.
        assert erlang_c(2.0, 3) == pytest.approx(0.4444, abs=1e-3)

    def test_waiting_probability_exceeds_loss_probability(self):
        # For the same load/servers, Erlang C >= Erlang B.
        assert erlang_c(3.0, 5) >= erlang_b(3.0, 5)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            erlang_c(1.0, 0)
        with pytest.raises(ValueError):
            erlang_c(-1.0, 2)


class TestOfferedLoad:
    def test_basic_ratio(self):
        assert offered_load(3.0, 1.5) == pytest.approx(2.0)

    def test_zero_service_rate_rejected(self):
        with pytest.raises(ValueError):
            offered_load(1.0, 0.0)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            offered_load(-1.0, 1.0)


class TestErlangLossSystem:
    @pytest.fixture
    def gsm_cell(self) -> ErlangLossSystem:
        """The GSM voice system of the base configuration at 0.95 calls/s."""
        return ErlangLossSystem(
            arrival_rate=0.95 + 0.3, service_rate=1 / 120 + 1 / 60, servers=19
        )

    def test_state_distribution_sums_to_one(self, gsm_cell):
        assert gsm_cell.state_distribution().sum() == pytest.approx(1.0)

    def test_blocking_matches_erlang_b(self, gsm_cell):
        assert gsm_cell.blocking_probability() == pytest.approx(
            erlang_b(gsm_cell.load, gsm_cell.servers), rel=1e-10
        )

    def test_carried_traffic_identity(self, gsm_cell):
        """Carried traffic = offered load * (1 - blocking)."""
        expected = gsm_cell.load * (1.0 - gsm_cell.blocking_probability())
        assert gsm_cell.carried_traffic() == pytest.approx(expected, rel=1e-10)

    def test_mean_number_equals_carried_traffic(self, gsm_cell):
        assert gsm_cell.mean_number_in_system() == pytest.approx(gsm_cell.carried_traffic())

    def test_departure_rate_balances_accepted_arrivals(self, gsm_cell):
        accepted = gsm_cell.arrival_rate * (1.0 - gsm_cell.blocking_probability())
        assert gsm_cell.departure_rate() == pytest.approx(accepted, rel=1e-10)

    def test_utilization_bounded(self, gsm_cell):
        assert 0.0 < gsm_cell.utilization() < 1.0

    def test_zero_load_system(self):
        system = ErlangLossSystem(arrival_rate=0.0, service_rate=1.0, servers=3)
        pi = system.state_distribution()
        assert pi[0] == pytest.approx(1.0)
        assert system.blocking_probability() == pytest.approx(0.0)
        assert system.carried_traffic() == pytest.approx(0.0)

    def test_large_system_is_numerically_stable(self):
        system = ErlangLossSystem(arrival_rate=500.0, service_rate=1.0, servers=400)
        pi = system.state_distribution()
        assert np.all(np.isfinite(pi))
        assert pi.sum() == pytest.approx(1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ErlangLossSystem(1.0, 1.0, 0)
        with pytest.raises(ValueError):
            ErlangLossSystem(1.0, 0.0, 2)
        with pytest.raises(ValueError):
            ErlangLossSystem(-1.0, 1.0, 2)

    @given(
        arrival=st.floats(min_value=0.01, max_value=30.0),
        service=st.floats(min_value=0.01, max_value=5.0),
        servers=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=40, deadline=None)
    def test_truncated_poisson_shape(self, arrival, service, servers):
        """The state distribution is the Poisson(load) distribution truncated at c."""
        system = ErlangLossSystem(arrival, service, servers)
        pi = system.state_distribution()
        load = system.load
        # Ratio test: pi[n] / pi[n-1] == load / n.
        for n in range(1, servers + 1):
            if pi[n - 1] > 1e-250:
                assert pi[n] / pi[n - 1] == pytest.approx(load / n, rel=1e-6)
