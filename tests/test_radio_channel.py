"""Tests of the Gilbert--Elliott burst-error channel."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.radio.channel import GilbertElliottChannel


class TestChannelValidation:
    def test_defaults_are_valid(self):
        channel = GilbertElliottChannel()
        assert 0.0 < channel.probability_good < 1.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            GilbertElliottChannel(good_block_error_rate=1.0)
        with pytest.raises(ValueError):
            GilbertElliottChannel(bad_block_error_rate=1.5)
        with pytest.raises(ValueError):
            GilbertElliottChannel(good_block_error_rate=0.6, bad_block_error_rate=0.3)
        with pytest.raises(ValueError):
            GilbertElliottChannel(mean_good_duration_s=0.0)
        with pytest.raises(ValueError):
            GilbertElliottChannel(mean_bad_duration_s=-1.0)
        with pytest.raises(ValueError):
            GilbertElliottChannel(block_period_s=0.0)

    def test_negative_sample_length_rejected(self):
        with pytest.raises(ValueError):
            GilbertElliottChannel().sample_block_errors(-1)
        with pytest.raises(ValueError):
            GilbertElliottChannel().empirical_block_error_rate(0)


class TestStationaryBehaviour:
    def test_state_probabilities_sum_to_one(self):
        channel = GilbertElliottChannel(mean_good_duration_s=3.0, mean_bad_duration_s=1.0)
        assert channel.probability_good + channel.probability_bad == pytest.approx(1.0)
        assert channel.probability_good == pytest.approx(0.75)

    def test_stationary_bler_is_between_the_state_blers(self):
        channel = GilbertElliottChannel(
            good_block_error_rate=0.01, bad_block_error_rate=0.4
        )
        stationary = channel.stationary_block_error_rate()
        assert 0.01 <= stationary <= 0.4

    def test_ctmc_stationary_distribution_matches_closed_form(self):
        channel = GilbertElliottChannel(mean_good_duration_s=2.0, mean_bad_duration_s=0.5)
        pi = channel.to_ctmc().stationary_distribution()
        assert pi[0] == pytest.approx(channel.probability_good, rel=1e-9)
        assert pi[1] == pytest.approx(channel.probability_bad, rel=1e-9)

    def test_burst_length_at_least_one_block(self):
        short_dips = GilbertElliottChannel(mean_bad_duration_s=0.001)
        assert short_dips.mean_error_burst_length_blocks() == pytest.approx(1.0)
        long_dips = GilbertElliottChannel(mean_bad_duration_s=0.2)
        assert long_dips.mean_error_burst_length_blocks() == pytest.approx(10.0)


class TestSampling:
    def test_sampled_error_rate_close_to_stationary(self):
        channel = GilbertElliottChannel(
            good_block_error_rate=0.02,
            bad_block_error_rate=0.5,
            mean_good_duration_s=1.0,
            mean_bad_duration_s=0.25,
        )
        rng = np.random.default_rng(7)
        empirical = channel.empirical_block_error_rate(200_000, rng)
        assert empirical == pytest.approx(channel.stationary_block_error_rate(), abs=0.01)

    def test_errors_are_correlated_in_bursts(self):
        """A bursty channel shows more adjacent error pairs than an i.i.d. one."""
        channel = GilbertElliottChannel(
            good_block_error_rate=0.0,
            bad_block_error_rate=1.0,
            mean_good_duration_s=1.0,
            mean_bad_duration_s=0.2,
        )
        rng = np.random.default_rng(11)
        errors = channel.sample_block_errors(100_000, rng)
        rate = errors.mean()
        adjacent_pairs = np.mean(errors[1:] & errors[:-1])
        assert adjacent_pairs > 1.5 * rate * rate  # far above the independent value

    def test_sample_length(self):
        errors = GilbertElliottChannel().sample_block_errors(123, np.random.default_rng(0))
        assert errors.shape == (123,)
        assert errors.dtype == bool

    def test_zero_length_sample(self):
        assert GilbertElliottChannel().sample_block_errors(0).shape == (0,)


class TestChannelProperties:
    @given(
        good=st.floats(min_value=0.0, max_value=0.3),
        extra=st.floats(min_value=0.0, max_value=0.7),
        good_duration=st.floats(min_value=0.01, max_value=100.0),
        bad_duration=st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=50)
    def test_stationary_bler_bounds(self, good, extra, good_duration, bad_duration):
        channel = GilbertElliottChannel(
            good_block_error_rate=good,
            bad_block_error_rate=min(good + extra, 1.0),
            mean_good_duration_s=good_duration,
            mean_bad_duration_s=bad_duration,
        )
        stationary = channel.stationary_block_error_rate()
        assert channel.good_block_error_rate - 1e-12 <= stationary
        assert stationary <= channel.bad_block_error_rate + 1e-12
