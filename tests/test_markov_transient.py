"""Tests of transient analysis via uniformisation."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.linalg import expm

from repro.markov.transient import (
    poisson_truncation_point,
    transient_distribution,
    uniformize,
)


def three_state_generator() -> np.ndarray:
    generator = np.array(
        [[-3.0, 2.0, 1.0], [0.5, -1.5, 1.0], [2.0, 2.0, -4.0]]
    )
    return generator


class TestUniformize:
    def test_uniformized_matrix_is_stochastic(self):
        p, rate = uniformize(three_state_generator())
        rows = np.asarray(p.sum(axis=1)).ravel()
        assert rows == pytest.approx(np.ones(3))
        assert rate >= 4.0

    def test_explicit_rate_must_cover_exit_rates(self):
        with pytest.raises(ValueError, match="smaller than the maximum exit rate"):
            uniformize(three_state_generator(), rate=1.0)

    def test_zero_generator_yields_identity(self):
        p, rate = uniformize(np.zeros((3, 3)))
        assert np.allclose(p.toarray(), np.eye(3))
        assert rate > 0


def _linear_scan_truncation(mean: float, tol: float) -> int:
    """The historical linear scan (the small-mean reference implementation)."""
    pmf = np.exp(-mean)
    cdf = pmf
    k = 0
    guard = int(mean + 12.0 * np.sqrt(mean) + 30.0)
    while cdf < 1.0 - tol and k < guard:
        k += 1
        pmf *= mean / k
        cdf += pmf
    return k


class TestPoissonTruncation:
    def test_zero_mean(self):
        assert poisson_truncation_point(0.0, 1e-10) == 0

    def test_negative_mean_rejected(self):
        with pytest.raises(ValueError):
            poisson_truncation_point(-1.0, 1e-10)

    @pytest.mark.parametrize("mean", [0.5, 5.0, 50.0])
    def test_truncation_covers_requested_mass(self, mean):
        from scipy.stats import poisson

        point = poisson_truncation_point(mean, 1e-9)
        assert poisson.cdf(point, mean) >= 1 - 1e-9

    def test_truncation_grows_with_mean(self):
        assert poisson_truncation_point(100.0, 1e-9) > poisson_truncation_point(1.0, 1e-9)

    def test_small_means_bitwise_match_the_linear_scan(self):
        """Below the jump threshold the scan result is reproduced exactly."""
        rng = np.random.default_rng(20020527)
        means = list(rng.uniform(0.001, 32.0, 100)) + [1.0, 31.999, 32.0]
        for mean in means:
            for tol in (1e-6, 1e-9, 1e-12, 1e-15):
                assert poisson_truncation_point(mean, tol) == _linear_scan_truncation(
                    mean, tol
                ), (mean, tol)

    @pytest.mark.parametrize("mean", [50.0, 200.0, 1234.5, 2e4, 1e6])
    @pytest.mark.parametrize("tol", [1e-6, 1e-9, 1e-12])
    def test_large_mean_jump_is_certified_and_tight(self, mean, tol):
        """The normal-approximation jump must cover the requested mass and
        land within a fraction of a standard deviation of the exact quantile."""
        from scipy.stats import poisson

        point = poisson_truncation_point(mean, tol)
        assert poisson.cdf(point, mean) >= 1 - tol
        exact = int(poisson.ppf(1 - tol, mean))
        assert exact <= point <= exact + 0.5 * np.sqrt(mean) + 10

    def test_large_mean_jump_is_constant_cost(self):
        """The jump must not degenerate into an O(mean) walk."""
        import time

        start = time.perf_counter()
        for _ in range(100):
            poisson_truncation_point(5e6, 1e-12)
        elapsed = time.perf_counter() - start
        assert elapsed < 0.5  # the linear scan would need minutes


class TestTransientDistribution:
    def test_matches_matrix_exponential(self):
        generator = three_state_generator()
        initial = np.array([1.0, 0.0, 0.0])
        for time in (0.1, 0.7, 2.5):
            expected = initial @ expm(generator * time)
            actual = transient_distribution(generator, initial, time)
            assert actual == pytest.approx(expected, abs=1e-9)

    def test_time_zero_returns_initial(self):
        initial = np.array([0.2, 0.3, 0.5])
        result = transient_distribution(three_state_generator(), initial, 0.0)
        assert result == pytest.approx(initial)

    def test_long_horizon_reaches_stationarity(self):
        from repro.markov.solvers import steady_state_gth

        generator = three_state_generator()
        stationary = steady_state_gth(generator).distribution
        late = transient_distribution(generator, [1.0, 0.0, 0.0], 500.0)
        assert late == pytest.approx(stationary, abs=1e-8)

    def test_initial_distribution_is_normalised(self):
        result = transient_distribution(three_state_generator(), [2.0, 0.0, 0.0], 0.5)
        assert result.sum() == pytest.approx(1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            transient_distribution(three_state_generator(), [1.0, 0.0, 0.0], -1.0)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="length"):
            transient_distribution(three_state_generator(), [1.0, 0.0], 1.0)

    def test_zero_mass_initial_rejected(self):
        with pytest.raises(ValueError, match="positive finite mass"):
            transient_distribution(three_state_generator(), [0.0, 0.0, 0.0], 1.0)
