"""Tests of the warm scenario service (repro.service)."""

from __future__ import annotations

import io
import threading
from contextlib import redirect_stdout

import pytest

from repro import cli
from repro.runtime import ResultCache
from repro.service import (
    ScenarioService,
    ServiceClient,
    ServiceError,
    canonical_payload,
    canonical_text,
    create_server,
    normalise_request,
)
from repro.store import ArtifactStore


class TestProtocol:
    def test_canonical_strips_run_provenance(self):
        payload = {
            "scenario": {"name": "x"},
            "cache": {"hits": 3, "misses": 1},
            "points": [
                {
                    "index": 0,
                    "arrival_rate": 0.3,
                    "from_cache": True,
                    "failed": False,
                    "values": {"loss": 0.1},
                    "matvecs": 42,
                    "propagator_hits": 7,
                    "pipelined_jobs": 4,
                    "solver_calls": 9,
                }
            ],
        }
        canonical = canonical_payload(payload)
        assert "cache" not in canonical
        point = canonical["points"][0]
        for stripped in (
            "from_cache", "matvecs", "propagator_hits", "pipelined_jobs",
            "solver_calls",
        ):
            assert stripped not in point
        assert point["failed"] is False  # real outcomes survive
        assert point["values"] == {"loss": 0.1}

    def test_canonical_keeps_the_profile_segment_count(self):
        """Only the trace *list* is provenance; the profile's scalar
        segment count describes the workload and must survive."""
        payload = {
            "profile": {"name": "diurnal", "segments": 24},
            "segments": [{"index": 0, "replayed": True, "matvecs": 0}],
            "times": [0.0, 1.0],
            "matvecs": 100,
        }
        canonical = canonical_payload(payload)
        assert "segments" not in canonical
        assert "matvecs" not in canonical
        assert canonical["profile"]["segments"] == 24
        assert canonical["times"] == [0.0, 1.0]

    def test_canonical_text_is_deterministic(self):
        a = canonical_text({"b": 1, "a": {"z": 2, "y": [3]}})
        b = canonical_text({"a": {"y": [3], "z": 2}, "b": 1})
        assert a == b

    def test_normalise_request_defaults_and_errors(self):
        request = normalise_request(
            {"command": "transient", "scenario": "diurnal-24h"}
        )
        assert request == {
            "command": "transient",
            "scenario": "diurnal-24h",
            "preset": "default",
            "rate": None,
            "pipelined": False,
            "cache": True,
        }
        with pytest.raises(ValueError, match="unknown command"):
            normalise_request({"command": "solve", "scenario": "x"})
        with pytest.raises(ValueError, match="scenario"):
            normalise_request({"command": "sweep"})
        with pytest.raises(ValueError, match="preset"):
            normalise_request(
                {"command": "sweep", "scenario": "x", "preset": "huge"}
            )
        with pytest.raises(ValueError, match="rate"):
            normalise_request({"command": "sweep", "scenario": "x", "rate": 0.5})
        with pytest.raises(ValueError, match="pipelined"):
            normalise_request(
                {"command": "transient", "scenario": "x", "pipelined": True}
            )


@pytest.fixture()
def service_client(tmp_path):
    """A live in-thread server plus a client bound to its ephemeral port."""
    service = ScenarioService(
        jobs=1,
        cache=ResultCache(tmp_path / "cache"),
        store=ArtifactStore(tmp_path / "store"),
    )
    server = create_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
    try:
        yield service, client
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=10)


_REQUEST = {"command": "transient", "scenario": "diurnal-24h", "preset": "smoke"}


class TestService:
    def test_health_and_stats(self, service_client):
        _, client = service_client
        assert client.wait_ready()
        health = client.health()
        assert health["ok"] and health["status"] == "ready"
        stats = client.stats()
        assert stats["ok"]
        assert stats["requests"] == 0
        assert stats["store"]["entries"] == 0
        assert stats["cache"] is not None

    def test_repeat_request_is_served_from_cache(self, service_client):
        _, client = service_client
        first = client.run(_REQUEST)
        assert first["ok"], first
        second = client.run(_REQUEST)
        assert second["ok"]
        assert second["cache"]["hits"] > 0  # result cache answered
        counters = second["metrics"]["counters"]
        assert counters.get("transient.solves", 0) == 0  # no solver touched
        assert second["canonical"] == first["canonical"]
        # The raw payloads differ exactly in provenance: cache bookkeeping
        # and per-point from_cache flags -- what canonical stripping removes.
        assert canonical_payload(second["payload"]) == canonical_payload(
            first["payload"]
        )

    def test_store_warm_resolve_is_bitwise(self, service_client):
        """`cache: false` forces a re-solve that must flow through the warm
        store -- zero matvecs -- and land on identical canonical bytes."""
        _, client = service_client
        first = client.run(_REQUEST)
        assert first["ok"]
        resolved = client.run(dict(_REQUEST, cache=False))
        assert resolved["ok"]
        counters = resolved["metrics"]["counters"]
        assert counters.get("transient.solves", 0) > 0  # it really re-solved
        assert counters.get("transient.matvecs", 0) == 0  # ... via replay
        # Within one server process the in-memory tier may answer before
        # the disk tier; either way every segment replayed warm.
        assert counters.get("cache.propagator.hits", 0) > 0
        assert resolved["canonical"] == first["canonical"]

    def test_batch_answers_in_order(self, service_client):
        _, client = service_client
        reply = client.batch(
            [
                _REQUEST,
                {"command": "network", "scenario": "homogeneous-7", "preset": "smoke"},
            ]
        )
        assert reply["ok"]
        assert len(reply["responses"]) == 2
        assert reply["responses"][0]["command"] == "transient"
        assert reply["responses"][1]["command"] == "network"
        assert all(item["ok"] for item in reply["responses"])

    def test_unknown_scenario_is_a_clean_error(self, service_client):
        _, client = service_client
        response = client.run({"command": "transient", "scenario": "no-such"})
        assert response["ok"] is False
        assert "no-such" in response["error"]
        # A failed request must not poison the server.
        assert client.health()["ok"]

    def test_unknown_path_and_bad_body(self, service_client):
        _, client = service_client
        response = client._request("/nope")
        assert response["ok"] is False
        batch = client._request("/batch", {"not_requests": 1})
        assert batch["ok"] is False

    def test_connection_error_raises_service_error(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ServiceError):
            client.health()

    def test_served_answer_matches_the_cold_cli_bytes(self, service_client):
        _, client = service_client
        served = client.run(_REQUEST)
        assert served["ok"]
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = cli.main(
                [
                    "transient", "diurnal-24h", "--preset", "smoke",
                    "--no-cache", "--no-store", "--canonical",
                ]
            )
        assert code == 0
        assert buffer.getvalue() == served["canonical"] + "\n"

    def test_shutdown_endpoint_stops_the_server(self, tmp_path):
        service = ScenarioService(jobs=1)
        server = create_server(service, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
        assert client.wait_ready()
        ack = client.shutdown()
        assert ack["ok"] and ack["stopping"]
        thread.join(timeout=10)
        assert not thread.is_alive()
        server.server_close()
        service.close()

    def test_shutdown_drains_a_slow_inflight_request(self):
        """Regression: /shutdown used to tear the server down while in-flight
        requests were still solving.  A slow request admitted before the
        shutdown must complete -- drained, not dropped."""
        import time

        started = threading.Event()

        class _SlowService(ScenarioService):
            def _solve_request(self, request):
                started.set()
                time.sleep(0.8)
                return {"ok": True, "slow": True}

        service = _SlowService(jobs=1, drain_timeout=30.0)
        server = create_server(service, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
        assert client.wait_ready()
        responses = []
        runner = threading.Thread(
            target=lambda: responses.append(client.run(_REQUEST)), daemon=True
        )
        runner.start()
        assert started.wait(10)  # the solve is genuinely in flight
        ack = client.shutdown()
        assert ack["ok"] and ack["stopping"]
        runner.join(timeout=30)
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert responses and responses[0]["ok"] and responses[0]["slow"]
        assert service.stats()["admission"]["drained"] == 1
        server.server_close()
        service.close()
