"""Tests of the radio-interface arithmetic (TDMA/RLC segmentation, multislot)."""

from __future__ import annotations

import math

import pytest

from repro.simulator.radio import (
    RADIO_BLOCK_PERIOD_S,
    RLC_BLOCK_PAYLOAD_BITS,
    effective_rate_kbit_s,
    rlc_blocks_per_packet,
    transmission_time,
)
from repro.traffic.units import CODING_SCHEME_RATES_KBIT_S, pdch_service_rate


class TestBlockPayloads:
    def test_block_rates_reproduce_table2(self):
        """Payload bits per 20 ms block reproduce the per-PDCH kbit/s of each coding scheme."""
        for scheme, payload in RLC_BLOCK_PAYLOAD_BITS.items():
            rate = payload / RADIO_BLOCK_PERIOD_S / 1000.0
            assert rate == pytest.approx(CODING_SCHEME_RATES_KBIT_S[scheme], rel=1e-9)

    def test_cs2_blocks_per_480_byte_packet(self):
        assert rlc_blocks_per_packet(480, "CS-2") == math.ceil(3840 / 268) == 15

    def test_cs4_needs_fewer_blocks(self):
        assert rlc_blocks_per_packet(480, "CS-4") < rlc_blocks_per_packet(480, "CS-1")

    def test_invalid_packet_size(self):
        with pytest.raises(ValueError):
            rlc_blocks_per_packet(0)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            rlc_blocks_per_packet(480, "CS-0")


class TestTransmissionTime:
    def test_single_channel_rate_matches_service_rate(self):
        """One packet over one CS-2 PDCH takes about 1 / mu_service seconds."""
        time = transmission_time(480, channels=1, coding_scheme="CS-2")
        assert time == pytest.approx(1.0 / pdch_service_rate("CS-2"), rel=0.05)

    def test_more_channels_are_faster(self):
        single = transmission_time(480, channels=1)
        quad = transmission_time(480, channels=4)
        assert quad < single
        assert quad == pytest.approx(math.ceil(15 / 4) * RADIO_BLOCK_PERIOD_S)

    def test_channels_clipped_at_multislot_limit(self):
        assert transmission_time(480, channels=8) == transmission_time(480, channels=20)

    def test_at_least_one_channel_required(self):
        with pytest.raises(ValueError):
            transmission_time(480, channels=0)

    def test_small_packet_single_block(self):
        assert transmission_time(30, channels=1) == pytest.approx(RADIO_BLOCK_PERIOD_S)


class TestEffectiveRate:
    def test_aggregate_rate_scales_with_channels(self):
        assert effective_rate_kbit_s(4, "CS-2") == pytest.approx(4 * 13.4)

    def test_zero_channels(self):
        assert effective_rate_kbit_s(0) == 0.0

    def test_negative_channels_rejected(self):
        with pytest.raises(ValueError):
            effective_rate_kbit_s(-1)
