"""Tests of the structure-exploiting steady-state solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.generator import build_generator
from repro.core.handover import balance_handover_rates
from repro.core.parameters import GprsModelParameters
from repro.core.state_space import GprsStateSpace
from repro.core.structured_solver import (
    StructuredSolveContext,
    _gsm_phase_marginal,
    _pair_phase_marginal,
    build_phase_generator,
    solve_structured,
)
from repro.markov.solvers import solve_steady_state
from repro.queueing.erlang import ErlangLossSystem
from repro.traffic.presets import TRAFFIC_MODEL_1, TRAFFIC_MODEL_3


def _setup(params):
    balance = balance_handover_rates(params)
    space = GprsStateSpace(params.gsm_channels, params.buffer_size, params.max_gprs_sessions)
    generator, _ = build_generator(
        params,
        space,
        gsm_handover_arrival_rate=balance.gsm_handover_arrival_rate,
        gprs_handover_arrival_rate=balance.gprs_handover_arrival_rate,
    )
    return balance, space, generator


class TestPhaseGenerator:
    def test_phase_generator_rows_sum_to_zero(self, small_parameters):
        balance, space, _ = _setup(small_parameters)
        phase_generator = build_phase_generator(
            small_parameters,
            space,
            gsm_handover_arrival_rate=balance.gsm_handover_arrival_rate,
            gprs_handover_arrival_rate=balance.gprs_handover_arrival_rate,
        )
        pair_count = (space.max_sessions + 1) * (space.max_sessions + 2) // 2
        assert phase_generator.shape[0] == (space.gsm_channels + 1) * pair_count
        rows = np.asarray(phase_generator.sum(axis=1)).ravel()
        assert np.max(np.abs(rows)) < 1e-10

    def test_phase_marginal_n_is_erlang_loss(self, small_parameters):
        """Marginalising the phase chain over (m, r) gives the GSM Erlang-loss solution."""
        balance, space, _ = _setup(small_parameters)
        phase_generator = build_phase_generator(
            small_parameters,
            space,
            gsm_handover_arrival_rate=balance.gsm_handover_arrival_rate,
            gprs_handover_arrival_rate=balance.gprs_handover_arrival_rate,
        )
        pi = solve_steady_state(phase_generator).distribution
        pair_count = (space.max_sessions + 1) * (space.max_sessions + 2) // 2
        marginal_n = pi.reshape(space.gsm_channels + 1, pair_count).sum(axis=1)
        system = ErlangLossSystem(
            arrival_rate=small_parameters.gsm_arrival_rate
            + balance.gsm_handover_arrival_rate,
            service_rate=small_parameters.gsm_completion_rate
            + small_parameters.gsm_handover_departure_rate,
            servers=small_parameters.gsm_channels,
        )
        assert marginal_n == pytest.approx(system.state_distribution(), abs=1e-9)


class TestPhaseStencilConsistency:
    """The phase transition stencil exists in three forms (the sparse phase
    generator, the context's frozen pattern, and the Kronecker factor
    chains); these tests pin them to each other so an edit to one copy
    cannot silently desynchronise the solver."""

    def test_context_coupling_matches_phase_generator(self, small_parameters):
        balance, space, _ = _setup(small_parameters)
        reference = build_phase_generator(
            small_parameters,
            space,
            gsm_handover_arrival_rate=balance.gsm_handover_arrival_rate,
            gprs_handover_arrival_rate=balance.gprs_handover_arrival_rate,
        )
        context = StructuredSolveContext.build(small_parameters, space)
        gsm_arrival = (
            small_parameters.gsm_arrival_rate + balance.gsm_handover_arrival_rate
        )
        gprs_arrival = (
            small_parameters.gprs_arrival_rate + balance.gprs_handover_arrival_rate
        )
        phase_off, phase_exit = context.phase_coupling(gsm_arrival, gprs_arrival)
        off_reference = reference.copy()
        off_reference.setdiag(0.0)
        off_reference.eliminate_zeros()
        difference = abs(phase_off - off_reference)
        assert difference.max() < 1e-12 if difference.nnz else True
        assert phase_exit == pytest.approx(-reference.diagonal(), abs=1e-12)

    def test_kronecker_marginal_matches_full_phase_chain(self, small_parameters):
        balance, space, _ = _setup(small_parameters)
        reference = build_phase_generator(
            small_parameters,
            space,
            gsm_handover_arrival_rate=balance.gsm_handover_arrival_rate,
            gprs_handover_arrival_rate=balance.gprs_handover_arrival_rate,
        )
        solved = solve_steady_state(reference, method="auto").distribution
        gsm_arrival = (
            small_parameters.gsm_arrival_rate + balance.gsm_handover_arrival_rate
        )
        gprs_arrival = (
            small_parameters.gprs_arrival_rate + balance.gprs_handover_arrival_rate
        )
        kronecker = np.kron(
            _gsm_phase_marginal(small_parameters, gsm_arrival),
            _pair_phase_marginal(small_parameters, space, gprs_arrival),
        )
        assert kronecker == pytest.approx(solved, abs=1e-12)


class TestStructuredSolution:
    def test_matches_generic_solver_small(self, small_parameters):
        balance, space, generator = _setup(small_parameters)
        structured = solve_structured(
            small_parameters,
            space,
            generator,
            gsm_handover_arrival_rate=balance.gsm_handover_arrival_rate,
            gprs_handover_arrival_rate=balance.gprs_handover_arrival_rate,
        )
        reference = solve_steady_state(generator, method="gth")
        assert structured.distribution == pytest.approx(reference.distribution, abs=1e-6)
        assert structured.method == "structured"

    def test_matches_generic_solver_medium(self, medium_parameters):
        balance, space, generator = _setup(medium_parameters)
        structured = solve_structured(
            medium_parameters,
            space,
            generator,
            gsm_handover_arrival_rate=balance.gsm_handover_arrival_rate,
            gprs_handover_arrival_rate=balance.gprs_handover_arrival_rate,
        )
        reference = solve_steady_state(generator, method="direct")
        assert structured.distribution == pytest.approx(reference.distribution, abs=1e-6)

    def test_distribution_is_valid(self, light_traffic_parameters):
        balance, space, generator = _setup(light_traffic_parameters)
        result = solve_structured(
            light_traffic_parameters,
            space,
            generator,
            gsm_handover_arrival_rate=balance.gsm_handover_arrival_rate,
            gprs_handover_arrival_rate=balance.gprs_handover_arrival_rate,
        )
        assert result.distribution.sum() == pytest.approx(1.0)
        assert np.all(result.distribution >= 0)
        assert result.iterations > 0

    def test_residual_is_small(self, medium_parameters):
        balance, space, generator = _setup(medium_parameters)
        result = solve_structured(
            medium_parameters,
            space,
            generator,
            gsm_handover_arrival_rate=balance.gsm_handover_arrival_rate,
            gprs_handover_arrival_rate=balance.gprs_handover_arrival_rate,
        )
        scale = np.max(np.abs(generator.diagonal()))
        assert result.residual / scale < 1e-6

    def test_works_without_flow_control(self):
        """eta = 1 (no TCP throttling) exercises the uncapped arrival branch."""
        params = GprsModelParameters.from_traffic_model(
            TRAFFIC_MODEL_3, 0.8, buffer_size=5, max_gprs_sessions=3, tcp_threshold=1.0
        )
        balance, space, generator = _setup(params)
        structured = solve_structured(
            params,
            space,
            generator,
            gsm_handover_arrival_rate=balance.gsm_handover_arrival_rate,
            gprs_handover_arrival_rate=balance.gprs_handover_arrival_rate,
        )
        reference = solve_steady_state(generator, method="direct")
        assert structured.distribution == pytest.approx(reference.distribution, abs=1e-6)

    def test_works_for_light_long_sessions(self):
        """Traffic model 1 (very long sessions, tiny packet rate) is the stiffest case."""
        params = GprsModelParameters.from_traffic_model(
            TRAFFIC_MODEL_1, 0.6, buffer_size=4, max_gprs_sessions=3
        )
        balance, space, generator = _setup(params)
        structured = solve_structured(
            params,
            space,
            generator,
            gsm_handover_arrival_rate=balance.gsm_handover_arrival_rate,
            gprs_handover_arrival_rate=balance.gprs_handover_arrival_rate,
        )
        reference = solve_steady_state(generator, method="direct")
        assert structured.distribution == pytest.approx(reference.distribution, abs=1e-6)
