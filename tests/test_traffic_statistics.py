"""Tests of the trace statistics and IPP / session-model fitting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traffic.presets import TRAFFIC_MODEL_3
from repro.traffic.sampling import SessionSampler
from repro.traffic.statistics import (
    compute_trace_statistics,
    detect_packet_calls,
    fit_ipp,
    fit_session_model,
)


def poisson_trace(rate: float, count: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / rate, size=count))


def synthetic_session_trace(model, sessions: int, seed: int = 1) -> np.ndarray:
    """Concatenate several sampled sessions into one long trace."""
    sampler = SessionSampler(model, np.random.default_rng(seed))
    times = []
    offset = 0.0
    for _ in range(sessions):
        trace = sampler.sample_session(start_time=offset)
        times.extend(trace.all_packet_times())
        offset = trace.duration + sampler.sample_reading_time()
    return np.array(times)


class TestTraceStatistics:
    def test_poisson_trace_statistics(self):
        trace = poisson_trace(rate=5.0, count=20_000)
        stats = compute_trace_statistics(trace)
        assert stats.mean_rate == pytest.approx(5.0, rel=0.05)
        assert stats.interarrival_scv == pytest.approx(1.0, rel=0.1)
        assert stats.index_of_dispersion == pytest.approx(1.0, abs=0.2)
        assert stats.number_of_packets == 20_000

    def test_bursty_trace_has_higher_variability_than_poisson(self):
        bursty = synthetic_session_trace(TRAFFIC_MODEL_3.session, sessions=40)
        stats = compute_trace_statistics(bursty, window_s=5.0)
        assert stats.interarrival_scv > 1.2
        assert stats.index_of_dispersion > 1.2
        assert stats.peak_to_mean_ratio > 1.2

    def test_input_validation(self):
        with pytest.raises(ValueError):
            compute_trace_statistics([1.0])
        with pytest.raises(ValueError):
            compute_trace_statistics([[1.0, 2.0], [3.0, 4.0]])
        with pytest.raises(ValueError):
            compute_trace_statistics([-1.0, 2.0])
        with pytest.raises(ValueError):
            compute_trace_statistics([1.0, 1.0])
        with pytest.raises(ValueError):
            compute_trace_statistics([1.0, 2.0, 3.0], window_s=0.0)

    def test_unsorted_input_is_accepted(self):
        ordered = poisson_trace(2.0, 500, seed=3)
        shuffled = ordered.copy()
        np.random.default_rng(0).shuffle(shuffled)
        assert compute_trace_statistics(shuffled).mean_rate == pytest.approx(
            compute_trace_statistics(ordered).mean_rate
        )


class TestPacketCallDetection:
    def test_single_burst_is_one_call(self):
        trace = np.array([0.0, 0.1, 0.2, 0.3])
        calls = detect_packet_calls(trace, idle_threshold_s=1.0)
        assert len(calls) == 1
        assert calls[0].size == 4

    def test_gaps_split_the_trace(self):
        trace = np.array([0.0, 0.1, 0.2, 10.0, 10.1, 25.0])
        calls = detect_packet_calls(trace, idle_threshold_s=5.0)
        assert [call.size for call in calls] == [3, 2, 1]

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            detect_packet_calls([0.0, 1.0], idle_threshold_s=0.0)


class TestModelFitting:
    def test_fit_recovers_the_generating_parameters(self):
        """Fitting a long synthetic trace recovers the Table 3 parameters roughly."""
        model = TRAFFIC_MODEL_3.session
        trace = synthetic_session_trace(model, sessions=300, seed=7)
        # Reading times are ~3.1 s and in-call gaps ~0.125 s; threshold between.
        fitted = fit_session_model(trace, idle_threshold_s=1.0)
        assert fitted.packet_interarrival_s == pytest.approx(
            model.packet_interarrival_s, rel=0.25
        )
        assert fitted.packets_per_packet_call == pytest.approx(
            model.packets_per_packet_call, rel=0.35
        )
        # Reading-time estimate also absorbs the inter-session idle gaps, which
        # in traffic model 3 have the same scale as the reading times.
        assert fitted.reading_time_s == pytest.approx(model.reading_time_s, rel=0.6)

    def test_fit_ipp_mean_rate_matches_the_trace(self):
        model = TRAFFIC_MODEL_3.session
        trace = synthetic_session_trace(model, sessions=200, seed=11)
        fitted = fit_ipp(trace, idle_threshold_s=1.0)
        stats = compute_trace_statistics(trace)
        assert fitted.mean_arrival_rate() == pytest.approx(stats.mean_rate, rel=0.35)

    def test_explicit_packet_calls_per_session_is_honoured(self):
        trace = synthetic_session_trace(TRAFFIC_MODEL_3.session, sessions=20, seed=5)
        fitted = fit_session_model(trace, idle_threshold_s=1.0, packet_calls_per_session=50)
        assert fitted.packet_calls_per_session == 50

    def test_fit_requires_detectable_structure(self):
        with pytest.raises(ValueError):
            # A dense Poisson trace has no gaps above the threshold.
            fit_session_model(poisson_trace(10.0, 1000), idle_threshold_s=50.0)
        with pytest.raises(ValueError):
            # Threshold below every gap: no in-call structure either.
            fit_session_model(np.array([0.0, 10.0, 20.0, 30.0]), idle_threshold_s=0.1)
