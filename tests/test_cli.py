"""Tests of the gprs-repro command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_command_arguments(self):
        args = build_parser().parse_args(["run", "figure12", "--preset", "smoke"])
        assert args.command == "run"
        assert args.experiment == "figure12"
        assert args.preset == "smoke"

    def test_solve_command_requires_arrival_rate(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve"])


class TestCommands:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "table2" in output
        assert "figure15" in output

    def test_run_table2(self, capsys):
        assert main(["run", "table2"]) == 0
        output = capsys.readouterr().out
        assert "Table 2" in output
        assert "physical channels" in output

    def test_run_unknown_experiment_fails(self, capsys):
        assert main(["run", "figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_figure_with_smoke_preset(self, capsys):
        assert main(["run", "figure14", "--preset", "smoke"]) == 0
        output = capsys.readouterr().out
        assert "voice_blocking_probability" in output

    def test_solve_small_configuration(self, capsys):
        exit_code = main([
            "solve", "--arrival-rate", "0.4", "--buffer-size", "5",
            "--max-sessions", "3", "--reserved-pdch", "2",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "carried_data_traffic" in output
        assert "packet_loss_probability" in output

    def test_simulate_small_configuration(self, capsys):
        exit_code = main([
            "simulate", "--arrival-rate", "0.4", "--buffer-size", "8",
            "--max-sessions", "3", "--time", "300", "--warmup", "30",
            "--cells", "3", "--batches", "2", "--no-tcp",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Simulation results" in output
        assert "carried_data_traffic" in output
