"""Tests of the gprs-repro command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_command_arguments(self):
        args = build_parser().parse_args(["run", "figure12", "--preset", "smoke"])
        assert args.command == "run"
        assert args.experiment == "figure12"
        assert args.preset == "smoke"

    def test_solve_command_requires_arrival_rate(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve"])

    def test_sweep_command_arguments(self):
        args = build_parser().parse_args(
            ["sweep", "heavy-gprs", "--preset", "smoke", "--jobs", "4", "--no-cache"]
        )
        assert args.command == "sweep"
        assert args.scenario == "heavy-gprs"
        assert args.jobs == 4
        assert args.no_cache is True

    def test_run_command_accepts_runtime_flags(self):
        args = build_parser().parse_args(["run", "figure12", "--jobs", "2", "--no-cache"])
        assert args.jobs == 2
        assert args.no_cache is True

    def test_list_command_kind_filter(self):
        args = build_parser().parse_args(["list", "--kind", "network"])
        assert args.kind == "network"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["list", "--kind", "bogus"])

    def test_network_command_arguments(self):
        args = build_parser().parse_args(
            ["network", "hotspot-cluster", "--preset", "smoke", "--jobs", "3", "--json"]
        )
        assert args.command == "network"
        assert args.scenario == "hotspot-cluster"
        assert args.jobs == 3
        assert args.json is True

    def test_transient_command_arguments(self):
        args = build_parser().parse_args(
            ["transient", "busy-hour-ramp", "--preset", "smoke",
             "--rate", "0.4", "--jobs", "2", "--no-cache", "--cold", "--json"]
        )
        assert args.command == "transient"
        assert args.scenario == "busy-hour-ramp"
        assert args.rate == 0.4
        assert args.jobs == 2
        assert args.no_cache is True
        assert args.cold is True
        assert args.json is True

    def test_list_accepts_transient_kind(self):
        args = build_parser().parse_args(["list", "--kind", "transient"])
        assert args.kind == "transient"


class TestCommands:
    def test_list_prints_all_experiments_and_scenarios(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "table2" in output
        assert "figure15" in output
        assert "heavy-gprs" in output
        assert "degraded-radio" in output

    def test_run_table2(self, capsys):
        assert main(["run", "table2"]) == 0
        output = capsys.readouterr().out
        assert "Table 2" in output
        assert "physical channels" in output

    def test_run_unknown_experiment_fails(self, capsys):
        assert main(["run", "figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_figure_with_smoke_preset(self, capsys):
        assert main(["run", "figure14", "--preset", "smoke"]) == 0
        output = capsys.readouterr().out
        assert "voice_blocking_probability" in output

    def test_sweep_scenario(self, capsys):
        assert main(["sweep", "figure5", "--preset", "smoke", "--no-cache"]) == 0
        output = capsys.readouterr().out
        assert "figure5" in output
        assert "packet_loss_probability" in output

    def test_sweep_parallel_json_output(self, capsys, tmp_path):
        import json

        exit_code = main([
            "sweep", "voice-first", "--preset", "smoke", "--jobs", "2",
            "--cache-dir", str(tmp_path), "--json",
        ])
        assert exit_code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["scenario"]["name"] == "voice-first"
        assert len(data["points"]) == 2
        assert all("voice_blocking_probability" in p["values"] for p in data["points"])

    def test_sweep_unknown_scenario_fails(self, capsys):
        assert main(["sweep", "no-such-scenario", "--no-cache"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_list_kind_network_prints_only_network_scenarios(self, capsys):
        assert main(["list", "--kind", "network"]) == 0
        output = capsys.readouterr().out
        assert "hotspot-cluster" in output
        assert "ring-16" in output
        assert "table2" not in output
        assert "heavy-gprs" not in output

    def test_network_command_per_cell_report(self, capsys):
        assert main(["network", "homogeneous-7", "--preset", "smoke", "--no-cache"]) == 0
        output = capsys.readouterr().out
        assert "homogeneous-7" in output
        assert "cells=7" in output
        assert "outer iterations" in output
        assert "mean" in output

    def test_network_command_json_output(self, capsys, tmp_path):
        exit_code = main([
            "network", "hotspot-cluster", "--preset", "smoke", "--jobs", "2",
            "--cache-dir", str(tmp_path), "--json",
        ])
        assert exit_code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["scenario"]["name"] == "hotspot-cluster"
        assert len(data["points"][0]["cells"]) == 7
        assert data["points"][0]["converged"] is True

    def test_network_command_rejects_single_cell_scenarios(self, capsys):
        assert main(["network", "figure12", "--no-cache"]) == 2
        assert "single-cell" in capsys.readouterr().err

    def test_sweep_rejects_chunk_size_for_network_scenarios(self, capsys):
        exit_code = main([
            "sweep", "homogeneous-7", "--preset", "smoke", "--no-cache",
            "--chunk-size", "4",
        ])
        assert exit_code == 2
        assert "single-cell" in capsys.readouterr().err

    def test_sweep_accepts_network_scenarios(self, capsys):
        assert main(["sweep", "homogeneous-7", "--preset", "smoke", "--no-cache"]) == 0
        output = capsys.readouterr().out
        assert "homogeneous-7" in output
        assert "voice_blocking_probability" in output

    def test_list_kind_transient_prints_only_transient_scenarios(self, capsys):
        assert main(["list", "--kind", "transient"]) == 0
        output = capsys.readouterr().out
        assert "busy-hour-ramp" in output
        assert "flash-crowd" in output
        assert "segments" in output
        assert "table2" not in output
        assert "hotspot-cluster" not in output

    def test_transient_busy_hour_ramp_end_to_end_with_cache(self, capsys, tmp_path):
        """Acceptance: the registered busy-hour-ramp scenario runs through
        CLI + cache and reports a QoS trajectory; the rerun is served from
        the cache with identical output."""
        argv = [
            "transient", "busy-hour-ramp", "--preset", "smoke",
            "--rate", "0.3", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "busy-hour-ramp" in first
        assert "time [s]" in first
        assert "time avg" in first
        assert "0 hit(s), 1 solved" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "1 hit(s), 0 solved" in second
        # Identical trajectory table (header lines differ: cache accounting).
        assert second.splitlines()[4:] == first.splitlines()[4:]

    def test_transient_command_json_output(self, capsys, tmp_path):
        exit_code = main([
            "transient", "flash-crowd", "--preset", "smoke", "--rate", "0.4",
            "--cache-dir", str(tmp_path), "--json",
        ])
        assert exit_code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["scenario"]["name"] == "flash-crowd"
        assert len(data["points"]) == 1
        trajectory = data["points"][0]
        assert len(trajectory["points"]) == len(trajectory["times"])
        assert "time_averages" in trajectory

    def test_transient_command_rejects_stationary_scenarios(self, capsys):
        assert main(["transient", "figure12", "--no-cache"]) == 2
        assert "stationary" in capsys.readouterr().err

    def test_sweep_rejects_chunk_size_for_transient_scenarios(self, capsys):
        exit_code = main([
            "sweep", "flash-crowd", "--preset", "smoke", "--no-cache",
            "--chunk-size", "4",
        ])
        assert exit_code == 2
        assert "single-cell" in capsys.readouterr().err

    def test_sweep_cold_flag_matches_warm_default(self, capsys):
        """--cold (A/B knob) must produce the same report shape and values
        within solver tolerance; at smoke scale the direct solver makes the
        two runs identical."""
        argv = ["sweep", "figure5", "--preset", "smoke", "--no-cache"]
        assert main(argv + ["--cold"]) == 0
        cold = capsys.readouterr().out
        assert main(argv + ["--chunk-size", "2"]) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_run_with_cache_dir_and_jobs(self, capsys, tmp_path):
        argv = [
            "run", "figure14", "--preset", "smoke", "--jobs", "2",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0  # warm-cache rerun
        assert capsys.readouterr().out == first

    def test_solve_small_configuration(self, capsys):
        exit_code = main([
            "solve", "--arrival-rate", "0.4", "--buffer-size", "5",
            "--max-sessions", "3", "--reserved-pdch", "2",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "carried_data_traffic" in output
        assert "packet_loss_probability" in output

    def test_simulate_small_configuration(self, capsys):
        exit_code = main([
            "simulate", "--arrival-rate", "0.4", "--buffer-size", "8",
            "--max-sessions", "3", "--time", "300", "--warmup", "30",
            "--cells", "3", "--batches", "2", "--no-tcp",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Simulation results" in output
        assert "carried_data_traffic" in output
