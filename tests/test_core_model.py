"""End-to-end tests of the GprsMarkovModel facade and its performance measures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.measures import (
    buffer_occupancy_distribution,
    gsm_call_distribution,
    session_count_distribution,
)
from repro.core.model import GprsMarkovModel
from repro.core.parameters import GprsModelParameters
from repro.queueing.erlang import ErlangLossSystem
from repro.traffic.presets import TRAFFIC_MODEL_3


class TestSolvePipeline:
    def test_solution_contains_all_parts(self, small_parameters):
        solution = GprsMarkovModel(small_parameters).solve()
        assert solution.parameters is small_parameters
        assert solution.steady_state.distribution.shape[0] == (
            small_parameters.state_space_size
        )
        assert solution.handover.converged

    def test_stationary_distribution_is_valid(self, small_parameters):
        model = GprsMarkovModel(small_parameters)
        pi = model.stationary_distribution()
        assert pi.sum() == pytest.approx(1.0)
        assert np.all(pi >= 0)

    def test_balance_residual_is_small(self, small_parameters):
        model = GprsMarkovModel(small_parameters)
        pi = model.stationary_distribution()
        residual = np.max(np.abs(pi @ model.generator))
        assert residual < 1e-6

    def test_results_are_cached(self, small_parameters):
        model = GprsMarkovModel(small_parameters)
        first = model.solve()
        second = model.solve()
        assert first.steady_state is second.steady_state

    def test_measures_shortcut(self, small_parameters):
        measures = GprsMarkovModel(small_parameters).measures()
        assert measures.total_call_arrival_rate == pytest.approx(
            small_parameters.total_call_arrival_rate
        )


class TestSolverMethods:
    @pytest.mark.parametrize("method", ["direct", "structured", "power"])
    def test_solvers_agree_on_measures(self, small_parameters, method):
        reference = GprsMarkovModel(small_parameters, solver_method="gth").measures()
        other = GprsMarkovModel(small_parameters, solver_method=method).measures()
        assert other.carried_data_traffic == pytest.approx(
            reference.carried_data_traffic, rel=1e-4
        )
        assert other.packet_loss_probability == pytest.approx(
            reference.packet_loss_probability, abs=1e-4
        )
        assert other.queueing_delay == pytest.approx(reference.queueing_delay, rel=1e-3)

    def test_auto_uses_structured_for_large_chains(self, medium_parameters):
        model = GprsMarkovModel(medium_parameters)
        assert model.number_of_states > GprsMarkovModel._STRUCTURED_THRESHOLD
        solution = model.solve()
        assert solution.steady_state.method == "structured"


class TestMeasureSanity:
    def test_measures_are_in_valid_ranges(self, small_parameters):
        measures = GprsMarkovModel(small_parameters).measures()
        params = small_parameters
        assert 0.0 <= measures.packet_loss_probability <= 1.0
        assert 0.0 <= measures.voice_blocking_probability <= 1.0
        assert 0.0 <= measures.gprs_blocking_probability <= 1.0
        assert 0.0 <= measures.carried_data_traffic <= params.number_of_channels
        assert 0.0 <= measures.carried_voice_traffic <= params.gsm_channels
        assert 0.0 <= measures.average_gprs_sessions <= params.max_gprs_sessions
        assert measures.queueing_delay >= 0.0
        assert measures.mean_queue_length <= params.buffer_size

    def test_throughput_identity(self, small_parameters):
        measures = GprsMarkovModel(small_parameters).measures()
        assert measures.packet_throughput == pytest.approx(
            measures.carried_data_traffic * small_parameters.pdch_service_rate
        )

    def test_throughput_below_offered_rate(self, small_parameters):
        measures = GprsMarkovModel(small_parameters).measures()
        assert measures.packet_throughput <= measures.offered_packet_rate + 1e-9

    def test_loss_probability_consistent_with_flow_balance(self, small_parameters):
        measures = GprsMarkovModel(small_parameters).measures()
        assert measures.packet_loss_probability == pytest.approx(
            1.0 - measures.packet_throughput / measures.offered_packet_rate, abs=1e-9
        )

    def test_queueing_delay_littles_law(self, small_parameters):
        measures = GprsMarkovModel(small_parameters).measures()
        assert measures.queueing_delay == pytest.approx(
            measures.mean_queue_length / measures.packet_throughput
        )

    def test_erlang_measures_match_closed_form(self, small_parameters):
        solution = GprsMarkovModel(small_parameters).solve()
        measures = solution.measures
        gsm_system = ErlangLossSystem(
            arrival_rate=small_parameters.gsm_arrival_rate
            + solution.handover.gsm_handover_arrival_rate,
            service_rate=small_parameters.gsm_completion_rate
            + small_parameters.gsm_handover_departure_rate,
            servers=small_parameters.gsm_channels,
        )
        assert measures.carried_voice_traffic == pytest.approx(gsm_system.carried_traffic())
        assert measures.voice_blocking_probability == pytest.approx(
            gsm_system.blocking_probability()
        )

    def test_as_dict_round_trips_all_fields(self, small_parameters):
        measures = GprsMarkovModel(small_parameters).measures()
        exported = measures.as_dict()
        assert exported["carried_data_traffic"] == measures.carried_data_traffic
        assert len(exported) >= 14


class TestMarginalDistributions:
    def test_marginals_sum_to_one(self, small_parameters):
        model = GprsMarkovModel(small_parameters)
        pi = model.stationary_distribution()
        space = model.state_space
        for marginal in (
            buffer_occupancy_distribution(space, pi),
            session_count_distribution(space, pi),
            gsm_call_distribution(space, pi),
        ):
            assert marginal.sum() == pytest.approx(1.0)
            assert np.all(marginal >= 0)

    def test_gsm_marginal_matches_erlang_loss(self, small_parameters):
        """The number of active GSM calls is an autonomous M/M/c/c queue."""
        model = GprsMarkovModel(small_parameters)
        solution = model.solve()
        marginal = gsm_call_distribution(model.state_space,
                                         solution.steady_state.distribution)
        system = ErlangLossSystem(
            arrival_rate=small_parameters.gsm_arrival_rate
            + solution.handover.gsm_handover_arrival_rate,
            service_rate=small_parameters.gsm_completion_rate
            + small_parameters.gsm_handover_departure_rate,
            servers=small_parameters.gsm_channels,
        )
        assert marginal == pytest.approx(system.state_distribution(), abs=1e-5)

    def test_session_marginal_matches_erlang_loss(self, small_parameters):
        """The number of active GPRS sessions is an autonomous M/M/c/c queue."""
        model = GprsMarkovModel(small_parameters)
        solution = model.solve()
        marginal = session_count_distribution(model.state_space,
                                              solution.steady_state.distribution)
        system = ErlangLossSystem(
            arrival_rate=small_parameters.gprs_arrival_rate
            + solution.handover.gprs_handover_arrival_rate,
            service_rate=small_parameters.gprs_completion_rate
            + small_parameters.gprs_handover_departure_rate,
            servers=small_parameters.max_gprs_sessions,
        )
        assert marginal == pytest.approx(system.state_distribution(), abs=1e-5)


class TestQualitativeBehaviour:
    """Qualitative properties the paper relies on, at small scale."""

    def test_loss_increases_with_load(self):
        def loss_at(rate: float) -> float:
            params = GprsModelParameters.from_traffic_model(
                TRAFFIC_MODEL_3, rate, buffer_size=4, max_gprs_sessions=3
            )
            return GprsMarkovModel(params).measures().packet_loss_probability

        assert loss_at(1.0) > loss_at(0.1)

    def test_reserving_pdchs_reduces_loss_and_delay(self):
        def measures_with_reserved(pdch: int):
            params = GprsModelParameters.from_traffic_model(
                TRAFFIC_MODEL_3, 0.9, buffer_size=4, max_gprs_sessions=3,
                reserved_pdch=pdch,
            )
            return GprsMarkovModel(params).measures()

        one = measures_with_reserved(1)
        four = measures_with_reserved(4)
        assert four.packet_loss_probability <= one.packet_loss_probability + 1e-9
        assert four.queueing_delay <= one.queueing_delay + 1e-9

    def test_no_flow_control_increases_loss(self):
        def loss_with_eta(eta: float) -> float:
            params = GprsModelParameters.from_traffic_model(
                TRAFFIC_MODEL_3, 0.9, buffer_size=5, max_gprs_sessions=3,
                tcp_threshold=eta,
            )
            return GprsMarkovModel(params).measures().packet_loss_probability

        assert loss_with_eta(1.0) > loss_with_eta(0.6)

    def test_voice_blocking_grows_with_reserved_pdchs(self):
        def blocking(pdch: int) -> float:
            params = GprsModelParameters.from_traffic_model(
                TRAFFIC_MODEL_3, 0.9, buffer_size=3, max_gprs_sessions=2,
                reserved_pdch=pdch,
            )
            return GprsMarkovModel(params).measures().voice_blocking_probability

        assert blocking(4) >= blocking(1)

    def test_zero_gprs_traffic_has_no_data_activity(self):
        params = GprsModelParameters.from_traffic_model(
            TRAFFIC_MODEL_3, 0.5, buffer_size=3, max_gprs_sessions=2, gprs_fraction=0.0
        )
        measures = GprsMarkovModel(params).measures()
        assert measures.carried_data_traffic == pytest.approx(0.0, abs=1e-9)
        assert measures.average_gprs_sessions == pytest.approx(0.0)
        assert measures.packet_loss_probability == pytest.approx(0.0)


class TestWarmStartColdRetry:
    """The warm-solve cold-retry seam: a degraded seed may cost time, never
    correctness."""

    def test_structured_warm_failure_retries_cold(self, small_parameters, monkeypatch):
        from repro.markov.solvers import SolverError

        reference = GprsMarkovModel(
            small_parameters, solver_method="structured"
        ).solve()

        original = GprsMarkovModel._solve_structured
        warm_attempts = []

        def _poisoned(self, initial):
            if initial is not None:
                warm_attempts.append(1)
                raise SolverError("warm seed diverged (injected)")
            return original(self, initial)

        monkeypatch.setattr(GprsMarkovModel, "_solve_structured", _poisoned)
        seeded = GprsMarkovModel(
            small_parameters,
            solver_method="structured",
            initial_distribution=np.full(
                reference.steady_state.distribution.shape,
                1.0 / reference.steady_state.distribution.size,
            ),
        )
        result = seeded.solve()
        assert warm_attempts == [1]  # the warm attempt ran and failed
        assert not seeded.warm_start_used  # the cold retry produced the result
        np.testing.assert_array_equal(
            result.steady_state.distribution, reference.steady_state.distribution
        )

    def test_generic_warm_failure_retries_cold(self, small_parameters, monkeypatch):
        import repro.core.model as core_model
        from repro.markov.solvers import SolverError

        reference = GprsMarkovModel(small_parameters, solver_method="power").solve()

        original = core_model.solve_steady_state
        calls = []

        def _poisoned(generator, *, method, tol, initial=None):
            calls.append(initial is not None)
            if initial is not None:
                raise SolverError("warm seed diverged (injected)")
            return original(generator, method=method, tol=tol, initial=initial)

        monkeypatch.setattr(core_model, "solve_steady_state", _poisoned)
        seeded = GprsMarkovModel(
            small_parameters,
            solver_method="power",
            initial_distribution=np.full(
                reference.steady_state.distribution.shape,
                1.0 / reference.steady_state.distribution.size,
            ),
        )
        result = seeded.solve()
        assert calls == [True, False]  # warm attempt, then the cold retry
        assert not seeded.warm_start_used
        np.testing.assert_array_equal(
            result.steady_state.distribution, reference.steady_state.distribution
        )
