"""Tests of the RLC selective-repeat ARQ analysis."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.radio.arq import (
    analyze_arq,
    effective_pdch_rate_kbit_s,
    effective_service_rate,
    expected_packet_transfer_time,
    expected_transmissions_per_block,
    mean_transmissions_with_bursts,
    residual_block_loss_probability,
    transfer_time_percentile,
)
from repro.simulator.radio import transmission_time
from repro.traffic.units import CODING_SCHEME_RATES_KBIT_S, pdch_service_rate


class TestExpectedTransmissions:
    def test_error_free_link_needs_one_transmission(self):
        assert expected_transmissions_per_block(0.0) == pytest.approx(1.0)

    def test_unbounded_arq_geometric_mean(self):
        assert expected_transmissions_per_block(0.5) == pytest.approx(2.0)
        assert expected_transmissions_per_block(0.9) == pytest.approx(10.0)

    def test_bounded_arq_never_exceeds_the_limit(self):
        for bler in (0.1, 0.5, 0.9):
            for limit in (1, 2, 5):
                assert expected_transmissions_per_block(bler, limit) <= limit

    def test_bounded_arq_approaches_unbounded_for_large_limits(self):
        unbounded = expected_transmissions_per_block(0.3)
        bounded = expected_transmissions_per_block(0.3, max_transmissions=100)
        assert bounded == pytest.approx(unbounded, rel=1e-9)

    def test_single_transmission_limit(self):
        assert expected_transmissions_per_block(0.4, max_transmissions=1) == pytest.approx(1.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            expected_transmissions_per_block(1.0)
        with pytest.raises(ValueError):
            expected_transmissions_per_block(-0.1)
        with pytest.raises(ValueError):
            expected_transmissions_per_block(0.1, max_transmissions=0)


class TestResidualLoss:
    def test_residual_loss_is_bler_to_the_power_of_the_limit(self):
        assert residual_block_loss_probability(0.1, 3) == pytest.approx(1e-3)

    def test_error_free_link_has_no_residual_loss(self):
        assert residual_block_loss_probability(0.0, 1) == 0.0

    def test_more_retransmissions_reduce_residual_loss(self):
        losses = [residual_block_loss_probability(0.2, limit) for limit in range(1, 8)]
        assert losses == sorted(losses, reverse=True)

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            residual_block_loss_probability(0.2, 0)


class TestEffectiveRates:
    def test_error_free_goodput_equals_nominal_rate(self):
        for scheme, nominal in CODING_SCHEME_RATES_KBIT_S.items():
            assert effective_pdch_rate_kbit_s(scheme, 0.0) == pytest.approx(nominal)

    def test_goodput_scales_with_one_minus_bler(self):
        assert effective_pdch_rate_kbit_s("CS-2", 0.25) == pytest.approx(13.4 * 0.75)

    def test_effective_service_rate_matches_error_free_helper(self):
        assert effective_service_rate("CS-2", 0.0) == pytest.approx(pdch_service_rate("CS-2"))

    def test_effective_service_rate_decreases_with_bler(self):
        rates = [effective_service_rate("CS-2", bler) for bler in (0.0, 0.1, 0.3, 0.6)]
        assert rates == sorted(rates, reverse=True)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            effective_pdch_rate_kbit_s("CS-7", 0.1)


class TestPacketTransferTime:
    def test_error_free_time_matches_radio_arithmetic(self):
        assert expected_packet_transfer_time(480, 4, "CS-2", 0.0) == pytest.approx(
            transmission_time(480, 4, "CS-2")
        )

    def test_bler_stretches_the_transfer(self):
        clean = expected_packet_transfer_time(480, 2, "CS-2", 0.0)
        lossy = expected_packet_transfer_time(480, 2, "CS-2", 0.5)
        assert lossy == pytest.approx(2.0 * clean)

    def test_percentile_at_least_the_error_free_time(self):
        base = transmission_time(480, 1, "CS-2")
        assert transfer_time_percentile(0.95, 480, 1, "CS-2", 0.0) == pytest.approx(base)
        assert transfer_time_percentile(0.95, 480, 1, "CS-2", 0.2) >= base

    def test_percentile_grows_with_the_target(self):
        p50 = transfer_time_percentile(0.5, 480, 1, "CS-2", 0.3)
        p99 = transfer_time_percentile(0.99, 480, 1, "CS-2", 0.3)
        assert p99 >= p50

    def test_invalid_percentile_rejected(self):
        with pytest.raises(ValueError):
            transfer_time_percentile(0.0)
        with pytest.raises(ValueError):
            transfer_time_percentile(1.0)


class TestAnalyzeArq:
    def test_requires_exactly_one_link_quality_input(self):
        with pytest.raises(ValueError):
            analyze_arq("CS-2")
        with pytest.raises(ValueError):
            analyze_arq("CS-2", ci_db=9.0, bler=0.1)

    def test_summary_is_consistent(self):
        report = analyze_arq("CS-2", bler=0.2)
        assert report.expected_transmissions == pytest.approx(1.25)
        assert report.effective_rate_kbit_s == pytest.approx(13.4 * 0.8)
        assert report.residual_loss_probability == 0.0
        assert report.blocks_per_packet == 15
        assert report.expected_packet_time_one_pdch_s > 0

    def test_ci_is_mapped_through_the_bler_curve(self):
        good_link = analyze_arq("CS-2", ci_db=25.0)
        poor_link = analyze_arq("CS-2", ci_db=3.0)
        assert good_link.block_error_rate < poor_link.block_error_rate
        assert good_link.effective_rate_kbit_s > poor_link.effective_rate_kbit_s

    def test_bounded_arq_reports_residual_loss(self):
        report = analyze_arq("CS-2", bler=0.3, max_transmissions=4)
        assert report.residual_loss_probability == pytest.approx(0.3**4)


class TestBurstAwareMean:
    def test_matches_stationary_mixture(self):
        value = mean_transmissions_with_bursts(0.02, 0.5, probability_bad=0.2)
        stationary = 0.8 * 0.02 + 0.2 * 0.5
        assert value == pytest.approx(1.0 / (1.0 - stationary))

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            mean_transmissions_with_bursts(0.02, 0.5, probability_bad=1.5)
        with pytest.raises(ValueError):
            mean_transmissions_with_bursts(0.02, 1.0, probability_bad=1.0)


class TestArqProperties:
    @given(bler=st.floats(min_value=0.0, max_value=0.95))
    def test_goodput_never_exceeds_nominal_rate(self, bler):
        assert effective_pdch_rate_kbit_s("CS-3", bler) <= CODING_SCHEME_RATES_KBIT_S["CS-3"] + 1e-12

    @given(
        bler=st.floats(min_value=0.0, max_value=0.95),
        limit=st.integers(min_value=1, max_value=20),
    )
    def test_bounded_mean_is_below_unbounded_mean(self, bler, limit):
        assert (
            expected_transmissions_per_block(bler, limit)
            <= expected_transmissions_per_block(bler) + 1e-12
        )

    @given(bler=st.floats(min_value=0.01, max_value=0.9))
    def test_expected_transmissions_at_least_one(self, bler):
        assert expected_transmissions_per_block(bler) >= 1.0
