"""Shared fixtures for the test suite.

The fixtures provide small model configurations whose Markov chains have a few
hundred to a few thousand states, so that every exact solver finishes in well
under a second and the full test suite stays fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parameters import GprsModelParameters
from repro.traffic.presets import TRAFFIC_MODEL_1, TRAFFIC_MODEL_3


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the default result cache at a per-test directory.

    CLI commands cache under ``~/.cache/gprs-repro`` by default; tests must
    neither pollute the real cache nor be served stale entries from it.
    """
    monkeypatch.setenv("GPRS_REPRO_CACHE_DIR", str(tmp_path / "result-cache"))


@pytest.fixture
def small_parameters() -> GprsModelParameters:
    """A small but non-trivial configuration (about 1000 states)."""
    return GprsModelParameters.from_traffic_model(
        TRAFFIC_MODEL_3,
        total_call_arrival_rate=0.5,
        buffer_size=4,
        max_gprs_sessions=3,
    )


@pytest.fixture
def medium_parameters() -> GprsModelParameters:
    """A medium configuration (a few thousand states) for solver comparisons."""
    return GprsModelParameters.from_traffic_model(
        TRAFFIC_MODEL_3,
        total_call_arrival_rate=0.6,
        buffer_size=10,
        max_gprs_sessions=5,
    )


@pytest.fixture
def light_traffic_parameters() -> GprsModelParameters:
    """A low-load configuration using traffic model 1 (8 kbit/s browsing)."""
    return GprsModelParameters.from_traffic_model(
        TRAFFIC_MODEL_1,
        total_call_arrival_rate=0.2,
        buffer_size=5,
        max_gprs_sessions=4,
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded random generator for statistical tests."""
    return np.random.default_rng(12345)
