"""Tests of sweep-aware incremental solving: warm starts and chunked execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.handover import balance_handover_rates
from repro.core.model import GprsMarkovModel
from repro.core.parameters import GprsModelParameters
from repro.experiments.sweep import sweep_arrival_rates
from repro.runtime.executor import _chunked, execution_options, current_options
from repro.traffic.presets import TRAFFIC_MODEL_3

RATES = (0.2, 0.4, 0.6, 0.8)


def _params(rate: float = 0.3) -> GprsModelParameters:
    return GprsModelParameters.from_traffic_model(
        TRAFFIC_MODEL_3, rate, buffer_size=6, max_gprs_sessions=3
    )


class TestWarmAgainstCold:
    def test_cold_sweep_equals_independent_solves_bitwise(self):
        """warm=False is exactly the legacy per-point pipeline."""
        base = _params()
        swept = sweep_arrival_rates(base, RATES, warm=False)
        for rate, measures in zip(RATES, swept.measures):
            single = GprsMarkovModel(
                base.with_arrival_rate(rate), solver_tol=1e-9
            ).solve()
            assert measures == single.measures

    def test_warm_matches_cold_within_solver_tolerance(self):
        """Fully converged warm and cold sweeps agree to ~1e-8 on every measure."""
        base = _params()
        cold = sweep_arrival_rates(
            base, RATES, solver="structured", solver_tol=1e-14, warm=False
        )
        warm = sweep_arrival_rates(
            base, RATES, solver="structured", solver_tol=1e-14, warm=True
        )
        for cold_measures, warm_measures in zip(cold.measures, warm.measures):
            for key, value in cold_measures.as_dict().items():
                assert warm_measures.as_dict()[key] == pytest.approx(value, abs=1e-8)

    def test_first_point_of_a_chunk_is_bitwise_cold(self):
        """Templates are bitwise-faithful, so an unseeded point matches exactly."""
        base = _params()
        cold = sweep_arrival_rates(base, (0.5,), warm=False)
        warm = sweep_arrival_rates(base, (0.5,), warm=True)
        assert cold.measures[0] == warm.measures[0]


class TestWarmStartedModel:
    def test_warm_start_reduces_solver_iterations(self):
        base = _params()
        previous = GprsMarkovModel(
            base.with_arrival_rate(0.5), solver_method="structured"
        ).solve()
        cold = GprsMarkovModel(
            base.with_arrival_rate(0.55), solver_method="structured"
        ).solve()
        warm = GprsMarkovModel(
            base.with_arrival_rate(0.55),
            solver_method="structured",
            initial_distribution=previous.steady_state.distribution,
            initial_handover_rates=previous.handover,
        ).solve()
        assert warm.steady_state.iterations < cold.steady_state.iterations
        for key, value in cold.measures.as_dict().items():
            assert warm.measures.as_dict()[key] == pytest.approx(value, abs=1e-6)

    def test_bad_warm_start_falls_back_to_cold_seed(self):
        """A non-normalisable guess must not corrupt the solution."""
        base = _params(0.5)
        cold = GprsMarkovModel(base, solver_method="structured").solve()
        size = base.state_space_size
        for guess in (np.zeros(size), np.full(size, np.nan)):
            warm = GprsMarkovModel(
                base, solver_method="structured", initial_distribution=guess
            ).solve()
            assert warm.measures.packet_loss_probability == pytest.approx(
                cold.measures.packet_loss_probability, abs=1e-7
            )

    def test_wrong_length_warm_start_raises(self):
        with pytest.raises(ValueError):
            GprsMarkovModel(
                _params(0.5),
                solver_method="structured",
                initial_distribution=np.ones(7),
            ).solve()

    def test_handover_seed_does_not_change_fixed_point(self):
        base = _params(0.7)
        reference = balance_handover_rates(base)
        seeded = balance_handover_rates(
            base,
            initial_gsm_handover_rate=reference.gsm_handover_arrival_rate,
            initial_gprs_handover_rate=reference.gprs_handover_arrival_rate,
        )
        assert seeded.converged
        assert seeded.gsm_handover_arrival_rate == pytest.approx(
            reference.gsm_handover_arrival_rate, abs=1e-9
        )
        assert seeded.gprs_handover_arrival_rate == pytest.approx(
            reference.gprs_handover_arrival_rate, abs=1e-9
        )
        assert seeded.gsm_iterations <= reference.gsm_iterations


class TestChunkedExecution:
    def test_chunk_grid_is_independent_of_hits(self):
        assert _chunked([0, 1, 2, 3, 4], 5, 2) == [[0, 1], [2, 3], [4]]
        # Cached points leave gaps but never shift chunk boundaries.
        assert _chunked([0, 3, 4], 5, 2) == [[0], [3], [4]]
        assert _chunked([2], 5, 8) == [[2]]

    def test_parallel_chunks_bitwise_identical_to_serial(self):
        """Warm-started chunks must not break the jobs=N == serial guarantee.

        The structured solver is forced so that the warm starts actually
        change the iteration (the direct solver would ignore them).
        """
        base = _params()
        serial = sweep_arrival_rates(
            base, RATES, solver="structured", warm=True, chunk_size=2
        )
        parallel = sweep_arrival_rates(
            base, RATES, solver="structured", warm=True, chunk_size=2, jobs=2
        )
        assert serial.measures == parallel.measures

    def test_chunk_boundary_resets_continuation(self):
        """chunk_size=1 warm degenerates to per-point cold solves."""
        base = _params()
        cold = sweep_arrival_rates(base, RATES, warm=False)
        chunked = sweep_arrival_rates(base, RATES, warm=True, chunk_size=1)
        assert cold.measures == chunked.measures

    def test_ambient_warm_and_chunk_options(self):
        with execution_options(warm=False, chunk_size=3):
            options = current_options()
            assert options.warm is False
            assert options.chunk_size == 3
        assert current_options().warm is True
