"""Tests of sweep-aware incremental solving: warm starts and chunked execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.handover import balance_handover_rates
from repro.core.measures import compute_measures
from repro.core.model import GprsMarkovModel
from repro.core.parameters import GprsModelParameters
from repro.core.state_space import GprsStateSpace
from repro.core.structured_solver import StructuredSolveContext, solve_structured
from repro.core.template import GeneratorTemplate
from repro.experiments.scale import ExperimentScale
from repro.experiments.sweep import sweep_arrival_rates
from repro.runtime.executor import _chunked, execution_options, current_options
from repro.traffic.presets import TRAFFIC_MODEL_3

RATES = (0.2, 0.4, 0.6, 0.8)


def _params(rate: float = 0.3) -> GprsModelParameters:
    return GprsModelParameters.from_traffic_model(
        TRAFFIC_MODEL_3, rate, buffer_size=6, max_gprs_sessions=3
    )


class TestWarmAgainstCold:
    def test_cold_sweep_equals_independent_solves_bitwise(self):
        """warm=False is exactly the legacy per-point pipeline."""
        base = _params()
        swept = sweep_arrival_rates(base, RATES, warm=False)
        for rate, measures in zip(RATES, swept.measures):
            single = GprsMarkovModel(
                base.with_arrival_rate(rate), solver_tol=1e-9
            ).solve()
            assert measures == single.measures

    def test_warm_matches_cold_within_solver_tolerance(self):
        """Fully converged warm and cold sweeps agree to ~1e-8 on every measure."""
        base = _params()
        cold = sweep_arrival_rates(
            base, RATES, solver="structured", solver_tol=1e-14, warm=False
        )
        warm = sweep_arrival_rates(
            base, RATES, solver="structured", solver_tol=1e-14, warm=True
        )
        for cold_measures, warm_measures in zip(cold.measures, warm.measures):
            for key, value in cold_measures.as_dict().items():
                assert warm_measures.as_dict()[key] == pytest.approx(value, abs=1e-8)

    def test_first_point_of_a_chunk_is_bitwise_cold(self):
        """Templates are bitwise-faithful, so an unseeded point matches exactly."""
        base = _params()
        cold = sweep_arrival_rates(base, (0.5,), warm=False)
        warm = sweep_arrival_rates(base, (0.5,), warm=True)
        assert cold.measures[0] == warm.measures[0]


class TestWarmStartedModel:
    def test_warm_start_reduces_solver_iterations(self):
        base = _params()
        previous = GprsMarkovModel(
            base.with_arrival_rate(0.5), solver_method="structured"
        ).solve()
        cold = GprsMarkovModel(
            base.with_arrival_rate(0.55), solver_method="structured"
        ).solve()
        warm = GprsMarkovModel(
            base.with_arrival_rate(0.55),
            solver_method="structured",
            initial_distribution=previous.steady_state.distribution,
            initial_handover_rates=previous.handover,
        ).solve()
        assert warm.steady_state.iterations < cold.steady_state.iterations
        for key, value in cold.measures.as_dict().items():
            assert warm.measures.as_dict()[key] == pytest.approx(value, abs=1e-6)

    def test_bad_warm_start_falls_back_to_cold_seed(self):
        """A non-normalisable guess must not corrupt the solution."""
        base = _params(0.5)
        cold = GprsMarkovModel(base, solver_method="structured").solve()
        size = base.state_space_size
        for guess in (np.zeros(size), np.full(size, np.nan)):
            warm = GprsMarkovModel(
                base, solver_method="structured", initial_distribution=guess
            ).solve()
            assert warm.measures.packet_loss_probability == pytest.approx(
                cold.measures.packet_loss_probability, abs=1e-7
            )

    def test_wrong_length_warm_start_raises(self):
        with pytest.raises(ValueError):
            GprsMarkovModel(
                _params(0.5),
                solver_method="structured",
                initial_distribution=np.ones(7),
            ).solve()

    def test_handover_seed_does_not_change_fixed_point(self):
        base = _params(0.7)
        reference = balance_handover_rates(base)
        seeded = balance_handover_rates(
            base,
            initial_gsm_handover_rate=reference.gsm_handover_arrival_rate,
            initial_gprs_handover_rate=reference.gprs_handover_arrival_rate,
        )
        assert seeded.converged
        assert seeded.gsm_handover_arrival_rate == pytest.approx(
            reference.gsm_handover_arrival_rate, abs=1e-9
        )
        assert seeded.gprs_handover_arrival_rate == pytest.approx(
            reference.gprs_handover_arrival_rate, abs=1e-9
        )
        assert seeded.gsm_iterations <= reference.gsm_iterations


class TestChunkedExecution:
    def test_chunk_grid_is_independent_of_hits(self):
        assert _chunked([0, 1, 2, 3, 4], 5, 2) == [[0, 1], [2, 3], [4]]
        # Cached points leave gaps but never shift chunk boundaries.
        assert _chunked([0, 3, 4], 5, 2) == [[0], [3], [4]]
        assert _chunked([2], 5, 8) == [[2]]

    def test_parallel_chunks_bitwise_identical_to_serial(self):
        """Warm-started chunks must not break the jobs=N == serial guarantee.

        The structured solver is forced so that the warm starts actually
        change the iteration (the direct solver would ignore them).
        """
        base = _params()
        serial = sweep_arrival_rates(
            base, RATES, solver="structured", warm=True, chunk_size=2
        )
        parallel = sweep_arrival_rates(
            base, RATES, solver="structured", warm=True, chunk_size=2, jobs=2
        )
        assert serial.measures == parallel.measures

    def test_chunk_boundary_resets_continuation(self):
        """chunk_size=1 warm degenerates to per-point cold solves."""
        base = _params()
        cold = sweep_arrival_rates(base, RATES, warm=False)
        chunked = sweep_arrival_rates(base, RATES, warm=True, chunk_size=1)
        assert cold.measures == chunked.measures

    def test_ambient_warm_and_chunk_options(self):
        with execution_options(warm=False, chunk_size=3, pipelined=True):
            options = current_options()
            assert options.warm is False
            assert options.chunk_size == 3
            assert options.pipelined is True
        assert current_options().warm is True
        assert current_options().pipelined is False


def _structured_setup(preset_buffer: int | None, sessions: int, rate: float):
    """Build (params, space, balance, generator, context) for one solve."""
    overrides = {"max_gprs_sessions": sessions}
    if preset_buffer is not None:
        overrides["buffer_size"] = preset_buffer
    params = GprsModelParameters.from_traffic_model(TRAFFIC_MODEL_3, rate, **overrides)
    space = GprsStateSpace(
        gsm_channels=params.gsm_channels,
        buffer_size=params.buffer_size,
        max_sessions=params.max_gprs_sessions,
    )
    balance = balance_handover_rates(params)
    template = GeneratorTemplate.build(params, space)
    generator = template.generator(
        params,
        gsm_handover_arrival_rate=balance.gsm_handover_arrival_rate,
        gprs_handover_arrival_rate=balance.gprs_handover_arrival_rate,
    )
    context = StructuredSolveContext.build(params, space)
    return params, space, balance, generator, context


def _solve_pair(preset_buffer, sessions, rate, *, tol, initial=None):
    """Solve one configuration with the correction off and on."""
    params, space, balance, generator, context = _structured_setup(
        preset_buffer, sessions, rate
    )
    results = {}
    for coarse in (False, True):
        results[coarse] = solve_structured(
            params,
            space,
            generator,
            gsm_handover_arrival_rate=balance.gsm_handover_arrival_rate,
            gprs_handover_arrival_rate=balance.gprs_handover_arrival_rate,
            tol=tol,
            context=context,
            coarse_correction=coarse,
            initial=initial,
        )
    return params, space, balance, results[False], results[True]


class TestCoarseCorrection:
    """The two-level repetition-reuse pass of the structured solver."""

    @pytest.mark.parametrize("preset", ["smoke", "default"])
    def test_shallow_presets_are_bitwise_identical_on_and_off(self, preset):
        """Below the engagement depth the correction never perturbs a solve."""
        scale = ExperimentScale.from_name(preset)
        buffer_size = scale.effective_buffer_size(100)
        sessions = scale.effective_max_sessions(10)
        plain, corrected = _solve_pair(buffer_size, sessions, 0.5, tol=1e-9)[3:]
        assert corrected.coarse_corrections == 0
        assert np.array_equal(plain.distribution, corrected.distribution)
        assert plain.iterations == corrected.iterations

    def test_paper_buffer_depth_cuts_sweeps_and_agrees_to_1e8(self):
        """At the paper's K=100 the corrected solver needs far fewer sweeps.

        The session cap is held at the default preset's 10 so the test stays
        a couple of seconds; the buffer depth is the axis the correction
        targets (EXPERIMENTS.md convention: paper buffer, capped sessions).
        """
        params, space, balance, plain, corrected = _solve_pair(
            100, 10, 0.5, tol=1e-9
        )
        assert corrected.coarse_corrections >= 1
        assert corrected.iterations * 3 <= plain.iterations * 2  # >= 1.5x fewer
        # Measure agreement is asserted on fully converged solves (both paths
        # at the tolerance floor), the same convention as the warm-vs-cold
        # benchmarks: at working tolerance the two stopping points differ
        # within solver tolerance, not below 1e-8.  The bound is 1e-8
        # precision per measure -- relative for the large-magnitude ones
        # (mean queue length at K=100 amplifies distribution rounding by
        # ~K x states, so an absolute 1e-8 would demand sub-ulp vectors).
        params, space, balance, deep_plain, deep_corrected = _solve_pair(
            100, 10, 0.5, tol=1e-14
        )
        plain_measures = compute_measures(
            params, space, deep_plain.distribution, balance
        ).as_dict()
        corrected_measures = compute_measures(
            params, space, deep_corrected.distribution, balance
        ).as_dict()
        for key, value in plain_measures.items():
            assert corrected_measures[key] == pytest.approx(
                value, rel=1e-8, abs=1e-8
            )

    def test_deep_tolerance_agreement_across_presets(self):
        """Converged on/off solves agree below 1e-8 at every tested depth."""
        for buffer_size, sessions in ((8, 4), (20, 10), (100, 8)):
            plain, corrected = _solve_pair(buffer_size, sessions, 0.4, tol=1e-12)[3:]
            assert float(
                np.max(np.abs(plain.distribution - corrected.distribution))
            ) <= 1e-8

    def test_warm_stack_recycled_directions_keep_agreement(self):
        """A warm-started corrected solve stays within 1e-8 of the plain one.

        Both arms converge to the tolerance floor (stopping-point noise at
        working tolerance sits above 1e-8, exactly as in the warm-vs-cold
        benchmarks); the warm stack feeds the recycled subspace.
        """
        stack = []
        for rate in (0.45, 0.5):
            _, _, _, plain, _ = _solve_pair(100, 8, rate, tol=1e-10)
            stack.append(plain.distribution)
        params, space, balance, plain, corrected = _solve_pair(
            100, 8, 0.55, tol=1e-13, initial=np.stack(stack, axis=0)
        )
        assert float(
            np.max(np.abs(plain.distribution - corrected.distribution))
        ) <= 1e-8
