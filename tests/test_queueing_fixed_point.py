"""Tests of the generic fixed-point iteration and Little's law helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.queueing.fixed_point import fixed_point_iteration
from repro.queueing.littles_law import (
    mean_queue_length_from_delay,
    mean_waiting_time,
    utilization,
)


class TestFixedPointIteration:
    def test_scalar_contraction_converges(self):
        result = fixed_point_iteration(lambda x: 0.5 * x + 1.0, initial=0.0)
        assert result.converged
        assert result.value[0] == pytest.approx(2.0, abs=1e-8)

    def test_vector_mapping_converges(self):
        matrix = np.array([[0.2, 0.1], [0.0, 0.3]])
        offset = np.array([1.0, 2.0])
        result = fixed_point_iteration(lambda x: matrix @ x + offset, initial=[0.0, 0.0])
        expected = np.linalg.solve(np.eye(2) - matrix, offset)
        assert result.converged
        assert result.value == pytest.approx(expected, abs=1e-8)

    def test_damping_stabilises_oscillation(self):
        """x -> 2 - x oscillates without damping but converges with it."""
        undamped = fixed_point_iteration(lambda x: 2.0 - x, initial=0.0, max_iterations=50)
        assert not undamped.converged
        damped = fixed_point_iteration(
            lambda x: 2.0 - x, initial=0.0, damping=0.5, max_iterations=50
        )
        assert damped.converged
        assert damped.value[0] == pytest.approx(1.0, abs=1e-8)

    def test_history_recording(self):
        result = fixed_point_iteration(
            lambda x: 0.5 * x, initial=8.0, record_history=True, tol=1e-12
        )
        assert len(result.history) == result.iterations + 1
        assert result.history[0][0] == pytest.approx(8.0)
        # History must be strictly decreasing for this contraction.
        values = [entry[0] for entry in result.history]
        assert all(later <= earlier for earlier, later in zip(values, values[1:]))

    def test_history_not_recorded_by_default(self):
        result = fixed_point_iteration(lambda x: 0.5 * x, initial=1.0)
        assert result.history == ()

    def test_iteration_budget_respected(self):
        result = fixed_point_iteration(
            lambda x: 0.999 * x + 1.0, initial=0.0, max_iterations=5, tol=1e-14
        )
        assert result.iterations == 5
        assert not result.converged

    def test_shape_change_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            fixed_point_iteration(lambda x: np.append(x, 1.0), initial=[1.0])

    def test_non_finite_mapping_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            fixed_point_iteration(lambda x: x * np.inf, initial=[1.0])

    def test_invalid_damping_rejected(self):
        with pytest.raises(ValueError):
            fixed_point_iteration(lambda x: x, initial=1.0, damping=0.0)
        with pytest.raises(ValueError):
            fixed_point_iteration(lambda x: x, initial=1.0, damping=1.5)

    def test_invalid_iteration_budget_rejected(self):
        with pytest.raises(ValueError):
            fixed_point_iteration(lambda x: x, initial=1.0, max_iterations=0)


class TestLittlesLaw:
    def test_waiting_time_basic(self):
        assert mean_waiting_time(10.0, 2.0) == pytest.approx(5.0)

    def test_zero_throughput_gives_zero_delay(self):
        assert mean_waiting_time(3.0, 0.0) == 0.0

    def test_inverse_relation(self):
        delay = mean_waiting_time(12.0, 3.0)
        assert mean_queue_length_from_delay(delay, 3.0) == pytest.approx(12.0)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            mean_waiting_time(-1.0, 1.0)
        with pytest.raises(ValueError):
            mean_waiting_time(1.0, -1.0)
        with pytest.raises(ValueError):
            mean_queue_length_from_delay(-1.0, 1.0)

    def test_utilization_clipped_to_one(self):
        assert utilization(100.0, 2, 1.0) == 1.0
        assert utilization(1.0, 2, 1.0) == pytest.approx(0.5)

    def test_utilization_invalid_inputs(self):
        with pytest.raises(ValueError):
            utilization(1.0, 0, 1.0)
        with pytest.raises(ValueError):
            utilization(-1.0, 1, 1.0)
