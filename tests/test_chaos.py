"""Chaos tests: injected faults must never change the numbers.

Each test runs one execution seam (chunked sweep, pipelined network solve,
transient trajectories) twice -- fault-free and under an injected fault plan
-- and asserts the recovered run is equal to the clean one.  Worker-kill
faults are bitwise-equal by construction (the retried payload is pure);
timeout faults only stretch wall time.  The abort-and-resume tests assert
the checkpoint journal makes a restarted sweep re-solve *only* the
unfinished points, counted in actual solver calls.
"""

from __future__ import annotations

import pytest

from repro.core.model import GprsMarkovModel
from repro.experiments.scale import ExperimentScale
from repro.network.sweep import run_network_sweep
from repro.runtime import (
    ResultCache,
    RetryPolicy,
    SweepCheckpoint,
    SweepFailureError,
    inject_faults,
    run_sweep,
    scenario,
)
from repro.transient.sweep import run_transient_sweep

SMOKE = ExperimentScale.smoke()

#: Retry without backoff sleeps: chaos tests exercise recovery, not patience.
FAST = RetryPolicy(max_attempts=3, backoff_base_s=0.0)


def _sweep_spec():
    return scenario("heavy-gprs").replace(arrival_rates=(0.2, 0.4, 0.6, 0.8))


class TestSweepChaos:
    def test_worker_kill_recovers_bitwise_equal(self):
        spec = _sweep_spec()
        clean = run_sweep(spec, SMOKE, jobs=2, cache=None, chunk_size=1, retry=FAST)
        with inject_faults("chunk@1=kill"):
            chaos = run_sweep(
                spec, SMOKE, jobs=2, cache=None, chunk_size=1, retry=FAST
            )
        assert chaos.failures == ()
        for clean_point, chaos_point in zip(clean.points, chaos.points):
            assert clean_point.values == chaos_point.values

    def test_serial_raise_recovers_bitwise_equal(self):
        spec = _sweep_spec()
        clean = run_sweep(spec, SMOKE, jobs=1, cache=None, chunk_size=1)
        with inject_faults("chunk@2=raise*2"):
            chaos = run_sweep(spec, SMOKE, jobs=1, cache=None, chunk_size=1, retry=FAST)
        assert chaos.failures == ()
        for clean_point, chaos_point in zip(clean.points, chaos.points):
            assert clean_point.values == chaos_point.values

    def test_exhausted_chunk_fails_only_its_points(self):
        spec = _sweep_spec()
        with inject_faults("chunk@1=raise*9"):
            chaos = run_sweep(spec, SMOKE, jobs=1, cache=None, chunk_size=1, retry=FAST)
        assert len(chaos.failures) == 1
        assert chaos.failures[0].points == (1,)
        assert [point.failed for point in chaos.points] == [
            False, True, False, False,
        ]

    def test_corrupt_cache_entry_is_requarried_to_equal_results(self, tmp_path):
        spec = _sweep_spec()
        cache = ResultCache(tmp_path)
        with inject_faults("cache@0=corrupt"):
            first = run_sweep(spec, SMOKE, jobs=1, cache=cache, chunk_size=1)
        # The corrupted entry quarantines on read; its point re-solves.
        second = run_sweep(spec, SMOKE, jobs=1, cache=cache, chunk_size=1)
        assert cache.stats.corrupt == 1
        assert second.failures == ()
        for first_point, second_point in zip(first.points, second.points):
            assert first_point.values == second_point.values


class TestSweepCheckpointResume:
    def test_aborted_sweep_resumes_solving_only_the_remainder(
        self, tmp_path, monkeypatch
    ):
        spec = _sweep_spec()
        cache = ResultCache(tmp_path / "cache")
        ckpt_path = tmp_path / "ckpt.jsonl"

        ckpt = SweepCheckpoint.load(ckpt_path)
        with inject_faults("chunk@2=raise*9"):
            with pytest.raises(SweepFailureError):
                run_sweep(
                    spec, SMOKE, jobs=1, cache=cache, chunk_size=1,
                    checkpoint=ckpt, strict=True, retry=FAST,
                )
        # Chunks 0 and 1 completed before the abort and were journaled.
        assert len(ckpt) == 2

        solves = []
        original = GprsMarkovModel.solve

        def _counting(self):
            solves.append(1)
            return original(self)

        monkeypatch.setattr(GprsMarkovModel, "solve", _counting)
        resumed = run_sweep(
            spec, SMOKE, jobs=1, cache=cache, chunk_size=1,
            checkpoint=SweepCheckpoint.load(ckpt_path), strict=True,
        )
        assert len(solves) == 2  # only the 2 unfinished points re-solve
        assert resumed.failures == ()
        assert [point.from_cache for point in resumed.points] == [
            True, True, False, False,
        ]

    def test_fully_checkpointed_sweep_is_pure_resume(self, tmp_path, monkeypatch):
        spec = _sweep_spec()
        cache = ResultCache(tmp_path / "cache")
        ckpt_path = tmp_path / "ckpt.jsonl"
        run_sweep(
            spec, SMOKE, jobs=1, cache=cache, chunk_size=1,
            checkpoint=SweepCheckpoint.load(ckpt_path),
        )

        def _forbidden(self):  # pragma: no cover - must never run
            raise AssertionError("solver called despite full checkpoint")

        monkeypatch.setattr(GprsMarkovModel, "solve", _forbidden)
        resumed = run_sweep(
            spec, SMOKE, jobs=1, cache=cache, chunk_size=1,
            checkpoint=SweepCheckpoint.load(ckpt_path),
        )
        assert all(point.from_cache for point in resumed.points)


class TestNetworkChaos:
    def test_pipelined_cell_timeout_recovers_equal(self):
        spec = scenario("heterogeneous-radio")
        clean = run_network_sweep(spec, scale=SMOKE, jobs=2, cache=None,
                                  pipelined=True)
        with inject_faults("cell@2=timeout:3"):
            chaos = run_network_sweep(
                spec, scale=SMOKE, jobs=2, cache=None, pipelined=True,
                task_timeout=1.0, retry=FAST,
            )
        assert chaos.failures == ()
        for clean_point, chaos_point in zip(clean.points, chaos.points):
            assert clean_point.payload == chaos_point.payload

    def test_pipelined_cell_kill_recovers_equal(self):
        spec = scenario("heterogeneous-radio")
        clean = run_network_sweep(spec, scale=SMOKE, jobs=2, cache=None,
                                  pipelined=True)
        with inject_faults("cell@1=kill"):
            chaos = run_network_sweep(
                spec, scale=SMOKE, jobs=2, cache=None, pipelined=True, retry=FAST,
            )
        assert chaos.failures == ()
        for clean_point, chaos_point in zip(clean.points, chaos.points):
            assert clean_point.payload == chaos_point.payload


class TestTransientChaos:
    def test_trajectory_kill_recovers_bitwise_equal(self):
        spec = scenario("busy-hour-ramp")
        clean = run_transient_sweep(spec, scale=SMOKE, jobs=2, cache=None)
        with inject_faults("trajectory@0=kill"):
            chaos = run_transient_sweep(
                spec, scale=SMOKE, jobs=2, cache=None, retry=FAST
            )
        assert chaos.failures == ()
        for clean_point, chaos_point in zip(clean.points, chaos.points):
            assert clean_point.payload == chaos_point.payload

    def test_aborted_transient_sweep_checkpoints_finished_trajectories(
        self, tmp_path
    ):
        spec = scenario("busy-hour-ramp")
        cache = ResultCache(tmp_path / "cache")
        ckpt = SweepCheckpoint.load(tmp_path / "ckpt.jsonl")
        with inject_faults("trajectory@1=raise*9"):
            with pytest.raises(SweepFailureError):
                run_transient_sweep(
                    spec, scale=SMOKE, jobs=1, cache=cache,
                    checkpoint=ckpt, strict=True, retry=FAST,
                )
        assert len(ckpt) == 1  # trajectory 0 persisted before the abort
        resumed = run_transient_sweep(
            spec, scale=SMOKE, jobs=1, cache=cache,
            checkpoint=SweepCheckpoint.load(tmp_path / "ckpt.jsonl"), strict=True,
        )
        assert [point.from_cache for point in resumed.points] == [True, False]
