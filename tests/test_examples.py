"""Smoke tests that the example scripts run end to end.

The examples are part of the public deliverable, so they must keep working.
They are executed in-process (importing their ``main`` via runpy would re-run
argument parsing; instead the scripts are executed with a patched ``sys.argv``
through ``runpy.run_path``) with small arguments where they accept any.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(monkeypatch, capsys, script: str, argv: list[str] | None = None) -> str:
    monkeypatch.setattr(sys, "argv", [script] + (argv or []))
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    return capsys.readouterr().out


def test_examples_directory_contains_required_scripts():
    names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 3


def test_quickstart_example(monkeypatch, capsys):
    output = run_example(monkeypatch, capsys, "quickstart.py", ["0.3"])
    assert "carried data traffic" in output
    assert "packet loss probability" in output
    assert "state space" in output


@pytest.mark.slow
def test_pdch_dimensioning_example(monkeypatch, capsys):
    output = run_example(monkeypatch, capsys, "pdch_dimensioning.py")
    assert "QoS profile" in output
    assert "GPRS users" in output


def test_tcp_threshold_calibration_example_exists():
    # The calibration example runs a multi-minute simulation sweep; only check
    # that it imports cleanly (compilation catches API drift).
    source = (EXAMPLES_DIR / "tcp_threshold_calibration.py").read_text()
    compile(source, "tcp_threshold_calibration.py", "exec")


def test_model_vs_simulation_example_exists():
    source = (EXAMPLES_DIR / "model_vs_simulation.py").read_text()
    compile(source, "model_vs_simulation.py", "exec")


def test_adaptive_allocation_example_exists():
    # The adaptive-controller example sweeps many configurations; only check
    # that it imports/compiles cleanly so API drift is caught.
    source = (EXAMPLES_DIR / "adaptive_allocation.py").read_text()
    compile(source, "adaptive_allocation.py", "exec")


def test_network_hotspot_example(monkeypatch, capsys):
    output = run_example(monkeypatch, capsys, "network_hotspot.py", ["0.4", "2.0"])
    assert "homogeneity anchor" in output
    assert "PASS" in output
    assert "hotspot cluster" in output
    assert "overflow absorbed" in output


def test_busy_hour_ramp_example(monkeypatch, capsys):
    output = run_example(monkeypatch, capsys, "busy_hour_ramp.py", ["0.4", "1.8"])
    assert "transient anchor" in output
    assert "PASS" in output
    assert "busy-hour ramp" in output
    assert "transient vs. stationary" in output


def test_link_quality_and_arq_example(monkeypatch, capsys):
    output = run_example(monkeypatch, capsys, "link_quality_and_arq.py", ["0.4"])
    assert "Link level" in output
    assert "switching thresholds" in output or "switch CS-1 -> CS-2" in output
    assert "block error rate" in output


def test_traffic_mix_analysis_example(monkeypatch, capsys):
    output = run_example(monkeypatch, capsys, "traffic_mix_analysis.py")
    assert "Application mix" in output
    assert "fitted 3GPP parameters" in output
    assert "index of dispersion" in output


def test_guard_channels_and_adaptive_pdch_example_exists():
    # The adaptive comparison solves many model configurations; compile only.
    source = (EXAMPLES_DIR / "guard_channels_and_adaptive_pdch.py").read_text()
    compile(source, "guard_channels_and_adaptive_pdch.py", "exec")
