"""Tests of the per-cell resource management and downlink scheduler."""

from __future__ import annotations

import pytest

from repro.core.parameters import GprsModelParameters
from repro.des.engine import SimulationEngine
from repro.simulator.cell import Cell, Packet
from repro.traffic.presets import TRAFFIC_MODEL_3


@pytest.fixture
def params() -> GprsModelParameters:
    return GprsModelParameters.from_traffic_model(
        TRAFFIC_MODEL_3, total_call_arrival_rate=0.5, buffer_size=5,
        max_gprs_sessions=3, reserved_pdch=2,
    )


@pytest.fixture
def engine() -> SimulationEngine:
    return SimulationEngine()


@pytest.fixture
def cell(engine, params) -> Cell:
    return Cell(engine, index=0, params=params)


class RecordingSession:
    """Minimal session stub recording delivered packets."""

    def __init__(self):
        self.delivered = []

    def on_packet_delivered(self, packet):
        self.delivered.append(packet)


class TestGsmAdmission:
    def test_admission_up_to_gsm_channel_limit(self, cell, params):
        admitted = sum(cell.try_admit_gsm_call() for _ in range(params.gsm_channels + 4))
        assert admitted == params.gsm_channels
        assert cell.gsm_calls_in_progress == params.gsm_channels
        assert cell.statistics.gsm_calls_blocked.count == 4
        assert cell.statistics.gsm_calls_offered.count == params.gsm_channels + 4

    def test_release_frees_a_channel(self, cell):
        cell.try_admit_gsm_call()
        cell.release_gsm_call()
        assert cell.gsm_calls_in_progress == 0

    def test_release_without_call_raises(self, cell):
        with pytest.raises(RuntimeError):
            cell.release_gsm_call()


class TestGprsAdmission:
    def test_admission_up_to_session_cap(self, cell, params):
        admitted = sum(cell.try_admit_gprs_session() for _ in range(params.max_gprs_sessions + 2))
        assert admitted == params.max_gprs_sessions
        assert cell.statistics.gprs_sessions_blocked.count == 2

    def test_remove_without_session_raises(self, cell):
        with pytest.raises(RuntimeError):
            cell.remove_gprs_session()


class TestBufferAndScheduler:
    def test_packets_lost_when_buffer_full(self, cell, params):
        # Without a running scheduler the buffer simply fills up.
        session = RecordingSession()
        accepted = 0
        for sequence in range(params.buffer_size + 3):
            packet = Packet(session=session, sequence_number=sequence, size_bytes=480)
            accepted += cell.enqueue_packet(packet)
        assert accepted == params.buffer_size
        assert cell.statistics.packets_lost.count == 3
        assert cell.buffer_level == params.buffer_size

    def test_scheduler_transmits_and_notifies_session(self, engine, cell):
        cell.start_scheduler()
        session = RecordingSession()
        for sequence in range(3):
            cell.enqueue_packet(Packet(session=session, sequence_number=sequence,
                                       size_bytes=480))
        engine.run(until=10.0)
        assert len(session.delivered) == 3
        assert cell.statistics.packets_served.count == 3
        assert cell.buffer_level == 0
        assert cell.data_channels_in_use == 0

    def test_packet_delay_includes_transmission_time(self, engine, cell):
        cell.start_scheduler()
        session = RecordingSession()
        cell.enqueue_packet(Packet(session=session, sequence_number=0, size_bytes=480))
        engine.run(until=10.0)
        # A single packet with 18 free channels uses 8 PDCHs: 2 radio blocks = 40 ms.
        assert cell.statistics.packet_delay.mean == pytest.approx(0.04, abs=1e-6)

    def test_voice_calls_reduce_data_capacity(self, engine, params):
        """With all GSM channels busy only the reserved PDCHs remain for data."""
        cell = Cell(engine, 0, params)
        cell.start_scheduler()
        for _ in range(params.gsm_channels):
            assert cell.try_admit_gsm_call()
        session = RecordingSession()
        cell.enqueue_packet(Packet(session=session, sequence_number=0, size_bytes=480))
        engine.run(until=1.0)
        # Only the 2 reserved PDCHs can carry the packet: ceil(15/2) = 8 blocks = 160 ms.
        assert session.delivered
        assert cell.statistics.packet_delay.mean == pytest.approx(0.16, abs=1e-6)

    def test_scheduler_wakes_up_for_late_arrivals(self, engine, cell):
        cell.start_scheduler()
        session = RecordingSession()
        engine.run(until=5.0)  # scheduler idles
        cell.enqueue_packet(Packet(session=session, sequence_number=0, size_bytes=480))
        engine.run(until=10.0)
        assert len(session.delivered) == 1

    def test_free_data_channels_accounting(self, cell, params):
        assert cell.free_data_channels == params.number_of_channels
        cell.try_admit_gsm_call()
        assert cell.free_data_channels == params.number_of_channels - 1

    def test_statistics_reset(self, engine, cell):
        session = RecordingSession()
        cell.enqueue_packet(Packet(session=session, sequence_number=0, size_bytes=480))
        cell.statistics.reset(engine.now)
        assert cell.statistics.packets_offered.count == 0
        assert cell.statistics.packet_delay.count == 0
