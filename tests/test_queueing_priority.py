"""Tests of the preemptive-priority voice/data sharing approximation."""

from __future__ import annotations

import pytest

from repro.queueing.erlang import ErlangLossSystem
from repro.queueing.priority import PreemptivePrioritySharing


def make_sharing(**overrides) -> PreemptivePrioritySharing:
    values = dict(
        voice_arrival_rate=0.4,
        voice_service_rate=1.0 / 40.0,  # completion + handover of the base setting
        data_arrival_rate=5.0,
        data_service_rate=3.49,
        channels=20,
        reserved_data_channels=1,
        buffer_size=20,
    )
    values.update(overrides)
    return PreemptivePrioritySharing(**values)


class TestValidation:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            make_sharing(channels=0)
        with pytest.raises(ValueError):
            make_sharing(reserved_data_channels=20)
        with pytest.raises(ValueError):
            make_sharing(reserved_data_channels=-1)
        with pytest.raises(ValueError):
            make_sharing(voice_arrival_rate=-0.1)
        with pytest.raises(ValueError):
            make_sharing(voice_service_rate=0.0)
        with pytest.raises(ValueError):
            make_sharing(data_service_rate=0.0)
        with pytest.raises(ValueError):
            make_sharing(buffer_size=0)
        with pytest.raises(ValueError):
            make_sharing(max_channels_per_packet=0)


class TestVoiceClass:
    def test_voice_is_plain_erlang_on_the_non_reserved_channels(self):
        sharing = make_sharing()
        erlang = ErlangLossSystem(arrival_rate=0.4, service_rate=1.0 / 40.0, servers=19)
        assert sharing.voice_blocking_probability() == pytest.approx(
            erlang.blocking_probability(), rel=1e-12
        )
        assert sharing.carried_voice_traffic() == pytest.approx(
            erlang.carried_traffic(), rel=1e-12
        )

    def test_voice_is_unaffected_by_data_load(self):
        light = make_sharing(data_arrival_rate=0.1)
        heavy = make_sharing(data_arrival_rate=50.0)
        assert light.voice_blocking_probability() == pytest.approx(
            heavy.voice_blocking_probability(), rel=1e-12
        )


class TestChannelAvailability:
    def test_channel_distribution_is_a_probability_vector(self):
        distribution = make_sharing().data_channel_distribution()
        assert distribution.sum() == pytest.approx(1.0)
        assert (distribution >= 0).all()

    def test_reserved_channels_are_always_available(self):
        sharing = make_sharing()
        distribution = sharing.data_channel_distribution()
        # With 1 reserved PDCH and 19 voice channels, at least 1 channel is
        # always available to data: probability of having 0 channels is zero.
        assert distribution[0] == pytest.approx(0.0)

    def test_no_voice_load_leaves_every_channel_to_data(self):
        sharing = make_sharing(voice_arrival_rate=0.0)
        distribution = sharing.data_channel_distribution()
        assert distribution[sharing.channels] == pytest.approx(1.0)


class TestDataClass:
    def test_data_suffers_as_voice_load_grows(self):
        low_voice = make_sharing(voice_arrival_rate=0.05)
        high_voice = make_sharing(voice_arrival_rate=1.5)
        assert high_voice.data_loss_probability() >= low_voice.data_loss_probability()
        assert high_voice.carried_data_traffic() <= low_voice.carried_data_traffic() + 1e-9

    def test_loss_probability_is_a_probability(self):
        sharing = make_sharing(data_arrival_rate=100.0, voice_arrival_rate=2.0)
        assert 0.0 <= sharing.data_loss_probability() <= 1.0

    def test_light_data_load_sees_almost_no_loss(self):
        sharing = make_sharing(data_arrival_rate=0.05, voice_arrival_rate=0.05)
        assert sharing.data_loss_probability() < 1e-3
        assert sharing.data_mean_queue_length() < 1.0

    def test_throughput_consistent_with_carried_traffic(self):
        sharing = make_sharing()
        assert sharing.data_throughput() == pytest.approx(
            sharing.carried_data_traffic() * sharing.data_service_rate, rel=1e-12
        )

    def test_more_reserved_channels_reduce_data_loss_under_heavy_voice(self):
        few = make_sharing(voice_arrival_rate=1.0, reserved_data_channels=1,
                           data_arrival_rate=12.0)
        many = make_sharing(voice_arrival_rate=1.0, reserved_data_channels=4,
                            data_arrival_rate=12.0)
        assert many.data_loss_probability() <= few.data_loss_probability() + 1e-12


class TestAgainstFullGprsModel:
    def test_decomposition_tracks_the_ctmc_for_poisson_like_traffic(self):
        """The quasi-stationary mixture approximates the exact CTMC at low burstiness.

        With reading times that are negligible compared to packet calls the
        GPRS traffic is almost Poisson, which is the regime where the
        decomposition is expected to be accurate for carried data traffic.
        """
        from repro.core.model import GprsMarkovModel
        from repro.core.parameters import GprsModelParameters
        from repro.traffic.session import PacketSessionModel

        almost_poisson = PacketSessionModel(
            packet_calls_per_session=200,
            reading_time_s=1e-3,
            packets_per_packet_call=50,
            packet_interarrival_s=0.8,
            name="almost poisson",
        )
        params = GprsModelParameters(
            total_call_arrival_rate=0.3,
            gprs_fraction=0.1,
            traffic=almost_poisson,
            buffer_size=15,
            max_gprs_sessions=4,
            reserved_pdch=2,
            tcp_threshold=1.0,
        )
        model = GprsMarkovModel(params)
        solution = model.solve()
        measures = solution.measures
        # Mean packet arrival rate seen by the cell: sessions * per-session rate.
        mean_sessions = measures.average_gprs_sessions
        per_session_rate = almost_poisson.packet_rate * almost_poisson.activity_factor
        sharing = PreemptivePrioritySharing(
            voice_arrival_rate=(
                params.gsm_arrival_rate + model.handover_balance.gsm_handover_arrival_rate
            ),
            voice_service_rate=params.gsm_completion_rate + params.gsm_handover_departure_rate,
            data_arrival_rate=mean_sessions * per_session_rate,
            data_service_rate=params.pdch_service_rate,
            channels=params.number_of_channels,
            reserved_data_channels=params.reserved_pdch,
            buffer_size=params.buffer_size,
        )
        assert sharing.carried_data_traffic() == pytest.approx(
            measures.carried_data_traffic, rel=0.35
        )
