"""Tests of the MAP/M/c/K queue."""

from __future__ import annotations

import numpy as np
import pytest

from repro.markov.map_process import MarkovianArrivalProcess, map_from_mmpp
from repro.markov.mmpp import InterruptedPoissonProcess, aggregate_identical_ipps
from repro.queueing.map_queue import MapMcKQueue
from repro.queueing.mmck import MMcKQueue


def poisson_map(rate: float) -> MarkovianArrivalProcess:
    return MarkovianArrivalProcess(np.array([[-rate]]), np.array([[rate]]))


class TestValidation:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MapMcKQueue(poisson_map(1.0), service_rate=0.0, servers=1, capacity=5)
        with pytest.raises(ValueError):
            MapMcKQueue(poisson_map(1.0), service_rate=1.0, servers=0, capacity=5)
        with pytest.raises(ValueError):
            MapMcKQueue(poisson_map(1.0), service_rate=1.0, servers=4, capacity=3)


class TestPoissonSpecialCase:
    def test_matches_the_mmck_closed_form(self):
        """With a Poisson MAP the queue must reproduce M/M/c/K exactly."""
        arrival, service, servers, capacity = 2.3, 1.1, 3, 12
        map_queue = MapMcKQueue(poisson_map(arrival), service, servers, capacity)
        reference = MMcKQueue(arrival_rate=arrival, service_rate=service,
                              servers=servers, capacity=capacity)
        assert map_queue.blocking_probability() == pytest.approx(
            reference.blocking_probability(), rel=1e-8
        )
        assert map_queue.mean_number_in_system() == pytest.approx(
            reference.mean_number_in_system(), rel=1e-8
        )
        assert map_queue.mean_queue_length() == pytest.approx(
            reference.mean_queue_length(), rel=1e-8
        )
        assert map_queue.throughput() == pytest.approx(reference.throughput(), rel=1e-8)

    def test_queue_length_distribution_sums_to_one(self):
        queue = MapMcKQueue(poisson_map(1.0), 2.0, 2, 8)
        marginal = queue.queue_length_distribution()
        assert marginal.sum() == pytest.approx(1.0)
        assert (marginal >= -1e-15).all()


class TestBurstyArrivals:
    def make_ipp_queue(self, capacity=20, servers=2, service=1.0) -> MapMcKQueue:
        ipp = InterruptedPoissonProcess(packet_rate=4.0, on_to_off_rate=0.5, off_to_on_rate=0.5)
        return MapMcKQueue(map_from_mmpp(ipp), service, servers, capacity)

    def test_bursty_traffic_loses_more_than_poisson_at_equal_mean_rate(self):
        """Burstiness raises the loss probability -- the paper's central traffic point."""
        ipp = InterruptedPoissonProcess(packet_rate=4.0, on_to_off_rate=0.5, off_to_on_rate=0.5)
        mean_rate = ipp.mean_arrival_rate()
        bursty = MapMcKQueue(map_from_mmpp(ipp), 1.0, 2, 20)
        poisson = MapMcKQueue(poisson_map(mean_rate), 1.0, 2, 20)
        assert bursty.blocking_probability() > poisson.blocking_probability()

    def test_bursty_traffic_queues_longer_at_moderate_load(self):
        """Below saturation the on-periods overload the servers and build queues."""
        ipp = InterruptedPoissonProcess(packet_rate=4.0, on_to_off_rate=0.5, off_to_on_rate=0.5)
        mean_rate = ipp.mean_arrival_rate()
        bursty = MapMcKQueue(map_from_mmpp(ipp), 3.0, 1, 30)
        poisson = MapMcKQueue(poisson_map(mean_rate), 3.0, 1, 30)
        assert bursty.mean_queue_length() > poisson.mean_queue_length()
        assert bursty.mean_waiting_time() > poisson.mean_waiting_time()

    def test_throughput_is_bounded_by_capacity_and_demand(self):
        queue = self.make_ipp_queue()
        offered = queue.arrival_process.mean_arrival_rate()
        assert queue.throughput() <= min(offered, queue.servers * queue.service_rate) + 1e-9

    def test_loss_and_throughput_are_consistent(self):
        """Accepted rate (1 - loss) * offered equals the served rate."""
        queue = self.make_ipp_queue(capacity=15, servers=1)
        offered = queue.arrival_process.mean_arrival_rate()
        accepted = offered * (1.0 - queue.blocking_probability())
        assert accepted == pytest.approx(queue.throughput(), rel=1e-6)

    def test_bigger_buffer_reduces_loss(self):
        small = self.make_ipp_queue(capacity=5)
        large = self.make_ipp_queue(capacity=40)
        assert large.blocking_probability() < small.blocking_probability()

    def test_more_servers_reduce_delay(self):
        slow = self.make_ipp_queue(servers=1)
        fast = self.make_ipp_queue(servers=4)
        assert fast.mean_waiting_time() <= slow.mean_waiting_time() + 1e-12


class TestAggregatedGprsSessions:
    def test_aggregate_of_sessions_feeding_the_bsc_buffer(self):
        """The BSC buffer fed by m aggregated 3GPP sessions has sane measures."""
        from repro.traffic.presets import TRAFFIC_MODEL_3

        session_ipp = TRAFFIC_MODEL_3.session.to_ipp()
        aggregate = map_from_mmpp(aggregate_identical_ipps(session_ipp, 4))
        queue = MapMcKQueue(aggregate, service_rate=3.49, servers=3, capacity=20)
        assert 0.0 <= queue.blocking_probability() <= 1.0
        assert 0.0 <= queue.mean_busy_servers() <= 3.0
        assert queue.mean_number_in_system() <= 20.0
