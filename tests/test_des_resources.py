"""Tests of DES resources (channel pools) and finite buffers."""

from __future__ import annotations

import pytest

from repro.des.engine import SimulationEngine, SimulationError
from repro.des.process import Process, Timeout
from repro.des.resources import Buffer, BufferOverflow, Resource


class TestResource:
    def test_capacity_validation(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            Resource(engine, capacity=0)

    def test_immediate_grant_when_free(self):
        engine = SimulationEngine()
        resource = Resource(engine, capacity=2)
        request = resource.request()
        assert request.triggered
        assert resource.in_use == 1
        assert resource.available == 1

    def test_try_acquire(self):
        engine = SimulationEngine()
        resource = Resource(engine, capacity=1)
        assert resource.try_acquire() is True
        assert resource.try_acquire() is False
        resource.release()
        assert resource.try_acquire() is True

    def test_fifo_queueing(self):
        engine = SimulationEngine()
        resource = Resource(engine, capacity=1)
        grants = []

        def worker(name, hold):
            yield resource.request()
            grants.append((name, engine.now))
            yield Timeout(hold)
            resource.release()

        Process(engine, worker("first", 2.0))
        Process(engine, worker("second", 1.0))
        Process(engine, worker("third", 1.0))
        engine.run()
        assert grants == [("first", 0.0), ("second", 2.0), ("third", 3.0)]

    def test_release_without_acquire_raises(self):
        engine = SimulationEngine()
        resource = Resource(engine, capacity=1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_queue_length(self):
        engine = SimulationEngine()
        resource = Resource(engine, capacity=1)
        resource.request()
        resource.request()
        resource.request()
        assert resource.queue_length == 2

    def test_resize_grants_waiting_requests(self):
        engine = SimulationEngine()
        resource = Resource(engine, capacity=1)
        first = resource.request()
        second = resource.request()
        assert first.triggered and not second.triggered
        resource.resize(2)
        assert second.triggered
        assert resource.capacity == 2

    def test_resize_below_usage_is_allowed(self):
        engine = SimulationEngine()
        resource = Resource(engine, capacity=3)
        for _ in range(3):
            assert resource.try_acquire()
        resource.resize(1)
        assert resource.in_use == 3
        assert resource.available == -2 or resource.available <= 0
        assert not resource.try_acquire()


class TestBuffer:
    def test_capacity_validation(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            Buffer(engine, capacity=0)

    def test_put_and_get_fifo_order(self):
        engine = SimulationEngine()
        buffer = Buffer(engine, capacity=5)
        buffer.put("a")
        buffer.put("b")
        first = buffer.get()
        second = buffer.get()
        assert first.value == "a"
        assert second.value == "b"

    def test_overflow_counts_losses(self):
        engine = SimulationEngine()
        buffer = Buffer(engine, capacity=2)
        assert buffer.put(1) and buffer.put(2)
        assert buffer.put(3) is False
        assert buffer.lost_items == 1
        assert buffer.accepted_items == 2
        assert buffer.is_full

    def test_overflow_can_raise(self):
        engine = SimulationEngine()
        buffer = Buffer(engine, capacity=1)
        buffer.put("x")
        with pytest.raises(BufferOverflow):
            buffer.put("y", raise_on_full=True)

    def test_get_blocks_until_item_arrives(self):
        engine = SimulationEngine()
        buffer = Buffer(engine, capacity=3)
        received = []

        def consumer():
            item = yield buffer.get()
            received.append((engine.now, item))

        def producer():
            yield Timeout(4.0)
            buffer.put("payload")

        Process(engine, consumer())
        Process(engine, producer())
        engine.run()
        assert received == [(4.0, "payload")]

    def test_direct_handover_does_not_occupy_space(self):
        engine = SimulationEngine()
        buffer = Buffer(engine, capacity=1)
        waiting = buffer.get()
        assert not waiting.triggered
        buffer.put("direct")
        assert waiting.triggered
        assert buffer.level == 0

    def test_peek_and_clear(self):
        engine = SimulationEngine()
        buffer = Buffer(engine, capacity=3)
        assert buffer.peek() is None
        buffer.put(10)
        buffer.put(20)
        assert buffer.peek() == 10
        assert buffer.clear() == 2
        assert buffer.level == 0
