"""Tests of the transient layer's runtime integration: registry, cache, sweeps."""

from __future__ import annotations

import json

import pytest

from repro.experiments.scale import ExperimentScale
from repro.network import hexagonal_cluster
from repro.runtime import (
    ResultCache,
    ScenarioSpec,
    list_scenarios,
    result_key,
    run_sweep,
    scenario,
)
from repro.runtime.spec import parameters_to_dict
from repro.transient import default_propagator_cache, flash_crowd
from repro.transient.sweep import run_transient_sweep, transient_sweep_payloads


TRANSIENT_SCENARIOS = ("busy-hour-ramp", "flash-crowd", "outage-recovery", "diurnal-24h")


class TestRegistry:
    def test_transient_scenarios_are_registered(self):
        for name in TRANSIENT_SCENARIOS:
            spec = scenario(name)
            assert spec.transient is not None
            assert "transient" in spec.tags

    def test_kind_filter_partitions_the_registry(self):
        transient = list_scenarios(kind="transient")
        network = list_scenarios(kind="network")
        cell = list_scenarios(kind="cell")
        assert {spec.name for spec in transient} == set(TRANSIENT_SCENARIOS)
        assert all(spec.transient is None for spec in cell + network)
        assert len(transient) + len(network) + len(cell) == len(list_scenarios())

    def test_transient_specs_round_trip_through_dicts(self):
        for name in TRANSIENT_SCENARIOS:
            spec = scenario(name)
            rebuilt = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
            assert rebuilt == spec

    def test_transient_field_requires_a_profile(self):
        with pytest.raises(ValueError, match="WorkloadProfile"):
            ScenarioSpec(name="x", description="y", transient={"not": "a profile"})

    def test_transient_and_network_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="cannot be both"):
            ScenarioSpec(
                name="x",
                description="y",
                network=hexagonal_cluster(3),
                transient=flash_crowd(),
            )


class TestCacheKeys:
    def test_transient_points_never_collide_with_other_kinds(self):
        spec = scenario("flash-crowd")
        params = parameters_to_dict(spec.parameters(ExperimentScale.smoke()))
        single = result_key(params, solver="auto", solver_tol=1e-9)
        network = result_key(
            params,
            solver="auto",
            solver_tol=1e-9,
            kind="network",
            network=hexagonal_cluster(7).to_dict(),
        )
        transient = result_key(
            params,
            solver="auto",
            solver_tol=1e-9,
            kind="transient",
            transient=spec.transient.to_dict(),
        )
        assert len({single, network, transient}) == 3

    def test_profile_rendering_separates_workloads(self):
        params = parameters_to_dict(
            scenario("flash-crowd").parameters(ExperimentScale.smoke())
        )
        keys = {
            result_key(
                params,
                solver="auto",
                solver_tol=1e-9,
                kind="transient",
                transient=profile.to_dict(),
            )
            for profile in (
                flash_crowd(),
                flash_crowd(spike_multiplier=2.0),
                flash_crowd(samples=10),
            )
        }
        assert len(keys) == 3


def _fast_spec() -> ScenarioSpec:
    """The registered flash-crowd scenario shrunk to a seconds-long schedule."""
    return scenario("flash-crowd").replace(
        transient=flash_crowd(
            spike_multiplier=2.5,
            lead_duration_s=4.0,
            spike_duration_s=6.0,
            recovery_duration_s=10.0,
            samples=4,
        ),
        arrival_rates=(0.3, 0.6),
    )


class TestTransientSweep:
    def test_payloads_cover_every_rate_in_order(self):
        scale = ExperimentScale.smoke()
        spec = _fast_spec()
        payloads = transient_sweep_payloads(spec, scale)
        assert len(payloads) == len(spec.arrival_rates)
        for (payload, from_cache), rate in zip(payloads, spec.arrival_rates):
            assert not from_cache
            assert payload["base_arrival_rate"] == pytest.approx(rate)
            assert len(payload["points"]) == 5

    def test_stationary_spec_rejected(self):
        with pytest.raises(ValueError, match="no transient workload"):
            transient_sweep_payloads(scenario("figure12"), ExperimentScale.smoke())

    def test_parallel_trajectories_match_serial_bitwise(self):
        scale = ExperimentScale.smoke()
        spec = _fast_spec()
        # Earlier tests warm the process-wide propagator cache with this
        # very spec.  Pool workers always start cold (they no longer fork
        # from the warm parent), so replay provenance would differ; level
        # the field so both sides compute cold.
        default_propagator_cache().clear()
        serial = transient_sweep_payloads(spec, scale, jobs=1)
        parallel = transient_sweep_payloads(spec, scale, jobs=2)
        assert serial == parallel

    def test_cache_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        scale = ExperimentScale.smoke()
        spec = _fast_spec()
        first = transient_sweep_payloads(spec, scale, cache=cache)
        assert all(not hit for _, hit in first)
        second = transient_sweep_payloads(spec, scale, cache=cache)
        assert all(hit for _, hit in second)
        assert [payload for payload, _ in second] == [payload for payload, _ in first]

    def test_run_transient_sweep_result_shape(self, tmp_path):
        result = run_transient_sweep(
            _fast_spec(), ExperimentScale.smoke(), cache=ResultCache(tmp_path)
        )
        assert result.cache_misses == len(result.points)
        assert len(result.series("packet_loss_probability")) == len(result.points)
        point = result.points[0]
        assert len(point.trajectory("packet_loss_probability")) == len(point.times)
        payload = json.loads(json.dumps(result.as_dict()))
        assert payload["scenario"]["name"] == "flash-crowd"

    def test_rates_override_restricts_the_axis(self):
        result = run_transient_sweep(
            _fast_spec(), ExperimentScale.smoke(), cache=None, rates=(0.4,)
        )
        assert result.arrival_rates == (0.4,)


class TestRunSweepDispatch:
    def test_run_sweep_serves_time_averages(self, tmp_path):
        cache = ResultCache(tmp_path)
        scale = ExperimentScale.smoke()
        spec = _fast_spec()
        result = run_sweep(spec, scale, cache=cache)
        assert len(result.points) == len(spec.arrival_rates)
        assert "packet_loss_probability" in result.points[0].values
        rerun = run_sweep(spec, scale, cache=cache)
        assert rerun.cache_hits == len(rerun.points)
        assert [point.values for point in rerun.points] == [
            point.values for point in result.points
        ]

    def test_run_sweep_values_are_the_time_averages(self):
        scale = ExperimentScale.smoke()
        spec = _fast_spec().replace(arrival_rates=(0.4,))
        swept = run_sweep(spec, scale, cache=None)
        payloads = transient_sweep_payloads(spec, scale)
        assert swept.points[0].values == payloads[0][0]["time_averages"]

    def test_explicit_chunk_size_rejected_for_transient_scenarios(self):
        with pytest.raises(ValueError, match="single-cell"):
            run_sweep(_fast_spec(), ExperimentScale.smoke(), cache=None, chunk_size=4)

    def test_transient_and_single_cell_sweeps_share_no_cache_entries(self, tmp_path):
        """Same effective base parameters, disjoint key spaces."""
        cache = ResultCache(tmp_path)
        scale = ExperimentScale.smoke()
        spec = _fast_spec()
        run_sweep(spec, scale, cache=cache)
        entries_after_transient = len(cache)
        single = spec.replace(transient=None)
        result = run_sweep(single, scale, cache=cache)
        assert result.cache_hits == 0
        assert len(cache) == entries_after_transient + len(result.points)
