"""Tests of the memoised segment propagators (checkpointed replay)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parameters import GprsModelParameters
from repro.experiments.scale import ExperimentScale
from repro.runtime import scenario
from repro.traffic.presets import TRAFFIC_MODEL_3
from repro.transient import (
    PropagatorCache,
    RateSchedule,
    ScheduleSegment,
    SegmentReplay,
    TransientModel,
    WorkloadProfile,
    constant_workload,
    default_propagator_cache,
    flash_crowd,
)


def _params(rate: float = 0.4) -> GprsModelParameters:
    return GprsModelParameters.from_traffic_model(
        TRAFFIC_MODEL_3, rate, buffer_size=6, max_gprs_sessions=3
    )


def _profile(samples: int = 4) -> WorkloadProfile:
    return flash_crowd(
        spike_multiplier=2.0,
        lead_duration_s=4.0,
        spike_duration_s=4.0,
        recovery_duration_s=8.0,
        samples=samples,
    )


class TestReplay:
    def test_second_solve_replays_every_segment_bitwise(self):
        cache = PropagatorCache()
        params = _params()
        profile = _profile()
        cold = TransientModel(profile, params, propagator_cache=cache).solve()
        warm = TransientModel(profile, params, propagator_cache=cache).solve()
        assert cold.propagator_hits == 0
        assert warm.propagator_hits == profile.schedule.number_of_segments
        assert warm.matvecs == 0
        assert all(trace.replayed for trace in warm.segments)
        assert all(trace.matvecs == 0 for trace in warm.segments)
        for metric in cold.points[0].values:
            assert warm.series(metric) == cold.series(metric)
        assert np.array_equal(warm.final_distribution, cold.final_distribution)

    def test_replay_reports_the_same_early_stop_residual(self):
        """Satellite contract: the achieved residual survives memoised replay."""
        cache = PropagatorCache()
        params = _params()
        profile = constant_workload(60.0, samples=3, initial="stationary")
        cold = TransientModel(profile, params, propagator_cache=cache).solve()
        warm = TransientModel(profile, params, propagator_cache=cache).solve()
        assert cold.early_stopped_segments == 1
        trace = cold.segments[0]
        assert trace.stationarity_residual is not None
        assert trace.stationarity_residual <= 1e-9
        replay = warm.segments[0]
        assert replay.replayed
        assert replay.stationary_from_s == trace.stationary_from_s
        assert replay.stationarity_residual == trace.stationarity_residual
        assert warm.early_stopped_segments == cold.early_stopped_segments

    def test_memoisation_off_never_touches_a_cache(self):
        cache = PropagatorCache()
        params = _params()
        profile = _profile()
        TransientModel(profile, params, propagator_cache=cache).solve()
        off = TransientModel(
            profile, params, memoise_propagators=False, propagator_cache=cache
        ).solve()
        assert off.propagator_hits == 0
        assert off.matvecs > 0
        assert not any(trace.replayed for trace in off.segments)

    def test_memoised_and_unmemoised_trajectories_are_bitwise_equal(self):
        params = _params()
        profile = _profile()
        cache = PropagatorCache()
        first = TransientModel(profile, params, propagator_cache=cache).solve()
        replayed = TransientModel(profile, params, propagator_cache=cache).solve()
        plain = TransientModel(profile, params, memoise_propagators=False).solve()
        for metric in plain.points[0].values:
            assert replayed.series(metric) == plain.series(metric)
            assert first.series(metric) == plain.series(metric)
        assert np.array_equal(replayed.final_distribution, plain.final_distribution)

    def test_different_base_rate_misses_the_cache(self):
        cache = PropagatorCache()
        profile = _profile()
        TransientModel(profile, _params(0.4), propagator_cache=cache).solve()
        other = TransientModel(profile, _params(0.5), propagator_cache=cache).solve()
        assert other.propagator_hits == 0

    def test_repeated_segments_hit_within_one_trajectory(self):
        """An alternating schedule whose pattern repeats exactly replays.

        With a stationary start and long enough segments every segment
        early-stops immediately (the distribution never changes), so the
        repeated (configuration, intervals, start) triples are bitwise
        identical from the second cycle on.
        """
        cache = PropagatorCache()
        params = _params()
        segments = tuple(
            ScheduleSegment(duration_s=30.0, arrival_rate_multiplier=1.0)
            for _ in range(4)
        )
        profile = WorkloadProfile(
            schedule=RateSchedule(name="repeat", segments=segments),
            samples=4,
            initial="stationary",
        )
        result = TransientModel(profile, params, propagator_cache=cache).solve()
        assert result.propagator_hits >= 1


class TestCache:
    def _replay(self, size: int = 64) -> SegmentReplay:
        return SegmentReplay(
            checkpoints=(np.zeros(size),),
            matvecs=1,
            stationary_offset_s=None,
            stationary_residual=None,
        )

    def test_lru_eviction_respects_the_byte_budget(self):
        replay = self._replay()
        cache = PropagatorCache(max_bytes=3 * PropagatorCache.entry_bytes(replay))
        for index in range(4):
            cache.put(f"key-{index}", self._replay())
        assert len(cache) == 3
        assert cache.get("key-0") is None  # evicted (oldest)
        assert cache.get("key-3") is not None

    def test_get_refreshes_recency(self):
        replay = self._replay()
        cache = PropagatorCache(max_bytes=2 * PropagatorCache.entry_bytes(replay))
        cache.put("a", self._replay())
        cache.put("b", self._replay())
        assert cache.get("a") is not None  # refresh "a"
        cache.put("c", self._replay())  # evicts "b", not "a"
        assert cache.get("a") is not None
        assert cache.get("b") is None

    def test_oversized_entry_is_not_stored(self):
        replay = self._replay(1024)
        cache = PropagatorCache(max_bytes=replay.nbytes - 1)
        cache.put("big", replay)
        assert len(cache) == 0

    def test_stored_bytes_include_metadata_overhead(self):
        """The budget accounts for digest/metadata bookkeeping, not just payload."""
        from repro.transient.propagator import ENTRY_OVERHEAD_BYTES

        replay = self._replay()
        cache = PropagatorCache()
        cache.put("key", self._replay())
        assert cache.stored_bytes == replay.nbytes + ENTRY_OVERHEAD_BYTES
        assert cache.stored_bytes == PropagatorCache.entry_bytes(replay)
        cache.clear()
        assert cache.stored_bytes == 0

    def test_bytes_gauge_tracks_drops_and_clears(self):
        from repro.obs.metrics import current_registry

        replay = self._replay()
        cache = PropagatorCache(max_bytes=4 * PropagatorCache.entry_bytes(replay))
        cache.put("key", replay)
        registry = current_registry()
        assert registry.snapshot()["gauges"]["cache.propagator.bytes"] == float(
            cache.stored_bytes
        )
        stored = cache.get("key")
        stored.checkpoints[0].setflags(write=True)
        stored.checkpoints[0][0] = 7.0
        assert cache.get("key") is None  # corrupt drop
        assert registry.snapshot()["gauges"]["cache.propagator.bytes"] == 0.0

    def test_checkpoints_are_frozen_read_only(self):
        replay = self._replay()
        with pytest.raises(ValueError):
            replay.checkpoints[0][0] = 1.0

    def test_corrupted_entry_is_dropped_on_hit(self):
        """A replay whose bytes changed since ``put`` is served as a miss."""
        replay = self._replay()
        cache = PropagatorCache(max_bytes=4 * replay.nbytes)
        cache.put("key", replay)
        stored = cache.get("key")
        assert stored is not None
        # Defeat the read-only freeze the way a stray writer would.
        stored.checkpoints[0].setflags(write=True)
        stored.checkpoints[0][0] = 123.0
        assert cache.get("key") is None
        assert cache.corrupt == 1
        assert len(cache) == 0  # the entry is gone, not just skipped
        assert cache.stored_bytes == 0

    def test_corruption_only_affects_the_damaged_key(self):
        first, second = self._replay(), self._replay()
        cache = PropagatorCache(max_bytes=4 * first.nbytes)
        cache.put("good", first)
        cache.put("bad", second)
        second.checkpoints[0].setflags(write=True)
        second.checkpoints[0][:] = 9.0
        assert cache.get("bad") is None
        assert cache.get("good") is not None
        assert cache.corrupt == 1

    def test_default_cache_is_shared_process_wide(self):
        assert default_propagator_cache() is default_propagator_cache()


class TestRegisteredScenario:
    def test_diurnal_smoke_replays_end_to_end(self):
        spec = scenario("diurnal-24h")
        params = spec.parameters(ExperimentScale.smoke()).with_arrival_rate(0.3)
        profile = spec.transient
        cache = PropagatorCache()
        cold = TransientModel(profile, params, propagator_cache=cache).solve()
        warm = TransientModel(profile, params, propagator_cache=cache).solve()
        assert warm.propagator_hits == profile.schedule.number_of_segments
        assert warm.matvecs == 0
        for metric in cold.points[0].values:
            assert warm.series(metric) == cold.series(metric)
        payload = warm.as_dict()
        assert payload["propagator_hits"] == warm.propagator_hits
        assert payload["segments"][0]["replayed"] is True
