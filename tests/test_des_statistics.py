"""Tests of the DES statistics collectors and batch-means confidence intervals."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.des.batch_means import BatchMeansEstimator
from repro.des.statistics import Counter, Tally, TimeWeightedStatistic


class TestTally:
    def test_matches_numpy_statistics(self, rng):
        values = rng.normal(5.0, 2.0, size=500)
        tally = Tally()
        for value in values:
            tally.record(value)
        assert tally.count == 500
        assert tally.mean == pytest.approx(np.mean(values))
        assert tally.variance == pytest.approx(np.var(values, ddof=1))
        assert tally.standard_deviation == pytest.approx(np.std(values, ddof=1))
        assert tally.minimum == pytest.approx(values.min())
        assert tally.maximum == pytest.approx(values.max())

    def test_empty_tally_behaviour(self):
        tally = Tally()
        assert tally.mean == 0.0
        assert tally.variance == 0.0
        with pytest.raises(ValueError):
            _ = tally.minimum
        with pytest.raises(ValueError):
            _ = tally.maximum

    def test_single_observation(self):
        tally = Tally()
        tally.record(3.5)
        assert tally.mean == 3.5
        assert tally.variance == 0.0

    def test_reset(self):
        tally = Tally("delays")
        tally.record(1.0)
        tally.reset()
        assert tally.count == 0
        assert tally.name == "delays"

    @given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2,
                           max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_property_against_numpy(self, values):
        tally = Tally()
        for value in values:
            tally.record(value)
        assert tally.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-6)
        assert tally.variance == pytest.approx(np.var(values, ddof=1), rel=1e-6, abs=1e-6)


class TestTimeWeightedStatistic:
    def test_piecewise_constant_average(self):
        stat = TimeWeightedStatistic(initial_value=0.0, start_time=0.0)
        stat.update(2.0, time=1.0)   # value 0 for [0,1)
        stat.update(4.0, time=3.0)   # value 2 for [1,3)
        # value 4 for [3,5): average = (0*1 + 2*2 + 4*2) / 5 = 2.4
        assert stat.time_average(5.0) == pytest.approx(2.4)

    def test_average_at_last_update(self):
        stat = TimeWeightedStatistic()
        stat.update(10.0, time=2.0)
        stat.update(0.0, time=4.0)
        assert stat.time_average() == pytest.approx(5.0)

    def test_maximum_tracking(self):
        stat = TimeWeightedStatistic(initial_value=1.0)
        stat.update(7.0, time=1.0)
        stat.update(3.0, time=2.0)
        assert stat.maximum == 7.0

    def test_updates_must_be_ordered(self):
        stat = TimeWeightedStatistic()
        stat.update(1.0, time=5.0)
        with pytest.raises(ValueError):
            stat.update(2.0, time=4.0)

    def test_query_before_last_update_rejected(self):
        stat = TimeWeightedStatistic()
        stat.update(1.0, time=5.0)
        with pytest.raises(ValueError):
            stat.time_average(4.0)

    def test_zero_window_returns_current_value(self):
        stat = TimeWeightedStatistic(initial_value=3.0, start_time=2.0)
        assert stat.time_average(2.0) == 3.0

    def test_reset_restarts_window(self):
        stat = TimeWeightedStatistic(initial_value=10.0)
        stat.update(10.0, time=5.0)
        stat.reset(time=5.0)
        stat.update(0.0, time=6.0)
        # After the reset only [5, 7) counts: value 10 for [5,6), 0 for [6,7).
        assert stat.time_average(7.0) == pytest.approx(5.0)


class TestCounter:
    def test_increment_and_rate(self):
        counter = Counter()
        counter.increment()
        counter.increment(4)
        assert counter.count == 5
        assert counter.rate(10.0) == pytest.approx(0.5)

    def test_zero_elapsed_time(self):
        counter = Counter()
        counter.increment()
        assert counter.rate(0.0) == 0.0

    def test_negative_values_rejected(self):
        counter = Counter()
        with pytest.raises(ValueError):
            counter.increment(-1)
        with pytest.raises(ValueError):
            counter.rate(-1.0)

    def test_reset(self):
        counter = Counter()
        counter.increment(3)
        counter.reset()
        assert counter.count == 0


class TestBatchMeans:
    def test_confidence_interval_matches_t_formula(self):
        batch_means = [10.0, 12.0, 9.0, 11.0, 13.0]
        estimator = BatchMeansEstimator(confidence_level=0.95)
        for value in batch_means:
            estimator.add_batch_mean(value)
        interval = estimator.confidence_interval()
        n = len(batch_means)
        expected_half = stats.t.ppf(0.975, n - 1) * np.std(batch_means, ddof=1) / math.sqrt(n)
        assert interval.mean == pytest.approx(np.mean(batch_means))
        assert interval.half_width == pytest.approx(expected_half)
        assert interval.batches == n

    def test_interval_contains_and_bounds(self):
        estimator = BatchMeansEstimator()
        for value in (1.0, 2.0, 3.0):
            estimator.add_batch_mean(value)
        interval = estimator.confidence_interval()
        assert interval.lower <= interval.mean <= interval.upper
        assert interval.contains(interval.mean)
        assert not interval.contains(interval.upper + 1.0)

    def test_single_batch_gives_infinite_half_width(self):
        estimator = BatchMeansEstimator()
        estimator.add_batch_mean(5.0)
        interval = estimator.confidence_interval()
        assert interval.mean == 5.0
        assert math.isinf(interval.half_width)

    def test_add_observations_batches_correctly(self):
        estimator = BatchMeansEstimator()
        estimator.add_observations(range(100), batches=10)
        assert estimator.batch_count == 10
        assert estimator.mean() == pytest.approx(np.mean(range(100)), abs=0.5)

    def test_add_observations_requires_enough_data(self):
        estimator = BatchMeansEstimator()
        with pytest.raises(ValueError):
            estimator.add_observations([1.0], batches=5)
        with pytest.raises(ValueError):
            estimator.add_observations(range(100), batches=1)

    def test_no_data_raises(self):
        estimator = BatchMeansEstimator()
        with pytest.raises(ValueError):
            estimator.mean()
        with pytest.raises(ValueError):
            estimator.confidence_interval()

    def test_invalid_confidence_level(self):
        with pytest.raises(ValueError):
            BatchMeansEstimator(confidence_level=1.5)

    def test_coverage_of_iid_normal_batches(self, rng):
        """~95% of intervals built from i.i.d. normal batch means cover the true mean."""
        true_mean = 4.0
        covered = 0
        trials = 300
        for _ in range(trials):
            estimator = BatchMeansEstimator(confidence_level=0.95)
            for value in rng.normal(true_mean, 1.0, size=8):
                estimator.add_batch_mean(value)
            if estimator.confidence_interval().contains(true_mean):
                covered += 1
        assert covered / trials == pytest.approx(0.95, abs=0.05)

    def test_relative_half_width(self):
        estimator = BatchMeansEstimator()
        for value in (10.0, 10.5, 9.5, 10.2):
            estimator.add_batch_mean(value)
        interval = estimator.confidence_interval()
        assert interval.relative_half_width == pytest.approx(
            interval.half_width / interval.mean
        )

    def test_reset(self):
        estimator = BatchMeansEstimator()
        estimator.add_batch_mean(1.0)
        estimator.reset()
        assert estimator.batch_count == 0
