"""Tests of the package-level public API surface."""

from __future__ import annotations

import pytest

import repro
import repro.des as des
import repro.experiments as experiments
import repro.markov as markov
import repro.queueing as queueing
import repro.simulator as simulator
import repro.traffic as traffic


class TestTopLevelExports:
    def test_version_is_exposed(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_objects_are_importable(self):
        assert repro.GprsMarkovModel is not None
        assert repro.GprsModelParameters is not None
        assert repro.traffic_model(3).number == 3


@pytest.mark.parametrize(
    "module",
    [markov, queueing, traffic, des, simulator, experiments],
    ids=lambda module: module.__name__,
)
class TestSubpackageExports:
    def test_all_names_resolve(self, module):
        assert module.__all__, f"{module.__name__} exports nothing"
        for name in module.__all__:
            assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_docstring_present(self, module):
        assert module.__doc__ and len(module.__doc__.strip()) > 40


class TestDocstrings:
    def test_public_classes_have_docstrings(self):
        objects = [
            repro.GprsMarkovModel,
            repro.GprsModelParameters,
            repro.GprsStateSpace,
            repro.PacketSessionModel,
            simulator.GprsNetworkSimulator,
            simulator.SimulationConfig,
            des.SimulationEngine,
            des.Process,
            markov.ContinuousTimeMarkovChain,
            queueing.ErlangLossSystem,
        ]
        for obj in objects:
            assert obj.__doc__ and len(obj.__doc__.strip()) > 30, obj
