"""Cross-module integration tests.

These tests exercise the whole stack at once: the analytical model against the
discrete-event simulator, the analytical model against textbook queueing
formulas in limiting regimes, and the figure harness against both.
"""

from __future__ import annotations

import pytest

from repro.core.model import GprsMarkovModel
from repro.core.parameters import GprsModelParameters
from repro.queueing.mmck import MMcKQueue
from repro.simulator.config import SimulationConfig, TcpConfig
from repro.simulator.simulation import GprsNetworkSimulator
from repro.traffic.presets import TRAFFIC_MODEL_3
from repro.traffic.session import PacketSessionModel


class TestModelAgainstSimulator:
    """The validation experiment of Section 5.2 at reduced scale."""

    @pytest.fixture(scope="class")
    def configuration(self) -> GprsModelParameters:
        return GprsModelParameters.from_traffic_model(
            TRAFFIC_MODEL_3,
            total_call_arrival_rate=0.3,
            buffer_size=15,
            max_gprs_sessions=6,
            reserved_pdch=1,
        )

    @pytest.fixture(scope="class")
    def analytical(self, configuration):
        return GprsMarkovModel(configuration).measures()

    @pytest.fixture(scope="class")
    def simulated(self, configuration):
        config = SimulationConfig(
            cell_parameters=configuration,
            number_of_cells=7,
            simulation_time_s=6000.0,
            warmup_time_s=600.0,
            batches=6,
            seed=2002,
        )
        return GprsNetworkSimulator(config).run()

    def test_carried_voice_traffic_agrees(self, analytical, simulated):
        assert simulated.mean("carried_voice_traffic") == pytest.approx(
            analytical.carried_voice_traffic, rel=0.15
        )

    def test_average_gprs_sessions_agree(self, analytical, simulated):
        assert simulated.mean("average_gprs_sessions") == pytest.approx(
            analytical.average_gprs_sessions, rel=0.3
        )

    def test_carried_data_traffic_agrees(self, analytical, simulated):
        assert simulated.mean("carried_data_traffic") == pytest.approx(
            analytical.carried_data_traffic, rel=0.4
        )

    def test_throughput_per_user_same_order(self, analytical, simulated):
        simulated_value = simulated.mean("throughput_per_user")
        assert simulated_value > 0
        assert simulated_value == pytest.approx(analytical.throughput_per_user, rel=0.5)

    def test_loss_probabilities_are_both_moderate(self, analytical, simulated):
        """At this moderate load neither approach predicts a collapsing buffer.

        The two loss metrics are not directly comparable: the Markov model
        reports losses of the TCP-throttled offered stream, while the simulator
        counts every enqueue attempt including TCP retransmissions of packets
        that were already dropped (a single unlucky packet can be counted
        several times).  The model value must stay moderate and the simulator
        value must stay clearly away from total overload.
        """
        assert analytical.packet_loss_probability < 0.5
        assert simulated.mean("packet_loss_probability") < 0.9


class TestModelAgainstQueueingTheory:
    def test_always_on_sources_behave_like_mmck(self):
        """With reading time -> 0 the traffic is Poisson and the buffer is an M/M/c/K queue.

        The comparison uses a configuration where GSM occupancy is negligible
        (no voice traffic), so the number of PDCHs is effectively constant and
        the M/M/c/K closed form applies with c limited by the multislot rule.
        """
        always_on = PacketSessionModel(
            packet_calls_per_session=1000,
            reading_time_s=1e-6,
            packets_per_packet_call=1000,
            packet_interarrival_s=1.0,
            name="always on",
        )
        params = GprsModelParameters(
            total_call_arrival_rate=0.001,
            gprs_fraction=1.0,
            traffic=always_on,
            buffer_size=20,
            max_gprs_sessions=2,
            reserved_pdch=10,
            number_of_channels=20,
            tcp_threshold=1.0,
        )
        model = GprsMarkovModel(params)
        solution = model.solve()
        # Condition on exactly one active session (sessions are rarely more).
        from repro.core.measures import session_count_distribution

        session_marginal = session_count_distribution(
            model.state_space, solution.steady_state.distribution
        )
        assert session_marginal[1] > 0.01
        # The conditional buffer behaviour is close to M/M/c/K with c = 8
        # (multislot limit of one station) and arrival rate 1 packet/s.
        queue = MMcKQueue(
            arrival_rate=1.0,
            service_rate=params.pdch_service_rate,
            servers=8,
            capacity=20,
        )
        # With service far faster than arrivals both systems are almost empty.
        assert solution.measures.mean_queue_length < 1.0
        assert queue.mean_number_in_system() < 1.0
        assert solution.measures.packet_loss_probability == pytest.approx(
            queue.blocking_probability(), abs=1e-3
        )

    def test_light_load_has_negligible_loss_and_delay(self):
        params = GprsModelParameters.from_traffic_model(
            TRAFFIC_MODEL_3, 0.05, buffer_size=10, max_gprs_sessions=4
        )
        measures = GprsMarkovModel(params).measures()
        assert measures.packet_loss_probability < 0.05
        assert measures.queueing_delay < 2.0
        assert measures.voice_blocking_probability < 0.01


class TestSimulatorTcpEffect:
    def test_tcp_flow_control_throttles_a_congested_bottleneck(self):
        """TCP flow control reduces the pressure on the BSC buffer (Figure 5's premise).

        Without flow control every generated packet is pushed into the buffer
        immediately, so at overload packets are discarded at nearly the full
        excess of the generation rate over the service rate.  With TCP the
        congestion windows collapse after losses and the exponential
        retransmission backoff paces the sources, so the *rate* of packets
        dropped at the bottleneck (drops per simulated second) and the loss
        probability both fall sharply, while the served rate stays the same
        (the radio link remains the bottleneck either way).
        """
        params = GprsModelParameters.from_traffic_model(
            TRAFFIC_MODEL_3,
            total_call_arrival_rate=0.8,
            buffer_size=10,
            max_gprs_sessions=8,
            gprs_fraction=0.2,
        )

        def run(tcp_enabled: bool):
            config = SimulationConfig(
                cell_parameters=params,
                number_of_cells=3,
                simulation_time_s=3000.0,
                warmup_time_s=300.0,
                batches=3,
                seed=99,
                tcp=TcpConfig(enabled=tcp_enabled),
            )
            return GprsNetworkSimulator(config).run()

        def loss_rate_per_second(results) -> float:
            observations = results.mid_cell.observations
            lost = sum(o.packets_lost for o in observations)
            duration = sum(o.duration_s for o in observations)
            return lost / duration

        without_tcp = run(False)
        with_tcp = run(True)
        # Both runs actually exercised the buffer and observed some loss.
        assert without_tcp.mean("packet_loss_probability") > 0.0
        assert with_tcp.mean("packet_loss_probability") > 0.0
        # The uncontrolled sources discard packets at several times the rate of
        # the TCP-controlled ones, and their loss probability is clearly higher.
        assert loss_rate_per_second(without_tcp) > 2.0 * loss_rate_per_second(with_tcp)
        assert (
            without_tcp.mean("packet_loss_probability")
            > with_tcp.mean("packet_loss_probability")
        )
        # The delivered throughput is unchanged: the radio link is the bottleneck.
        served_without = sum(o.packets_served for o in without_tcp.mid_cell.observations)
        served_with = sum(o.packets_served for o in with_tcp.mid_cell.observations)
        assert served_without == pytest.approx(served_with, rel=0.2)
