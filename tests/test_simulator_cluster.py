"""Tests of the hexagonal cluster topology."""

from __future__ import annotations

import pytest

from repro.des.random_variates import RandomVariateStream
from repro.simulator.cluster import HexagonalCluster


class TestTopology:
    def test_seven_cell_cluster_structure(self):
        cluster = HexagonalCluster(7)
        assert cluster.number_of_cells == 7
        # The mid cell touches every ring cell.
        assert cluster.neighbours(0) == [1, 2, 3, 4, 5, 6]
        # A ring cell touches the mid cell and its two ring neighbours.
        for cell in range(1, 7):
            neighbours = cluster.neighbours(cell)
            assert 0 in neighbours
            assert len(neighbours) == 3

    def test_mid_cell_identification(self):
        cluster = HexagonalCluster(7)
        assert cluster.is_mid_cell(0)
        assert not cluster.is_mid_cell(3)

    def test_single_cell_cluster_is_self_neighbouring(self):
        cluster = HexagonalCluster(1)
        assert cluster.neighbours(0) == [0]
        stream = RandomVariateStream(1)
        assert cluster.handover_target(0, stream) == 0

    def test_two_cell_cluster(self):
        cluster = HexagonalCluster(2)
        assert cluster.neighbours(0) == [1]
        assert cluster.neighbours(1) == [0]

    def test_invalid_cluster_size(self):
        with pytest.raises(ValueError):
            HexagonalCluster(0)

    def test_invalid_cell_index(self):
        cluster = HexagonalCluster(7)
        with pytest.raises(ValueError):
            cluster.neighbours(7)
        with pytest.raises(ValueError):
            cluster.is_mid_cell(-1)

    def test_handover_target_is_always_a_neighbour(self):
        cluster = HexagonalCluster(7)
        stream = RandomVariateStream(3)
        for cell in range(7):
            neighbours = set(cluster.neighbours(cell))
            for _ in range(25):
                assert cluster.handover_target(cell, stream) in neighbours

    def test_handover_targets_cover_all_neighbours(self):
        cluster = HexagonalCluster(7)
        stream = RandomVariateStream(4)
        seen = {cluster.handover_target(0, stream) for _ in range(200)}
        assert seen == set(cluster.neighbours(0))

    def test_graph_is_connected(self):
        import networkx as nx

        cluster = HexagonalCluster(7)
        assert nx.is_connected(cluster.graph)
