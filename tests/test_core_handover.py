"""Tests of the handover-flow balancing iteration (Eqs. (4)-(5))."""

from __future__ import annotations

import pytest

from repro.core.handover import balance_handover_rates
from repro.core.parameters import GprsModelParameters
from repro.queueing.erlang import ErlangLossSystem
from repro.traffic.presets import TRAFFIC_MODEL_1, TRAFFIC_MODEL_3


class TestBalance:
    def test_converges_for_base_setting(self):
        params = GprsModelParameters.from_traffic_model(TRAFFIC_MODEL_3, 0.5)
        balance = balance_handover_rates(params)
        assert balance.converged
        assert balance.gsm_handover_arrival_rate > 0
        assert balance.gprs_handover_arrival_rate > 0

    def test_fixed_point_property_gsm(self):
        """At the fixed point the incoming rate equals mu_h * E[N] of the loss system."""
        params = GprsModelParameters.from_traffic_model(TRAFFIC_MODEL_3, 0.7)
        balance = balance_handover_rates(params, tol=1e-12)
        system = ErlangLossSystem(
            arrival_rate=params.gsm_arrival_rate + balance.gsm_handover_arrival_rate,
            service_rate=params.gsm_completion_rate + params.gsm_handover_departure_rate,
            servers=params.gsm_channels,
        )
        outgoing = params.gsm_handover_departure_rate * system.mean_number_in_system()
        assert balance.gsm_handover_arrival_rate == pytest.approx(outgoing, rel=1e-8)

    def test_fixed_point_property_gprs(self):
        params = GprsModelParameters.from_traffic_model(TRAFFIC_MODEL_1, 0.6)
        balance = balance_handover_rates(params, tol=1e-12)
        system = ErlangLossSystem(
            arrival_rate=params.gprs_arrival_rate + balance.gprs_handover_arrival_rate,
            service_rate=params.gprs_completion_rate + params.gprs_handover_departure_rate,
            servers=params.max_gprs_sessions,
        )
        outgoing = params.gprs_handover_departure_rate * system.mean_number_in_system()
        assert balance.gprs_handover_arrival_rate == pytest.approx(outgoing, rel=1e-8)

    def test_zero_arrivals_give_zero_handover(self):
        params = GprsModelParameters.from_traffic_model(TRAFFIC_MODEL_3, 0.0)
        balance = balance_handover_rates(params)
        assert balance.gsm_handover_arrival_rate == 0.0
        assert balance.gprs_handover_arrival_rate == 0.0
        assert balance.converged

    def test_pure_voice_traffic(self):
        params = GprsModelParameters.from_traffic_model(
            TRAFFIC_MODEL_3, 0.5, gprs_fraction=0.0
        )
        balance = balance_handover_rates(params)
        assert balance.gprs_handover_arrival_rate == 0.0
        assert balance.gsm_handover_arrival_rate > 0.0

    def test_handover_rate_increases_with_load(self):
        low = balance_handover_rates(
            GprsModelParameters.from_traffic_model(TRAFFIC_MODEL_3, 0.2)
        )
        high = balance_handover_rates(
            GprsModelParameters.from_traffic_model(TRAFFIC_MODEL_3, 0.8)
        )
        assert high.gsm_handover_arrival_rate > low.gsm_handover_arrival_rate
        assert high.gprs_handover_arrival_rate > low.gprs_handover_arrival_rate

    def test_handover_rate_bounded_by_population_limit(self):
        """Outgoing handover flow cannot exceed mu_h times the number of servers."""
        params = GprsModelParameters.from_traffic_model(TRAFFIC_MODEL_3, 5.0)
        balance = balance_handover_rates(params)
        assert balance.gsm_handover_arrival_rate <= (
            params.gsm_handover_departure_rate * params.gsm_channels + 1e-9
        )
        assert balance.gprs_handover_arrival_rate <= (
            params.gprs_handover_departure_rate * params.max_gprs_sessions + 1e-9
        )

    def test_gprs_handover_rate_is_high_for_long_sessions(self):
        """Traffic model 1 sessions last ~2100 s with a 120 s dwell time, so the
        handover flow is several times the fresh session request rate."""
        params = GprsModelParameters.from_traffic_model(TRAFFIC_MODEL_1, 1.0)
        balance = balance_handover_rates(params)
        assert balance.gprs_handover_arrival_rate > 2 * params.gprs_arrival_rate
