"""Tests of the deterministic fault-injection plan and spec grammar."""

from __future__ import annotations

import pytest

import repro.runtime.faults as faults
from repro.runtime.faults import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    WorkerKilled,
    current_fault_plan,
    inject_faults,
    parse_fault_spec,
    run_with_faults,
)


class TestSpecGrammar:
    def test_single_rule(self):
        rules = parse_fault_spec("chunk@1=kill")
        assert rules == (FaultRule(site="chunk", index=1, action="kill"),)

    def test_full_grammar(self):
        rules = parse_fault_spec("cell@2=timeout:5*3")
        assert rules == (
            FaultRule(site="cell", index=2, action="timeout", arg=5.0, times=3),
        )

    def test_comma_separated_list_and_whitespace(self):
        rules = parse_fault_spec(" chunk@0=raise , cache@1=corrupt ,")
        assert [rule.site for rule in rules] == ["chunk", "cache"]
        assert [rule.action for rule in rules] == ["raise", "corrupt"]

    @pytest.mark.parametrize(
        "spec",
        [
            "disk@0=raise",       # unknown site
            "chunk@0=explode",    # unknown action
            "chunk@x=raise",      # non-integer index
            "chunk@0=raise*many", # non-integer times
            "chunk@0=timeout:soon",  # non-numeric arg
        ],
    )
    def test_invalid_specs_raise_value_error(self, spec):
        with pytest.raises(ValueError, match="invalid fault rule"):
            parse_fault_spec(spec)


class TestPlanResolution:
    def test_actions_fire_only_at_their_site_and_index(self):
        plan = FaultPlan.parse("chunk@1=raise")
        assert plan.actions_for("chunk", 1, 0) == (("raise", None),)
        assert plan.actions_for("chunk", 0, 0) == ()
        assert plan.actions_for("cell", 1, 0) == ()

    def test_times_budget_lets_a_retry_escape(self):
        plan = FaultPlan.parse("trajectory@0=raise*2")
        assert plan.actions_for("trajectory", 0, 0) != ()
        assert plan.actions_for("trajectory", 0, 1) != ()
        assert plan.actions_for("trajectory", 0, 2) == ()  # attempt 3 runs clean

    def test_corrupt_rules_never_reach_task_sites(self):
        plan = FaultPlan.parse("cache@0=corrupt")
        assert plan.actions_for("cache", 0, 0) == ()

    def test_take_cache_corruption_consumes_put_ordinals(self):
        plan = FaultPlan.parse("cache@1=corrupt")
        assert plan.take_cache_corruption() is False  # put 0
        assert plan.take_cache_corruption() is True   # put 1
        assert plan.take_cache_corruption() is False  # put 2


class TestActivation:
    def test_no_plan_by_default(self):
        assert current_fault_plan() is None

    def test_inject_faults_scopes_a_plan(self):
        with inject_faults("chunk@0=raise") as plan:
            assert current_fault_plan() is plan
        assert current_fault_plan() is None

    def test_env_fallback_parsed_lazily(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "cell@3=kill")
        monkeypatch.setattr(faults, "_ENV_PLAN", None)
        monkeypatch.setattr(faults, "_ENV_CHECKED", False)
        plan = current_fault_plan()
        assert plan is not None
        assert plan.rules[0] == FaultRule(site="cell", index=3, action="kill")
        # Parsed at most once: the same object is served again.
        assert current_fault_plan() is plan

    def test_contextvar_wins_over_env(self, monkeypatch):
        monkeypatch.setattr(
            faults, "_ENV_PLAN", FaultPlan.parse("chunk@9=raise")
        )
        monkeypatch.setattr(faults, "_ENV_CHECKED", True)
        with inject_faults("cell@0=raise") as scoped:
            assert current_fault_plan() is scoped


class TestRunWithFaults:
    def test_raise_action(self):
        with pytest.raises(InjectedFault):
            run_with_faults((("raise", None),), lambda job: job, 1, False)

    def test_kill_action_serial_stand_in(self):
        """In-process 'kill' raises WorkerKilled instead of real SIGKILL."""
        with pytest.raises(WorkerKilled):
            run_with_faults((("kill", None),), lambda job: job, 1, False)

    def test_timeout_action_sleeps_then_continues(self, monkeypatch):
        naps = []
        monkeypatch.setattr(faults.time, "sleep", naps.append)
        outcome = run_with_faults(
            (("timeout", 0.25),), lambda job: job * 2, 21, False
        )
        assert outcome == 42  # the worker still ran after the sleep
        assert naps == [0.25]

    def test_no_actions_is_a_plain_call(self):
        assert run_with_faults((), lambda job: job + 1, 1, True) == 2
