"""Tests of the guard-channel (cutoff-priority) admission model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.queueing.erlang import ErlangLossSystem
from repro.queueing.guard_channel import GuardChannelSystem


def make_system(guard: int = 2) -> GuardChannelSystem:
    return GuardChannelSystem(
        new_call_rate=0.4,
        handover_rate=0.2,
        service_rate=1.0 / 90.0,
        servers=19,
        guard_channels=guard,
    )


class TestValidation:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            GuardChannelSystem(-1.0, 0.1, 1.0, 10)
        with pytest.raises(ValueError):
            GuardChannelSystem(0.1, -1.0, 1.0, 10)
        with pytest.raises(ValueError):
            GuardChannelSystem(0.1, 0.1, 0.0, 10)
        with pytest.raises(ValueError):
            GuardChannelSystem(0.1, 0.1, 1.0, 0)
        with pytest.raises(ValueError):
            GuardChannelSystem(0.1, 0.1, 1.0, 10, guard_channels=11)
        with pytest.raises(ValueError):
            GuardChannelSystem(0.1, 0.1, 1.0, 10, guard_channels=-1)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            make_system().grade_of_service(handover_weight=-1.0)


class TestZeroGuardChannelsReducesToErlang:
    def test_blocking_matches_erlang_b(self):
        system = GuardChannelSystem(0.3, 0.1, 1.0 / 120.0, 15, guard_channels=0)
        erlang = ErlangLossSystem(arrival_rate=0.4, service_rate=1.0 / 120.0, servers=15)
        assert system.new_call_blocking_probability() == pytest.approx(
            erlang.blocking_probability(), rel=1e-9
        )
        assert system.handover_failure_probability() == pytest.approx(
            erlang.blocking_probability(), rel=1e-9
        )
        assert system.carried_traffic() == pytest.approx(erlang.carried_traffic(), rel=1e-9)


class TestGuardChannelEffect:
    def test_distribution_is_a_probability_vector(self):
        pi = make_system().state_distribution()
        assert pi.sum() == pytest.approx(1.0)
        assert (pi >= 0).all()

    def test_more_guard_channels_protect_handovers(self):
        failures = [
            make_system(guard).handover_failure_probability() for guard in range(0, 6)
        ]
        assert failures == sorted(failures, reverse=True)

    def test_more_guard_channels_hurt_new_calls(self):
        blockings = [
            make_system(guard).new_call_blocking_probability() for guard in range(0, 6)
        ]
        assert blockings == sorted(blockings)

    def test_handover_failure_never_exceeds_new_call_blocking(self):
        for guard in range(0, 8):
            system = make_system(guard)
            assert (
                system.handover_failure_probability()
                <= system.new_call_blocking_probability() + 1e-12
            )

    def test_carried_traffic_decreases_with_guard_channels(self):
        carried = [make_system(guard).carried_traffic() for guard in (0, 4, 8)]
        assert carried == sorted(carried, reverse=True)

    def test_with_guard_channels_returns_modified_copy(self):
        base = make_system(0)
        other = base.with_guard_channels(3)
        assert other.guard_channels == 3
        assert base.guard_channels == 0
        assert other.new_call_rate == base.new_call_rate


class TestDimensioning:
    def test_dimensioning_meets_the_target(self):
        rates = dict(new_call_rate=0.4, handover_rate=0.05, service_rate=1.0 / 90.0, servers=19)
        guard = GuardChannelSystem.dimension_guard_channels(
            **rates, max_handover_failure=0.001
        )
        assert guard is not None
        assert GuardChannelSystem(**rates, guard_channels=guard).handover_failure_probability() <= 0.001
        if guard > 0:
            previous = GuardChannelSystem(**rates, guard_channels=guard - 1)
            assert previous.handover_failure_probability() > 0.001

    def test_unreachable_target_returns_none(self):
        guard = GuardChannelSystem.dimension_guard_channels(
            new_call_rate=50.0,
            handover_rate=50.0,
            service_rate=1.0 / 120.0,
            servers=4,
            max_handover_failure=1e-9,
        )
        assert guard is None

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            GuardChannelSystem.dimension_guard_channels(0.1, 0.1, 1.0, 10,
                                                        max_handover_failure=0.0)


class TestGuardChannelProperties:
    @given(
        new_rate=st.floats(min_value=0.01, max_value=2.0),
        handover_rate=st.floats(min_value=0.01, max_value=2.0),
        servers=st.integers(min_value=2, max_value=30),
        guard=st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=60)
    def test_probabilities_are_probabilities(self, new_rate, handover_rate, servers, guard):
        system = GuardChannelSystem(
            new_call_rate=new_rate,
            handover_rate=handover_rate,
            service_rate=1.0 / 100.0,
            servers=servers,
            guard_channels=min(guard, servers),
        )
        assert 0.0 <= system.new_call_blocking_probability() <= 1.0
        assert 0.0 <= system.handover_failure_probability() <= 1.0
        assert 0.0 <= system.carried_traffic() <= servers
