"""Tests of the Engset finite-source loss model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.queueing.engset import EngsetSystem
from repro.queueing.erlang import ErlangLossSystem


class TestValidation:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            EngsetSystem(sources=0, request_rate=0.1, service_rate=1.0, servers=1)
        with pytest.raises(ValueError):
            EngsetSystem(sources=5, request_rate=0.1, service_rate=1.0, servers=0)
        with pytest.raises(ValueError):
            EngsetSystem(sources=5, request_rate=0.1, service_rate=1.0, servers=6)
        with pytest.raises(ValueError):
            EngsetSystem(sources=5, request_rate=-0.1, service_rate=1.0, servers=2)
        with pytest.raises(ValueError):
            EngsetSystem(sources=5, request_rate=0.1, service_rate=0.0, servers=2)


class TestDistribution:
    def test_distribution_sums_to_one(self):
        system = EngsetSystem(sources=30, request_rate=0.02, service_rate=1.0 / 100.0, servers=10)
        pi = system.state_distribution()
        assert pi.sum() == pytest.approx(1.0)
        assert (pi >= 0).all()
        assert pi.shape == (11,)

    def test_zero_request_rate_keeps_the_system_empty(self):
        system = EngsetSystem(sources=10, request_rate=0.0, service_rate=1.0, servers=5)
        pi = system.state_distribution()
        assert pi[0] == pytest.approx(1.0)
        assert system.time_congestion() == pytest.approx(0.0)
        assert system.carried_traffic() == pytest.approx(0.0)


class TestCongestion:
    def test_call_congestion_below_time_congestion(self):
        """For finite sources the arriving-customer view sees a less loaded system."""
        system = EngsetSystem(sources=12, request_rate=0.05, service_rate=1.0 / 60.0, servers=6)
        assert system.call_congestion() < system.time_congestion()

    def test_full_coverage_never_blocks(self):
        system = EngsetSystem(sources=8, request_rate=0.5, service_rate=1.0, servers=8)
        assert system.call_congestion() == 0.0

    def test_large_population_approaches_erlang_b(self):
        """With many sources of small individual rate the Engset model tends to Erlang."""
        servers = 10
        total_offered_rate = 0.08  # arrivals per second in the Poisson limit
        service_rate = 1.0 / 100.0
        sources = 5000
        system = EngsetSystem(
            sources=sources,
            request_rate=total_offered_rate / sources,
            service_rate=service_rate,
            servers=servers,
        )
        erlang = ErlangLossSystem(
            arrival_rate=total_offered_rate, service_rate=service_rate, servers=servers
        )
        assert system.call_congestion() == pytest.approx(
            erlang.blocking_probability(), rel=0.05
        )

    def test_finite_population_blocks_less_than_poisson(self):
        """The finite-source model is optimistic compared to Erlang-B at equal load."""
        servers = 5
        service_rate = 1.0 / 120.0
        sources = 8
        request_rate = 0.01
        engset = EngsetSystem(sources, request_rate, service_rate, servers)
        erlang = ErlangLossSystem(
            arrival_rate=sources * request_rate, service_rate=service_rate, servers=servers
        )
        assert engset.call_congestion() < erlang.blocking_probability()


class TestCarriedTraffic:
    def test_attempt_rate_balances_carried_traffic(self):
        """Accepted attempts per second equal carried traffic times the service rate."""
        system = EngsetSystem(sources=20, request_rate=0.03, service_rate=1.0 / 80.0, servers=7)
        accepted_rate = system.attempt_rate() * (1.0 - system.call_congestion())
        assert accepted_rate == pytest.approx(
            system.carried_traffic() * system.service_rate, rel=1e-6
        )

    def test_carried_traffic_bounded_by_servers(self):
        system = EngsetSystem(sources=50, request_rate=10.0, service_rate=0.1, servers=9)
        assert system.carried_traffic() <= 9.0 + 1e-9


class TestEngsetProperties:
    @given(
        sources=st.integers(min_value=2, max_value=60),
        servers=st.integers(min_value=1, max_value=60),
        request_rate=st.floats(min_value=1e-4, max_value=5.0),
        service_rate=st.floats(min_value=1e-3, max_value=5.0),
    )
    @settings(max_examples=60)
    def test_congestions_are_probabilities(self, sources, servers, request_rate, service_rate):
        servers = min(servers, sources)
        system = EngsetSystem(sources, request_rate, service_rate, servers)
        assert 0.0 <= system.time_congestion() <= 1.0
        assert 0.0 <= system.call_congestion() <= 1.0
        assert system.call_congestion() <= system.time_congestion() + 1e-12
