"""Tests of the network layer's runtime integration: registry, cache, sweeps."""

from __future__ import annotations

import json

import pytest

from repro.experiments.scale import ExperimentScale
from repro.network import hexagonal_cluster, ring
from repro.network.sweep import network_sweep_payloads, run_network_sweep
from repro.runtime import (
    ResultCache,
    ScenarioSpec,
    list_scenarios,
    result_key,
    run_sweep,
    scenario,
)
from repro.runtime.spec import parameters_to_dict


NETWORK_SCENARIOS = ("homogeneous-7", "hotspot-cluster", "heterogeneous-radio", "ring-16")


class TestRegistry:
    def test_network_scenarios_are_registered(self):
        for name in NETWORK_SCENARIOS:
            spec = scenario(name)
            assert spec.network is not None
            assert "network" in spec.tags

    def test_kind_filter_partitions_the_registry(self):
        network = list_scenarios(kind="network")
        cell = list_scenarios(kind="cell")
        transient = list_scenarios(kind="transient")
        assert {spec.name for spec in network} == set(NETWORK_SCENARIOS)
        assert all(spec.network is None for spec in cell + transient)
        assert len(network) + len(cell) + len(transient) == len(list_scenarios())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario kind"):
            list_scenarios(kind="bogus")

    def test_network_specs_round_trip_through_dicts(self):
        for name in NETWORK_SCENARIOS:
            spec = scenario(name)
            rebuilt = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
            assert rebuilt == spec

    def test_network_field_requires_a_topology(self):
        with pytest.raises(ValueError, match="CellTopology"):
            ScenarioSpec(name="x", description="y", network={"not": "a topology"})


class TestCacheKeys:
    def test_network_points_never_collide_with_single_cell_points(self):
        spec = scenario("homogeneous-7")
        params = parameters_to_dict(spec.parameters(ExperimentScale.smoke()))
        single = result_key(params, solver="auto", solver_tol=1e-9)
        network = result_key(
            params,
            solver="auto",
            solver_tol=1e-9,
            kind="network",
            network=spec.network.to_dict(),
        )
        assert single != network

    def test_topology_digest_separates_networks(self):
        spec = scenario("homogeneous-7")
        params = parameters_to_dict(spec.parameters(ExperimentScale.smoke()))
        keys = {
            result_key(
                params,
                solver="auto",
                solver_tol=1e-9,
                kind="network",
                network=topology.to_dict(),
            )
            for topology in (
                hexagonal_cluster(7),
                ring(7),
                hexagonal_cluster(7, overrides={0: {"reserved_pdch": 3}}),
            )
        }
        assert len(keys) == 3


def _smoke_spec(name: str = "homogeneous-7") -> ScenarioSpec:
    """A registered network scenario shrunk to a 3-cell smoke topology."""
    return scenario(name).replace(network=hexagonal_cluster(3))


class TestNetworkSweep:
    def test_payloads_cover_every_rate_in_order(self):
        scale = ExperimentScale.smoke()
        spec = _smoke_spec()
        payloads = network_sweep_payloads(spec, scale)
        assert len(payloads) == len(scale.arrival_rates)
        for (payload, from_cache), rate in zip(payloads, scale.arrival_rates):
            assert not from_cache
            assert len(payload["cells"]) == 3
            assert payload["aggregates"]["total_call_arrival_rate"] == pytest.approx(rate)

    def test_single_cell_spec_rejected(self):
        with pytest.raises(ValueError, match="no network topology"):
            network_sweep_payloads(scenario("figure12"), ExperimentScale.smoke())

    def test_warm_continuation_skips_cold_solves_after_the_first_point(self):
        # Structured solver forced: the counters only count solves whose
        # solver consumed the seed, and 'auto' picks direct at smoke scale.
        spec = _smoke_spec().replace(solver="structured")
        payloads = network_sweep_payloads(spec, ExperimentScale.smoke())
        first, later = payloads[0][0], payloads[1][0]
        assert first["cold_solves"] == 3
        assert later["cold_solves"] == 0

    def test_cold_sweep_matches_warm_within_solver_tolerance(self):
        scale = ExperimentScale.smoke()
        spec = _smoke_spec()
        warm = network_sweep_payloads(spec, scale, warm=True)
        cold = network_sweep_payloads(spec, scale, warm=False)
        for (warm_payload, _), (cold_payload, _) in zip(warm, cold):
            for key, value in cold_payload["aggregates"].items():
                assert warm_payload["aggregates"][key] == pytest.approx(
                    value, abs=1e-8
                )

    def test_cache_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        scale = ExperimentScale.smoke()
        spec = _smoke_spec()
        first = network_sweep_payloads(spec, scale, cache=cache)
        assert all(not hit for _, hit in first)
        second = network_sweep_payloads(spec, scale, cache=cache)
        assert all(hit for _, hit in second)
        assert [payload for payload, _ in second] == [payload for payload, _ in first]

    def test_run_network_sweep_result_shape(self, tmp_path):
        result = run_network_sweep(
            scenario("hotspot-cluster"),
            ExperimentScale.smoke(),
            cache=ResultCache(tmp_path),
        )
        assert result.cache_misses == len(result.points)
        assert len(result.series("voice_blocking_probability")) == len(result.points)
        point = result.points[0]
        assert len(point.cell_series("voice_blocking_probability")) == 7
        payload = json.loads(json.dumps(result.as_dict()))
        assert payload["scenario"]["name"] == "hotspot-cluster"


class TestPipelinedSweep:
    """The two-level points x cells scheduler of network sweeps."""

    def test_pipelined_parallel_is_bitwise_identical_to_serial(self):
        scale = ExperimentScale.smoke()
        spec = _smoke_spec()
        serial = network_sweep_payloads(spec, scale, pipelined=True, jobs=1)
        parallel = network_sweep_payloads(spec, scale, pipelined=True, jobs=2)
        assert [payload for payload, _ in serial] == [
            payload for payload, _ in parallel
        ]

    def test_pipelined_payloads_carry_the_job_counter(self):
        scale = ExperimentScale.smoke()
        spec = _smoke_spec()
        pipelined = network_sweep_payloads(spec, scale, pipelined=True)
        sequential = network_sweep_payloads(spec, scale)
        for payload, _ in pipelined:
            assert payload["pipelined_jobs"] == payload["solver_calls"] > 0
        for payload, _ in sequential:
            assert "pipelined_jobs" not in payload

    def test_pipelined_matches_sequential_within_solver_tolerance(self):
        """Dropping the cross-point continuation only moves values within tol."""
        scale = ExperimentScale.smoke()
        spec = _smoke_spec()
        sequential = network_sweep_payloads(spec, scale)
        pipelined = network_sweep_payloads(spec, scale, pipelined=True)
        for (a, _), (b, _) in zip(sequential, pipelined):
            for key, value in a["aggregates"].items():
                assert b["aggregates"][key] == pytest.approx(
                    value, rel=1e-7, abs=1e-8
                )

    def test_pipelined_cache_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        scale = ExperimentScale.smoke()
        spec = _smoke_spec()
        first = network_sweep_payloads(spec, scale, cache=cache, pipelined=True)
        assert all(not hit for _, hit in first)
        second = network_sweep_payloads(spec, scale, cache=cache, pipelined=True)
        assert all(hit for _, hit in second)
        assert [payload for payload, _ in second] == [payload for payload, _ in first]
        # Pipelined and sequential runs share keys (provenance is not hashed).
        third = network_sweep_payloads(spec, scale, cache=cache)
        assert all(hit for _, hit in third)

    def test_run_network_sweep_reports_pipelined_jobs(self):
        result = run_network_sweep(
            _smoke_spec(), ExperimentScale.smoke(), cache=None, pipelined=True
        )
        assert result.pipelined_jobs == sum(
            point.payload["solver_calls"] for point in result.points
        )
        sequential = run_network_sweep(
            _smoke_spec(), ExperimentScale.smoke(), cache=None
        )
        assert sequential.pipelined_jobs == 0

    def test_run_sweep_rejects_pipelined_for_single_cell_scenarios(self):
        with pytest.raises(ValueError, match="network scenarios"):
            run_sweep(
                scenario("figure12"),
                ExperimentScale.smoke(),
                cache=None,
                pipelined=True,
            )

    def test_run_sweep_dispatches_pipelined_network_scenarios(self, tmp_path):
        cache = ResultCache(tmp_path)
        scale = ExperimentScale.smoke()
        result = run_sweep(_smoke_spec(), scale, cache=cache, pipelined=True)
        assert len(result.points) == len(scale.arrival_rates)
        assert "voice_blocking_probability" in result.points[0].values


class TestRunSweepDispatch:
    def test_run_sweep_serves_network_aggregates(self, tmp_path):
        cache = ResultCache(tmp_path)
        scale = ExperimentScale.smoke()
        spec = _smoke_spec()
        result = run_sweep(spec, scale, cache=cache)
        assert len(result.points) == len(scale.arrival_rates)
        assert "voice_blocking_probability" in result.points[0].values
        rerun = run_sweep(spec, scale, cache=cache)
        assert rerun.cache_hits == len(rerun.points)
        assert [point.values for point in rerun.points] == [
            point.values for point in result.points
        ]

    def test_explicit_chunk_size_rejected_for_network_scenarios(self):
        with pytest.raises(ValueError, match="single-cell"):
            run_sweep(_smoke_spec(), ExperimentScale.smoke(), cache=None, chunk_size=4)

    def test_network_and_single_cell_sweeps_share_no_cache_entries(self, tmp_path):
        """Same effective base parameters, disjoint key spaces."""
        cache = ResultCache(tmp_path)
        scale = ExperimentScale.smoke()
        run_sweep(_smoke_spec(), scale, cache=cache)
        entries_after_network = len(cache)
        single = scenario("figure12").replace(
            gprs_fraction=scenario("homogeneous-7").gprs_fraction,
            reserved_pdch=scenario("homogeneous-7").reserved_pdch,
        )
        result = run_sweep(single, scale, cache=cache)
        assert result.cache_hits == 0
        assert len(cache) == entries_after_network + len(result.points)
