"""Tests of the M/M/c/K queue closed forms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov.birth_death import BirthDeathChain
from repro.queueing.erlang import ErlangLossSystem
from repro.queueing.mmck import MMcKQueue


class TestValidation:
    def test_capacity_below_servers_rejected(self):
        with pytest.raises(ValueError):
            MMcKQueue(1.0, 1.0, servers=3, capacity=2)

    def test_non_positive_service_rate_rejected(self):
        with pytest.raises(ValueError):
            MMcKQueue(1.0, 0.0, servers=1, capacity=2)

    def test_negative_arrival_rate_rejected(self):
        with pytest.raises(ValueError):
            MMcKQueue(-1.0, 1.0, servers=1, capacity=2)

    def test_zero_servers_rejected(self):
        with pytest.raises(ValueError):
            MMcKQueue(1.0, 1.0, servers=0, capacity=2)


class TestClosedForms:
    def test_reduces_to_erlang_loss_when_no_waiting_room(self):
        queue = MMcKQueue(3.0, 1.0, servers=5, capacity=5)
        loss = ErlangLossSystem(3.0, 1.0, 5)
        assert queue.state_distribution() == pytest.approx(loss.state_distribution())
        assert queue.blocking_probability() == pytest.approx(loss.blocking_probability())

    def test_matches_birth_death_chain(self):
        queue = MMcKQueue(2.0, 0.7, servers=3, capacity=8)
        chain = BirthDeathChain.mmck(2.0, 0.7, servers=3, capacity=8)
        assert queue.state_distribution() == pytest.approx(
            chain.stationary_distribution(), abs=1e-12
        )

    def test_mm1k_known_solution(self):
        rho = 0.5
        queue = MMcKQueue(rho, 1.0, servers=1, capacity=4)
        expected = np.array([rho**k for k in range(5)])
        expected /= expected.sum()
        assert queue.state_distribution() == pytest.approx(expected)

    def test_throughput_flow_balance(self):
        """Accepted arrivals equal served customers: X = lambda (1 - P_loss) = mu * E[busy]."""
        queue = MMcKQueue(4.0, 1.0, servers=3, capacity=10)
        assert queue.throughput() == pytest.approx(
            queue.service_rate * queue.mean_busy_servers(), rel=1e-10
        )

    def test_littles_law_consistency(self):
        queue = MMcKQueue(2.5, 1.0, servers=2, capacity=12)
        # L = X * W for the waiting room and for the whole system.
        assert queue.mean_queue_length() == pytest.approx(
            queue.throughput() * queue.mean_waiting_time(), rel=1e-10
        )
        assert queue.mean_number_in_system() == pytest.approx(
            queue.throughput() * queue.mean_sojourn_time(), rel=1e-10
        )

    def test_zero_arrival_rate_queue_is_empty(self):
        queue = MMcKQueue(0.0, 1.0, servers=2, capacity=5)
        assert queue.mean_number_in_system() == pytest.approx(0.0)
        assert queue.mean_waiting_time() == pytest.approx(0.0)
        assert queue.blocking_probability() == pytest.approx(0.0)


class TestMonotonicity:
    @given(
        arrival=st.floats(min_value=0.1, max_value=20.0),
        service=st.floats(min_value=0.1, max_value=5.0),
        servers=st.integers(min_value=1, max_value=8),
        extra=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_blocking_decreases_with_capacity(self, arrival, service, servers, extra):
        small = MMcKQueue(arrival, service, servers, servers + extra)
        large = MMcKQueue(arrival, service, servers, servers + extra + 3)
        assert large.blocking_probability() <= small.blocking_probability() + 1e-12

    @given(
        arrival=st.floats(min_value=0.1, max_value=20.0),
        capacity=st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_distribution_is_valid(self, arrival, capacity):
        queue = MMcKQueue(arrival, 1.0, servers=1, capacity=capacity)
        pi = queue.state_distribution()
        assert np.all(pi >= 0)
        assert pi.sum() == pytest.approx(1.0)
