"""Tests of the (n, k, m, r) state-space enumeration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.state_space import GprsStateSpace


class TestSize:
    @pytest.mark.parametrize(
        "gsm,buffer,sessions",
        [(19, 100, 20), (19, 100, 50), (16, 100, 50), (5, 10, 4), (0, 0, 0)],
    )
    def test_size_formula(self, gsm, buffer, sessions):
        space = GprsStateSpace(gsm, buffer, sessions)
        expected = (sessions + 1) * (sessions + 2) // 2 * (gsm + 1) * (buffer + 1)
        assert space.size == expected
        assert len(space) == expected

    def test_paper_state_count(self):
        """Traffic model 3 base setting: 1/2 * 21 * 22 * 20 * 101 states."""
        space = GprsStateSpace(gsm_channels=19, buffer_size=100, max_sessions=20)
        assert space.size == 466_620

    def test_negative_dimensions_rejected(self):
        with pytest.raises(ValueError):
            GprsStateSpace(-1, 5, 5)
        with pytest.raises(ValueError):
            GprsStateSpace(5, -1, 5)
        with pytest.raises(ValueError):
            GprsStateSpace(5, 5, -1)


class TestEncodingDecoding:
    @pytest.fixture
    def space(self) -> GprsStateSpace:
        return GprsStateSpace(gsm_channels=4, buffer_size=6, max_sessions=3)

    def test_roundtrip_every_state(self, space):
        indices = np.arange(space.size)
        states = space.decode(indices)
        recovered = space.index(
            states.gsm_calls, states.buffered_packets, states.gprs_sessions,
            states.sessions_off,
        )
        assert np.array_equal(recovered, indices)

    def test_indices_are_unique_and_dense(self, space):
        seen = set()
        for index, n, k, m, r in space.iter_states():
            assert 0 <= index < space.size
            assert (n, k, m, r) not in seen
            seen.add((n, k, m, r))
            assert 0 <= r <= m
        assert len(seen) == space.size

    def test_scalar_index_returns_int(self, space):
        index = space.index(1, 2, 3, 1)
        assert isinstance(index, int)
        assert space.state_tuple(index) == (1, 2, 3, 1)

    def test_sessions_on_helper(self, space):
        states = space.all_states()
        assert np.array_equal(
            states.sessions_on, states.gprs_sessions - states.sessions_off
        )

    def test_out_of_range_encoding_rejected(self, space):
        with pytest.raises(ValueError):
            space.index(5, 0, 0, 0)
        with pytest.raises(ValueError):
            space.index(0, 7, 0, 0)
        with pytest.raises(ValueError):
            space.index(0, 0, 4, 0)
        with pytest.raises(ValueError):
            space.index(0, 0, 2, 3)  # r > m
        with pytest.raises(ValueError):
            space.index(-1, 0, 0, 0)

    def test_out_of_range_decoding_rejected(self, space):
        with pytest.raises(ValueError):
            space.decode(np.array([space.size]))
        with pytest.raises(ValueError):
            space.decode(np.array([-1]))

    @given(
        gsm=st.integers(min_value=0, max_value=10),
        buffer=st.integers(min_value=0, max_value=12),
        sessions=st.integers(min_value=0, max_value=8),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_random_states(self, gsm, buffer, sessions, seed):
        space = GprsStateSpace(gsm, buffer, sessions)
        rng = np.random.default_rng(seed)
        n = rng.integers(0, gsm + 1, size=20)
        k = rng.integers(0, buffer + 1, size=20)
        m = rng.integers(0, sessions + 1, size=20)
        r = np.array([rng.integers(0, mi + 1) for mi in m])
        indices = space.index(n, k, m, r)
        decoded = space.decode(indices)
        assert np.array_equal(decoded.gsm_calls, n)
        assert np.array_equal(decoded.buffered_packets, k)
        assert np.array_equal(decoded.gprs_sessions, m)
        assert np.array_equal(decoded.sessions_off, r)
