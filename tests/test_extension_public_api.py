"""Public-API tests of the extension subpackages (radio, adaptive, validation).

Mirrors ``test_public_api.py`` for the subsystems added on top of the paper's
core reproduction: every name advertised in ``__all__`` must be importable and
the central objects must be constructible with documented defaults.
"""

from __future__ import annotations

import importlib

import pytest


@pytest.mark.parametrize(
    "module_name",
    [
        "repro.radio",
        "repro.adaptive",
        "repro.validation",
        "repro.network",
        "repro.transient",
        "repro.traffic.applications",
        "repro.traffic.statistics",
        "repro.markov.phase_type",
        "repro.markov.map_process",
        "repro.markov.qbd",
        "repro.markov.absorption",
        "repro.queueing.guard_channel",
        "repro.queueing.engset",
        "repro.queueing.priority",
        "repro.queueing.map_queue",
        "repro.experiments.sensitivity",
        "repro.experiments.extensions",
    ],
)
def test_every_advertised_name_is_importable(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__") and module.__all__, module_name
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name} is advertised but missing"


def test_top_level_markov_exports_include_the_extensions():
    import repro.markov as markov

    for name in ("PhaseTypeDistribution", "MarkovianArrivalProcess",
                 "QuasiBirthDeathProcess", "solve_finite_level_chain",
                 "expected_time_to_absorption"):
        assert name in markov.__all__
        assert hasattr(markov, name)


def test_top_level_queueing_exports_include_the_extensions():
    import repro.queueing as queueing

    for name in ("GuardChannelSystem", "EngsetSystem", "PreemptivePrioritySharing",
                 "MapMcKQueue"):
        assert name in queueing.__all__
        assert hasattr(queueing, name)


def test_radio_package_round_trip():
    """The documented one-liner: C/I -> BLER -> ARQ goodput -> model parameters."""
    from repro import GprsModelParameters
    from repro.radio import block_error_rate, effective_service_rate

    bler = block_error_rate("CS-2", ci_db=9.0)
    assert 0.0 < bler < 1.0
    params = GprsModelParameters(total_call_arrival_rate=0.1, block_error_rate=bler)
    assert params.pdch_service_rate == pytest.approx(
        effective_service_rate("CS-2", bler), rel=1e-9
    )


def test_adaptive_package_round_trip():
    from repro.adaptive import (
        AdaptiveAllocationController,
        LoadSupervisor,
        StaticAllocationPolicy,
    )

    controller = AdaptiveAllocationController(
        LoadSupervisor(window_s=60.0, minimum_samples=1),
        StaticAllocationPolicy(2),
        initial_reserved=1,
        decision_interval_s=10.0,
    )
    decision = controller.on_call_arrival(1.0)
    assert decision is not None and decision.reserved_pdch == 2


def test_validation_package_round_trip():
    from repro.validation import compare_series, is_monotone

    curve = compare_series("m", [0.1, 0.2], [1.0, 2.0], [1.1, 2.1], [0.2, 0.2])
    assert curve.coverage == 1.0
    assert is_monotone([1.0, 2.0, 3.0])
