"""Tests of the allocation policies and the adaptive controller."""

from __future__ import annotations

import pytest

from repro.adaptive.controller import AdaptiveAllocationController, evaluate_policy
from repro.adaptive.policies import (
    ModelDrivenPolicy,
    StaticAllocationPolicy,
    UtilizationThresholdPolicy,
)
from repro.adaptive.supervision import LoadObservation, LoadSupervisor
from repro.core.parameters import GprsModelParameters
from repro.experiments.dimensioning import QosProfile
from repro.traffic.presets import TRAFFIC_MODEL_3


def observation(rate: float = 0.3, utilization: float = 0.5) -> LoadObservation:
    return LoadObservation(time_s=0.0, call_arrival_rate=rate,
                           pdch_utilization=utilization, samples=10)


def small_parameters(**overrides) -> GprsModelParameters:
    values = dict(buffer_size=10, max_gprs_sessions=5)
    values.update(overrides)
    return GprsModelParameters.from_traffic_model(TRAFFIC_MODEL_3, 0.2, **values)


class TestStaticPolicy:
    def test_always_returns_the_same_reservation(self):
        policy = StaticAllocationPolicy(3)
        assert policy.decide(observation(0.1, 0.0), current_reserved=1) == 3
        assert policy.decide(observation(2.0, 1.0), current_reserved=7) == 3

    def test_negative_reservation_rejected(self):
        with pytest.raises(ValueError):
            StaticAllocationPolicy(-1)


class TestThresholdPolicy:
    def test_upgrades_on_high_utilization(self):
        policy = UtilizationThresholdPolicy(upgrade_threshold=0.8, release_threshold=0.3)
        assert policy.decide(observation(utilization=0.95), current_reserved=2) == 3

    def test_releases_on_low_utilization(self):
        policy = UtilizationThresholdPolicy(upgrade_threshold=0.8, release_threshold=0.3)
        assert policy.decide(observation(utilization=0.1), current_reserved=2) == 1

    def test_hysteresis_band_keeps_the_reservation(self):
        policy = UtilizationThresholdPolicy(upgrade_threshold=0.8, release_threshold=0.3)
        assert policy.decide(observation(utilization=0.5), current_reserved=2) == 2

    def test_bounds_are_respected(self):
        policy = UtilizationThresholdPolicy(minimum_reserved=1, maximum_reserved=4)
        assert policy.decide(observation(utilization=0.99), current_reserved=4) == 4
        assert policy.decide(observation(utilization=0.0), current_reserved=1) == 1

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            UtilizationThresholdPolicy(upgrade_threshold=0.0)
        with pytest.raises(ValueError):
            UtilizationThresholdPolicy(upgrade_threshold=0.5, release_threshold=0.6)
        with pytest.raises(ValueError):
            UtilizationThresholdPolicy(minimum_reserved=5, maximum_reserved=2)


class TestModelDrivenPolicy:
    def test_higher_load_needs_at_least_as_many_pdchs(self):
        policy = ModelDrivenPolicy(
            small_parameters(),
            QosProfile(max_throughput_degradation=0.5),
            candidate_reservations=(0, 1, 2, 4),
        )
        low = policy.decide(observation(rate=0.05), current_reserved=1)
        high = policy.decide(observation(rate=0.9), current_reserved=1)
        assert high >= low

    def test_decisions_are_cached_per_rate(self):
        policy = ModelDrivenPolicy(
            small_parameters(), QosProfile(), candidate_reservations=(0, 1, 2)
        )
        first = policy.decide(observation(rate=0.3), current_reserved=1)
        second = policy.decide(observation(rate=0.3), current_reserved=2)
        assert first == second

    def test_invalid_candidates_rejected(self):
        with pytest.raises(ValueError):
            ModelDrivenPolicy(small_parameters(), QosProfile(), candidate_reservations=())
        with pytest.raises(ValueError):
            ModelDrivenPolicy(
                small_parameters(), QosProfile(), candidate_reservations=(25,)
            )


class TestController:
    def test_decisions_respect_the_decision_interval(self):
        controller = AdaptiveAllocationController(
            LoadSupervisor(window_s=300.0, minimum_samples=1),
            StaticAllocationPolicy(2),
            initial_reserved=1,
            decision_interval_s=100.0,
        )
        first = controller.on_call_arrival(10.0)
        assert first is not None and first.reserved_pdch == 2
        # Too soon for another decision.
        assert controller.on_call_arrival(20.0) is None
        assert controller.on_call_arrival(150.0) is not None

    def test_reallocation_count_tracks_changes(self):
        controller = AdaptiveAllocationController(
            LoadSupervisor(window_s=100.0, minimum_samples=1),
            UtilizationThresholdPolicy(upgrade_threshold=0.8, release_threshold=0.2),
            initial_reserved=2,
            decision_interval_s=1.0,
        )
        controller.on_utilization_sample(0.0, 0.9)   # upgrade -> 3
        controller.on_utilization_sample(10.0, 0.9)  # upgrade -> 4
        controller.on_utilization_sample(20.0, 0.5)  # hold
        assert controller.current_reserved_pdch == 4
        assert controller.reallocation_count == 2

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveAllocationController(
                LoadSupervisor(), StaticAllocationPolicy(1), initial_reserved=-1
            )
        with pytest.raises(ValueError):
            AdaptiveAllocationController(
                LoadSupervisor(), StaticAllocationPolicy(1), decision_interval_s=0.0
            )


class TestPolicyEvaluation:
    def test_static_policies_never_reallocate(self):
        evaluation = evaluate_policy(
            small_parameters(), StaticAllocationPolicy(2), [0.1, 0.4, 0.8]
        )
        assert evaluation.reallocations == 0
        assert all(epoch.reserved_pdch == 2 for epoch in evaluation.epochs)
        assert len(evaluation.epochs) == 3

    def test_model_driven_policy_beats_the_minimal_static_reservation(self):
        """Adapting the reservation yields at least the throughput of always-one-PDCH."""
        parameters = small_parameters()
        trajectory = [0.05, 0.2, 0.5, 0.9]
        static = evaluate_policy(parameters, StaticAllocationPolicy(1), trajectory)
        adaptive = evaluate_policy(
            parameters,
            ModelDrivenPolicy(
                parameters,
                QosProfile(max_throughput_degradation=0.5),
                candidate_reservations=(1, 2, 4),
            ),
            trajectory,
        )
        assert adaptive.mean_throughput_per_user_kbit_s() >= (
            static.mean_throughput_per_user_kbit_s() - 1e-9
        )
        assert adaptive.mean_reserved_pdch() >= 1.0

    def test_threshold_policy_reacts_to_model_predicted_utilization(self):
        parameters = small_parameters()
        evaluation = evaluate_policy(
            parameters,
            UtilizationThresholdPolicy(upgrade_threshold=0.6, release_threshold=0.1,
                                       minimum_reserved=1, maximum_reserved=4),
            [0.05, 0.6, 0.9, 0.9],
            initial_reserved=1,
        )
        assert len(evaluation.epochs) == 4
        assert evaluation.worst_packet_loss() <= 1.0
        assert evaluation.worst_voice_blocking() <= 1.0

    def test_empty_trajectory_rejected(self):
        with pytest.raises(ValueError):
            evaluate_policy(small_parameters(), StaticAllocationPolicy(1), [])
