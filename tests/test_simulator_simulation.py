"""Tests of the traffic factories and the end-to-end network simulation."""

from __future__ import annotations

import pytest

from repro.core.parameters import GprsModelParameters
from repro.des.engine import SimulationEngine
from repro.des.random_variates import RandomVariateStream
from repro.simulator.cell import Cell
from repro.simulator.cluster import HexagonalCluster
from repro.simulator.config import SimulationConfig, TcpConfig
from repro.simulator.gprs import GprsSessionFactory
from repro.simulator.gsm import VoiceCallFactory
from repro.simulator.results import BatchObservation, CellMeasurements
from repro.simulator.simulation import GprsNetworkSimulator
from repro.traffic.presets import TRAFFIC_MODEL_3


def small_params(**overrides) -> GprsModelParameters:
    values = dict(
        total_call_arrival_rate=0.5, buffer_size=10, max_gprs_sessions=5,
    )
    values.update(overrides)
    return GprsModelParameters.from_traffic_model(TRAFFIC_MODEL_3, **values)


def small_config(**overrides) -> SimulationConfig:
    values = dict(
        cell_parameters=small_params(),
        number_of_cells=3,
        simulation_time_s=600.0,
        warmup_time_s=60.0,
        batches=3,
        seed=7,
    )
    values.update(overrides)
    return SimulationConfig(**values)


class TestVoiceCallFactory:
    def test_voice_calls_are_generated_and_complete(self):
        engine = SimulationEngine()
        cluster = HexagonalCluster(3)
        params = small_params(gprs_fraction=0.0)
        cells = [Cell(engine, i, params) for i in range(3)]
        factory = VoiceCallFactory(engine, cluster, cells, RandomVariateStream(1))
        factory.start()
        engine.run(until=2000.0)
        assert factory.calls_started > 0
        assert factory.calls_completed > 0
        total_active = sum(cell.gsm_calls_in_progress for cell in cells)
        assert total_active <= 3 * params.gsm_channels

    def test_blocking_occurs_when_capacity_is_tiny(self):
        engine = SimulationEngine()
        cluster = HexagonalCluster(1)
        params = small_params(number_of_channels=3, reserved_pdch=1,
                              total_call_arrival_rate=2.0, gprs_fraction=0.0)
        cells = [Cell(engine, 0, params)]
        factory = VoiceCallFactory(engine, cluster, cells, RandomVariateStream(2))
        factory.start()
        engine.run(until=2000.0)
        assert cells[0].statistics.gsm_calls_blocked.count > 0

    def test_cell_count_mismatch_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            VoiceCallFactory(engine, HexagonalCluster(3),
                             [Cell(engine, 0, small_params())], RandomVariateStream(1))


class TestGprsSessionFactory:
    def test_sessions_generate_packets_and_complete(self):
        engine = SimulationEngine()
        cluster = HexagonalCluster(2)
        params = small_params(gprs_fraction=1.0, total_call_arrival_rate=0.05)
        cells = [Cell(engine, i, params) for i in range(2)]
        for cell in cells:
            cell.start_scheduler()
        factory = GprsSessionFactory(engine, cluster, cells, RandomVariateStream(3),
                                     TcpConfig())
        factory.start()
        engine.run(until=3000.0)
        assert factory.sessions_started > 0
        served = sum(cell.statistics.packets_served.count for cell in cells)
        assert served > 0
        assert factory.sessions_completed > 0

    def test_session_blocking_when_cap_is_one(self):
        engine = SimulationEngine()
        cluster = HexagonalCluster(1)
        params = small_params(gprs_fraction=1.0, total_call_arrival_rate=0.5,
                              max_gprs_sessions=1)
        cells = [Cell(engine, 0, params)]
        cells[0].start_scheduler()
        factory = GprsSessionFactory(engine, cluster, cells, RandomVariateStream(4),
                                     TcpConfig())
        factory.start()
        engine.run(until=2000.0)
        assert factory.sessions_blocked > 0


class TestSimulationResultsContainers:
    def test_batch_observation_derived_metrics(self):
        observation = BatchObservation(
            duration_s=100.0, carried_data_traffic=2.0, mean_buffer_occupancy=5.0,
            mean_gsm_calls=10.0, mean_gprs_sessions=4.0, packets_offered=200,
            packets_lost=20, packets_served=180, mean_packet_delay_s=0.5,
            gsm_calls_offered=50, gsm_calls_blocked=5, gprs_sessions_offered=10,
            gprs_sessions_blocked=1,
        )
        assert observation.packet_loss_probability == pytest.approx(0.1)
        assert observation.packet_throughput == pytest.approx(1.8)
        assert observation.throughput_per_user == pytest.approx(0.45)
        assert observation.voice_blocking_probability == pytest.approx(0.1)
        assert observation.gprs_blocking_probability == pytest.approx(0.1)

    def test_zero_denominators_are_safe(self):
        observation = BatchObservation(
            duration_s=0.0, carried_data_traffic=0.0, mean_buffer_occupancy=0.0,
            mean_gsm_calls=0.0, mean_gprs_sessions=0.0, packets_offered=0,
            packets_lost=0, packets_served=0, mean_packet_delay_s=0.0,
            gsm_calls_offered=0, gsm_calls_blocked=0, gprs_sessions_offered=0,
            gprs_sessions_blocked=0,
        )
        assert observation.packet_loss_probability == 0.0
        assert observation.packet_throughput == 0.0
        assert observation.throughput_per_user == 0.0
        assert observation.voice_blocking_probability == 0.0

    def test_cell_measurements_require_observations(self):
        measurements = CellMeasurements()
        with pytest.raises(ValueError):
            measurements.interval("carried_data_traffic")

    def test_unknown_metric_rejected(self):
        measurements = CellMeasurements()
        measurements.add(
            BatchObservation(
                duration_s=1.0, carried_data_traffic=1.0, mean_buffer_occupancy=0.0,
                mean_gsm_calls=0.0, mean_gprs_sessions=0.0, packets_offered=0,
                packets_lost=0, packets_served=0, mean_packet_delay_s=0.0,
                gsm_calls_offered=0, gsm_calls_blocked=0, gprs_sessions_offered=0,
                gprs_sessions_blocked=0,
            )
        )
        with pytest.raises(KeyError):
            measurements.interval("no_such_metric")


class TestEndToEndSimulation:
    def test_full_run_produces_sane_measures(self):
        results = GprsNetworkSimulator(small_config()).run()
        assert results.events_processed > 0
        assert results.total_simulated_time_s == pytest.approx(660.0)
        values = results.as_dict()
        assert 0.0 <= values["packet_loss_probability"] <= 1.0
        assert 0.0 <= values["voice_blocking_probability"] <= 1.0
        assert 0.0 <= values["carried_data_traffic"] <= 20.0
        assert values["carried_voice_traffic"] > 0.0
        assert values["average_gprs_sessions"] >= 0.0
        assert values["queueing_delay"] >= 0.0

    def test_reproducible_with_same_seed(self):
        first = GprsNetworkSimulator(small_config(seed=11)).run()
        second = GprsNetworkSimulator(small_config(seed=11)).run()
        assert first.mean("carried_data_traffic") == pytest.approx(
            second.mean("carried_data_traffic")
        )
        assert first.events_processed == second.events_processed

    def test_different_seeds_differ(self):
        first = GprsNetworkSimulator(small_config(seed=11)).run()
        second = GprsNetworkSimulator(small_config(seed=12)).run()
        assert first.events_processed != second.events_processed

    def test_confidence_intervals_have_expected_batch_count(self):
        config = small_config(batches=4)
        results = GprsNetworkSimulator(config).run()
        interval = results.interval("carried_data_traffic")
        assert interval.batches == 4
        assert interval.half_width >= 0.0

    def test_compare_with_analytical_measures(self):
        from repro.core.model import GprsMarkovModel

        params = small_params()
        results = GprsNetworkSimulator(small_config()).run()
        analytical = GprsMarkovModel(params).measures()
        comparison = results.compare_with(analytical)
        assert set(comparison) >= {"carried_data_traffic", "packet_loss_probability"}
        for entry in comparison.values():
            assert "simulation_mean" in entry and "analytical" in entry

    def test_higher_load_carries_more_voice_traffic(self):
        low = GprsNetworkSimulator(
            small_config(cell_parameters=small_params(total_call_arrival_rate=0.1))
        ).run()
        high = GprsNetworkSimulator(
            small_config(cell_parameters=small_params(total_call_arrival_rate=0.8))
        ).run()
        assert high.mean("carried_voice_traffic") > low.mean("carried_voice_traffic")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            small_config(number_of_cells=0)
        with pytest.raises(ValueError):
            small_config(simulation_time_s=0.0)
        with pytest.raises(ValueError):
            small_config(batches=1)
        with pytest.raises(ValueError):
            small_config(warmup_time_s=-1.0)

    def test_config_helpers(self):
        config = small_config(simulation_time_s=900.0, warmup_time_s=100.0, batches=3)
        assert config.batch_duration_s == pytest.approx(300.0)
        assert config.total_time_s == pytest.approx(1000.0)
        replaced = config.replace(batches=5)
        assert replaced.batches == 5
        assert config.batches == 3
