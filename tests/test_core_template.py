"""Tests of the frozen-sparsity generator template."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.generator import build_generator
from repro.core.handover import balance_handover_rates
from repro.core.parameters import GprsModelParameters
from repro.core.state_space import GprsStateSpace
from repro.core.template import GeneratorTemplate
from repro.traffic.presets import TRAFFIC_MODEL_1, TRAFFIC_MODEL_3


def _params(rate: float = 0.4, **overrides) -> GprsModelParameters:
    defaults = {"buffer_size": 6, "max_gprs_sessions": 3}
    defaults.update(overrides)
    return GprsModelParameters.from_traffic_model(TRAFFIC_MODEL_3, rate, **defaults)


def _generators(params, template):
    balance = balance_handover_rates(params)
    kwargs = {
        "gsm_handover_arrival_rate": balance.gsm_handover_arrival_rate,
        "gprs_handover_arrival_rate": balance.gprs_handover_arrival_rate,
    }
    built, _ = build_generator(params, template.space, **kwargs)
    templated = template.generator(params, **kwargs)
    return built, templated


class TestBitwiseEquality:
    def test_matches_build_generator_bitwise_across_rates(self):
        """The rewritten data array must equal a fresh assembly bit for bit."""
        template = GeneratorTemplate.build(_params())
        for rate in (0.05, 0.3, 0.8, 1.6):
            built, templated = _generators(_params(rate), template)
            assert np.array_equal(built.indptr, templated.indptr)
            assert np.array_equal(built.indices, templated.indices)
            assert np.array_equal(built.data, templated.data)

    def test_matches_for_other_traffic_model(self):
        params = GprsModelParameters.from_traffic_model(
            TRAFFIC_MODEL_1, 0.5, buffer_size=5, max_gprs_sessions=2
        )
        template = GeneratorTemplate.build(params)
        built, templated = _generators(params.with_arrival_rate(0.9), template)
        assert np.array_equal(built.data, templated.data)

    def test_zero_arrival_rate_is_numerically_equivalent(self):
        """At rate 0 the template keeps explicit zero slots.

        The stored pattern is then a strict superset, so the diagonal row
        sums may differ at machine rounding -- but nothing more.
        """
        template = GeneratorTemplate.build(_params())
        params = _params(0.0)
        balance = balance_handover_rates(params)
        kwargs = {
            "gsm_handover_arrival_rate": balance.gsm_handover_arrival_rate,
            "gprs_handover_arrival_rate": balance.gprs_handover_arrival_rate,
        }
        built, _ = build_generator(params, template.space, **kwargs)
        templated = template.generator(params, **kwargs)
        difference = built - templated
        assert abs(difference).max() < 1e-12 if difference.nnz else True


class TestValidation:
    def test_matches_only_across_arrival_rates(self):
        template = GeneratorTemplate.build(_params())
        assert template.matches(_params(2.0))
        assert not template.matches(_params(0.4, buffer_size=7))
        assert not template.matches(_params(0.4).replace(gprs_fraction=0.2))

    def test_mismatched_parameters_raise(self):
        template = GeneratorTemplate.build(_params())
        with pytest.raises(ValueError):
            template.generator(
                _params(0.4, buffer_size=7),
                gsm_handover_arrival_rate=0.0,
                gprs_handover_arrival_rate=0.0,
            )

    def test_negative_handover_rate_raises(self):
        template = GeneratorTemplate.build(_params())
        with pytest.raises(ValueError):
            template.generator(
                _params(),
                gsm_handover_arrival_rate=-1.0,
                gprs_handover_arrival_rate=0.0,
            )

    def test_shares_supplied_state_space(self):
        params = _params()
        space = GprsStateSpace(
            params.gsm_channels, params.buffer_size, params.max_gprs_sessions
        )
        template = GeneratorTemplate.build(params, space)
        assert template.space is space
        assert template.number_of_states == space.size

    def test_generator_rows_sum_to_zero(self):
        template = GeneratorTemplate.build(_params())
        _, templated = _generators(_params(1.2), template)
        rows = np.asarray(templated.sum(axis=1)).ravel()
        assert np.max(np.abs(rows)) < 1e-10
