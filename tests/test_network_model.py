"""Tests of the multi-cell network model: anchor, hotspot, warm starts."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.handover import HandoverBalance, balance_handover_rates
from repro.core.model import GprsMarkovModel
from repro.core.parameters import GprsModelParameters
from repro.network import (
    NetworkModel,
    hexagonal_cluster,
    hotspot,
    network_erlang_rates,
    ring,
)
from repro.traffic.presets import TRAFFIC_MODEL_3


def _params(rate: float = 0.5) -> GprsModelParameters:
    return GprsModelParameters.from_traffic_model(
        TRAFFIC_MODEL_3, rate, buffer_size=6, max_gprs_sessions=3
    )


class TestHomogeneityAnchor:
    """A uniform wrap-around network must reproduce the single-cell model."""

    def test_erlang_prepass_matches_single_cell_balance(self):
        params = _params(0.7)
        reference = balance_handover_rates(params)
        gsm_in, gprs_in, _, converged = network_erlang_rates(
            hexagonal_cluster(7), [params] * 7
        )
        assert converged
        assert np.all(np.abs(gsm_in - reference.gsm_handover_arrival_rate) <= 1e-8)
        assert np.all(np.abs(gprs_in - reference.gprs_handover_arrival_rate) <= 1e-8)

    @pytest.mark.parametrize("topology_factory", [hexagonal_cluster, ring])
    def test_uniform_network_reproduces_single_cell_rates(self, topology_factory):
        params = _params()
        reference = balance_handover_rates(params)
        result = NetworkModel(topology_factory(7), params).solve()
        assert result.converged
        for cell in result.cells:
            assert cell.gsm_incoming_rate == pytest.approx(
                reference.gsm_handover_arrival_rate, abs=1e-8
            )
            assert cell.gprs_incoming_rate == pytest.approx(
                reference.gprs_handover_arrival_rate, abs=1e-8
            )

    def test_uniform_network_reproduces_single_cell_measures(self):
        params = _params()
        single = GprsMarkovModel(params).solve().measures.as_dict()
        result = NetworkModel(hexagonal_cluster(7), params).solve()
        for cell in result.cells:
            values = cell.measures.as_dict()
            for key, reference in single.items():
                assert values[key] == pytest.approx(reference, abs=1e-8), key
        # Aggregates of a uniform network equal the per-cell values.
        for key, reference in single.items():
            assert result.aggregates[key] == pytest.approx(reference, abs=1e-8)

    def test_homogeneity_check_helper_passes_at_1e8(self):
        from repro.validation.network import check_network_homogeneity

        check = check_network_homogeneity(_params(), tolerance=1e-8)
        assert check.passed, check.summary()
        assert "PASS" in check.summary()

    def test_homogeneity_check_rejects_heterogeneous_topologies(self):
        from repro.network import grid, hotspot
        from repro.validation.network import check_network_homogeneity

        with pytest.raises(ValueError, match="without overrides"):
            check_network_homogeneity(
                _params(), topology=hotspot(3, arrival_multiplier=2.0)
            )
        with pytest.raises(ValueError, match="doubly stochastic"):
            check_network_homogeneity(_params(), topology=grid(2, 3, wrap=False))

    def test_single_cell_wraparound_topology_is_the_paper_model(self):
        params = _params(0.3)
        single = GprsMarkovModel(params).solve()
        result = NetworkModel(hexagonal_cluster(1), params).solve()
        assert result.cells[0].gsm_incoming_rate == pytest.approx(
            single.handover.gsm_handover_arrival_rate, abs=1e-8
        )


class TestWarmStartAccounting:
    """The counters track solves whose solver actually consumed a seed, so
    the structured solver is forced (GTH/direct at these sizes would ignore
    the seeds and honestly count every solve as cold)."""

    def test_only_the_first_outer_iteration_is_cold(self):
        result = NetworkModel(
            hexagonal_cluster(5), _params(), solver_method="structured"
        ).solve()
        assert result.outer_iterations >= 2
        assert result.solver_calls == 5 * result.outer_iterations
        assert result.cold_solves == 5
        assert result.warm_solves == result.solver_calls - 5
        assert result.warm_solves >= 5

    def test_seed_ignoring_direct_solver_counts_as_cold(self):
        """At this scale 'auto' resolves to a direct solver: honest counters."""
        result = NetworkModel(hexagonal_cluster(3), _params()).solve()
        assert result.cold_solves == result.solver_calls

    def test_initial_distributions_make_even_the_first_iteration_warm(self):
        params = _params()
        first = NetworkModel(
            hexagonal_cluster(3), params, solver_method="structured"
        ).solve()
        second = NetworkModel(
            hexagonal_cluster(3),
            params.with_arrival_rate(0.55),
            solver_method="structured",
            initial_rates=first.incoming_rates(),
            initial_distributions=first.distributions,
        ).solve()
        assert second.cold_solves == 0

    def test_wrong_number_of_initial_distributions_raises(self):
        with pytest.raises(ValueError, match="one vector per cell"):
            NetworkModel(
                hexagonal_cluster(3),
                _params(),
                initial_distributions=(np.ones(4),),
            )


class TestOuterLoopFreezing:
    """freeze_tol skips re-solving cells whose incoming rates stopped moving."""

    def _topology(self):
        # The registered heterogeneous-radio layout at test size: two CS-1
        # cells amid CS-2 neighbours, so cells converge unevenly.
        return hexagonal_cluster(7, overrides={
            3: {"coding_scheme": "CS-1", "block_error_rate": 0.10},
            4: {"coding_scheme": "CS-1", "block_error_rate": 0.10},
        })

    def test_disabled_by_default(self):
        result = NetworkModel(ring(3), _params()).solve()
        assert result.frozen_solves == 0
        assert result.as_dict()["frozen_solves"] == 0

    def test_negative_freeze_tol_rejected(self):
        with pytest.raises(ValueError, match="freeze_tol"):
            NetworkModel(ring(3), _params(), freeze_tol=-1e-9)

    def test_freezing_saves_converged_cell_solves_on_heterogeneous_radio(self):
        topology = self._topology()
        params = _params(0.6)
        plain = NetworkModel(topology, params).solve()
        frozen = NetworkModel(topology, params, freeze_tol=1e-8).solve()
        assert plain.converged and frozen.converged
        assert plain.frozen_solves == 0
        # The final outer iteration re-solves only the cells still drifting:
        # at least n - 1 solves are saved.
        cells = topology.number_of_cells
        assert frozen.frozen_solves >= cells - 1
        assert frozen.solver_calls + frozen.frozen_solves == plain.solver_calls

    def test_frozen_measures_match_unfrozen_within_tolerance(self):
        topology = self._topology()
        params = _params(0.6)
        plain = NetworkModel(topology, params).solve()
        frozen = NetworkModel(topology, params, freeze_tol=1e-8).solve()
        worst = max(
            abs(a.measures.as_dict()[key] - b.measures.as_dict()[key])
            for a, b in zip(plain.cells, frozen.cells)
            for key in a.measures.as_dict()
        )
        assert worst <= 1e-8

    def test_freezing_is_deterministic_across_jobs(self):
        topology = self._topology()
        params = _params(0.6)
        serial = NetworkModel(topology, params, freeze_tol=1e-8, jobs=1).solve()
        parallel = NetworkModel(topology, params, freeze_tol=1e-8, jobs=2).solve()
        assert serial.frozen_solves == parallel.frozen_solves
        for a, b in zip(serial.cells, parallel.cells):
            assert a.measures.as_dict() == b.measures.as_dict()


class TestParallelExecution:
    def test_parallel_cells_bitwise_identical_to_serial(self):
        params = _params()
        topology = hotspot(5, arrival_multiplier=2.0)
        serial = NetworkModel(topology, params, jobs=1).solve()
        parallel = NetworkModel(topology, params, jobs=3).solve()
        assert serial.converged and parallel.converged
        for left, right in zip(serial.cells, parallel.cells):
            assert left.measures == right.measures
            assert left.gsm_incoming_rate == right.gsm_incoming_rate
            assert left.gprs_incoming_rate == right.gprs_incoming_rate
        assert serial.convergence_trace == parallel.convergence_trace


class TestHotspot:
    def test_hot_cell_blocks_more_than_its_neighbours(self):
        result = NetworkModel(
            hotspot(7, arrival_multiplier=2.5), _params()
        ).solve()
        hot = result.cells[0].measures
        for neighbour in result.cells[1:]:
            assert (
                hot.voice_blocking_probability
                > neighbour.measures.voice_blocking_probability
            )
            assert (
                hot.gprs_blocking_probability
                > neighbour.measures.gprs_blocking_probability
            )

    def test_neighbours_absorb_overflow_monotonically(self):
        """A hotter hot cell pushes monotonically more handover flow outward."""
        params = _params()
        neighbour_gsm_in = []
        neighbour_blocking = []
        for multiplier in (1.0, 1.5, 2.0, 2.5):
            result = NetworkModel(
                hotspot(7, arrival_multiplier=multiplier), params
            ).solve()
            neighbour_gsm_in.append(result.cells[1].gsm_incoming_rate)
            neighbour_blocking.append(
                result.cells[1].measures.voice_blocking_probability
            )
        assert all(
            later > earlier
            for earlier, later in zip(neighbour_gsm_in, neighbour_gsm_in[1:])
        )
        assert all(
            later > earlier
            for earlier, later in zip(neighbour_blocking, neighbour_blocking[1:])
        )


class TestHeterogeneousRadio:
    def test_degraded_cells_lose_more_packets(self):
        topology = hexagonal_cluster(
            5, overrides={2: {"coding_scheme": "CS-1", "block_error_rate": 0.2}}
        )
        result = NetworkModel(topology, _params()).solve()
        degraded = result.cells[2].measures
        healthy = result.cells[0].measures
        assert degraded.packet_loss_probability > healthy.packet_loss_probability
        assert (
            degraded.throughput_per_user_kbit_s < healthy.throughput_per_user_kbit_s
        )


class TestNetworkResult:
    def test_as_dict_is_json_serialisable(self):
        result = NetworkModel(ring(3), _params(0.3)).solve()
        payload = json.loads(json.dumps(result.as_dict()))
        assert len(payload["cells"]) == 3
        assert payload["outer_iterations"] == result.outer_iterations
        assert payload["aggregates"]["carried_data_traffic"] == pytest.approx(
            result.aggregate("carried_data_traffic")
        )

    def test_series_total_and_aggregate(self):
        result = NetworkModel(ring(4), _params(0.3)).solve()
        series = result.series("carried_data_traffic")
        assert len(series) == 4
        assert result.total("carried_data_traffic") == pytest.approx(sum(series))
        assert result.aggregate("carried_data_traffic") == pytest.approx(
            sum(series) / 4
        )


class TestPinnedHandover:
    def test_pinned_balance_skips_the_fixed_point(self):
        params = _params(0.4)
        pinned = HandoverBalance.pinned(0.123, 0.045)
        model = GprsMarkovModel(params, fixed_handover_balance=pinned)
        assert model.handover_balance is pinned
        assert model.handover_balance.gsm_iterations == 0

    def test_pinned_rejects_negative_rates(self):
        with pytest.raises(ValueError, match="non-negative"):
            HandoverBalance.pinned(-0.1, 0.0)

    def test_pinned_and_seed_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="pins the rates"):
            GprsMarkovModel(
                _params(),
                fixed_handover_balance=HandoverBalance.pinned(0.1, 0.1),
                initial_handover_rates=(0.1, 0.1),
            )
