"""Tests of the GPRS model parameters (Table 2 defaults and derived rates)."""

from __future__ import annotations

import pytest

from repro.core.parameters import GprsModelParameters
from repro.traffic.presets import TRAFFIC_MODEL_1, TRAFFIC_MODEL_3


class TestDefaultsMatchTable2:
    def test_base_values(self):
        params = GprsModelParameters(total_call_arrival_rate=0.5)
        assert params.number_of_channels == 20
        assert params.reserved_pdch == 1
        assert params.buffer_size == 100
        assert params.coding_scheme == "CS-2"
        assert params.mean_gsm_call_duration_s == 120.0
        assert params.mean_gsm_dwell_time_s == 60.0
        assert params.mean_gprs_dwell_time_s == 120.0
        assert params.gprs_fraction == 0.05
        assert params.tcp_threshold == 0.7

    def test_pdch_rate_is_cs2(self):
        params = GprsModelParameters(total_call_arrival_rate=0.5)
        assert params.pdch_rate_kbit_s == pytest.approx(13.4)
        assert params.pdch_service_rate == pytest.approx(13400 / 3840)

    def test_describe_reports_percentages(self):
        description = GprsModelParameters(total_call_arrival_rate=0.5).describe()
        assert description["percentage of GSM users"] == pytest.approx(95.0)
        assert description["percentage of GPRS users"] == pytest.approx(5.0)


class TestDerivedRates:
    def test_arrival_rate_split(self):
        params = GprsModelParameters(total_call_arrival_rate=1.0, gprs_fraction=0.1)
        assert params.gsm_arrival_rate == pytest.approx(0.9)
        assert params.gprs_arrival_rate == pytest.approx(0.1)
        assert params.gsm_arrival_rate + params.gprs_arrival_rate == pytest.approx(1.0)

    def test_departure_rates(self):
        params = GprsModelParameters(total_call_arrival_rate=0.5)
        assert params.gsm_completion_rate == pytest.approx(1 / 120)
        assert params.gsm_handover_departure_rate == pytest.approx(1 / 60)
        assert params.gprs_handover_departure_rate == pytest.approx(1 / 120)

    def test_gprs_completion_rate_follows_traffic_model(self):
        params = GprsModelParameters.from_traffic_model(TRAFFIC_MODEL_3, 0.5)
        assert params.gprs_completion_rate == pytest.approx(1 / 312.5)

    def test_gsm_channels(self):
        params = GprsModelParameters(total_call_arrival_rate=0.5, reserved_pdch=4)
        assert params.gsm_channels == 16

    def test_session_start_phase_probability(self):
        params = GprsModelParameters.from_traffic_model(TRAFFIC_MODEL_3, 0.5)
        a = params.on_to_off_rate
        b = params.off_to_on_rate
        assert params.probability_session_starts_on == pytest.approx(b / (a + b))

    def test_tcp_threshold_packets(self):
        params = GprsModelParameters(total_call_arrival_rate=0.5, buffer_size=100,
                                     tcp_threshold=0.7)
        assert params.tcp_threshold_packets == 70

    def test_state_space_size_formula(self):
        params = GprsModelParameters(
            total_call_arrival_rate=0.5, buffer_size=100, max_gprs_sessions=20,
            reserved_pdch=1, number_of_channels=20,
        )
        # (M+1)(M+2)/2 * (N_GSM+1) * (K+1) = 231 * 20 * 101
        assert params.state_space_size == 231 * 20 * 101


class TestConstructionHelpers:
    def test_from_traffic_model_sets_session_cap(self):
        params = GprsModelParameters.from_traffic_model(TRAFFIC_MODEL_1, 0.3)
        assert params.max_gprs_sessions == 50
        assert params.traffic is TRAFFIC_MODEL_1.session

    def test_from_traffic_model_overrides(self):
        params = GprsModelParameters.from_traffic_model(
            TRAFFIC_MODEL_1, 0.3, max_gprs_sessions=7, reserved_pdch=2
        )
        assert params.max_gprs_sessions == 7
        assert params.reserved_pdch == 2

    def test_with_arrival_rate_only_changes_rate(self):
        base = GprsModelParameters.from_traffic_model(TRAFFIC_MODEL_3, 0.3)
        changed = base.with_arrival_rate(0.9)
        assert changed.total_call_arrival_rate == pytest.approx(0.9)
        assert changed.traffic is base.traffic
        assert changed.buffer_size == base.buffer_size

    def test_replace(self):
        base = GprsModelParameters(total_call_arrival_rate=0.5)
        changed = base.replace(reserved_pdch=3, gprs_fraction=0.1)
        assert changed.reserved_pdch == 3
        assert changed.gprs_fraction == pytest.approx(0.1)
        assert base.reserved_pdch == 1  # original unchanged (frozen dataclass)


class TestValidation:
    def test_negative_arrival_rate_rejected(self):
        with pytest.raises(ValueError):
            GprsModelParameters(total_call_arrival_rate=-0.1)

    def test_gprs_fraction_bounds(self):
        with pytest.raises(ValueError):
            GprsModelParameters(total_call_arrival_rate=0.5, gprs_fraction=1.5)
        with pytest.raises(ValueError):
            GprsModelParameters(total_call_arrival_rate=0.5, gprs_fraction=-0.1)

    def test_reserved_pdch_must_leave_gsm_channels(self):
        with pytest.raises(ValueError):
            GprsModelParameters(total_call_arrival_rate=0.5, reserved_pdch=20)
        with pytest.raises(ValueError):
            GprsModelParameters(total_call_arrival_rate=0.5, reserved_pdch=-1)

    def test_buffer_and_session_bounds(self):
        with pytest.raises(ValueError):
            GprsModelParameters(total_call_arrival_rate=0.5, buffer_size=0)
        with pytest.raises(ValueError):
            GprsModelParameters(total_call_arrival_rate=0.5, max_gprs_sessions=0)

    def test_unknown_coding_scheme_rejected(self):
        with pytest.raises(ValueError):
            GprsModelParameters(total_call_arrival_rate=0.5, coding_scheme="CS-7")

    def test_eta_bounds(self):
        with pytest.raises(ValueError):
            GprsModelParameters(total_call_arrival_rate=0.5, tcp_threshold=0.0)
        with pytest.raises(ValueError):
            GprsModelParameters(total_call_arrival_rate=0.5, tcp_threshold=1.2)

    def test_durations_must_be_positive(self):
        with pytest.raises(ValueError):
            GprsModelParameters(total_call_arrival_rate=0.5, mean_gsm_call_duration_s=0.0)
        with pytest.raises(ValueError):
            GprsModelParameters(total_call_arrival_rate=0.5, mean_gsm_dwell_time_s=-1.0)
        with pytest.raises(ValueError):
            GprsModelParameters(total_call_arrival_rate=0.5, mean_gprs_dwell_time_s=0.0)


class TestBlockErrorRateExtension:
    """The ARQ goodput extension (future work of the paper, see repro.radio)."""

    def test_default_is_an_error_free_link(self):
        params = GprsModelParameters(total_call_arrival_rate=0.1)
        assert params.block_error_rate == 0.0
        assert params.expected_block_transmissions == 1.0

    def test_service_rate_degrades_with_bler(self):
        clean = GprsModelParameters(total_call_arrival_rate=0.1)
        lossy = clean.replace(block_error_rate=0.25)
        assert lossy.pdch_service_rate == pytest.approx(0.75 * clean.pdch_service_rate)
        assert lossy.expected_block_transmissions == pytest.approx(1.0 / 0.75)

    def test_nominal_rate_is_unchanged_by_bler(self):
        lossy = GprsModelParameters(total_call_arrival_rate=0.1, block_error_rate=0.3)
        assert lossy.pdch_rate_kbit_s == pytest.approx(13.4)

    def test_invalid_bler_rejected(self):
        with pytest.raises(ValueError):
            GprsModelParameters(total_call_arrival_rate=0.1, block_error_rate=1.0)
        with pytest.raises(ValueError):
            GprsModelParameters(total_call_arrival_rate=0.1, block_error_rate=-0.1)
