"""Tests of link adaptation (coding-scheme selection)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.radio.bler import block_error_rate
from repro.radio.link_adaptation import (
    LinkAdaptationPolicy,
    best_coding_scheme,
    goodput_kbit_s,
    switching_thresholds,
)
from repro.traffic.units import CODING_SCHEME_RATES_KBIT_S

SCHEMES = ("CS-1", "CS-2", "CS-3", "CS-4")


class TestBestCodingScheme:
    def test_poor_link_uses_the_most_robust_scheme(self):
        assert best_coding_scheme(-5.0) == "CS-1"

    def test_clean_link_uses_the_fastest_scheme(self):
        assert best_coding_scheme(40.0) == "CS-4"

    def test_choice_maximises_goodput(self):
        for ci in (-5.0, 2.0, 8.0, 12.0, 18.0, 30.0):
            chosen = best_coding_scheme(ci)
            chosen_rate = goodput_kbit_s(chosen, ci)
            for scheme in SCHEMES:
                assert chosen_rate >= goodput_kbit_s(scheme, ci) - 1e-9

    def test_selected_scheme_is_monotone_in_ci(self):
        """Better links never select a more robust (slower) scheme."""
        order = {scheme: i for i, scheme in enumerate(SCHEMES)}
        previous = -1
        for ci in [x / 2.0 for x in range(-20, 81)]:
            index = order[best_coding_scheme(ci)]
            assert index >= previous
            previous = index


class TestSwitchingThresholds:
    def test_every_adjacent_pair_has_a_threshold(self):
        thresholds = switching_thresholds()
        assert set(thresholds) == {("CS-1", "CS-2"), ("CS-2", "CS-3"), ("CS-3", "CS-4")}

    def test_thresholds_are_increasing(self):
        thresholds = switching_thresholds()
        values = [
            thresholds[("CS-1", "CS-2")],
            thresholds[("CS-2", "CS-3")],
            thresholds[("CS-3", "CS-4")],
        ]
        assert values == sorted(values)

    def test_goodputs_cross_at_the_threshold(self):
        thresholds = switching_thresholds(resolution_db=0.001)
        for (below, above), ci in thresholds.items():
            assert goodput_kbit_s(below, ci) == pytest.approx(
                goodput_kbit_s(above, ci), rel=0.01
            )

    def test_invalid_scan_range_rejected(self):
        with pytest.raises(ValueError):
            switching_thresholds(low_ci_db=10.0, high_ci_db=0.0)
        with pytest.raises(ValueError):
            switching_thresholds(resolution_db=0.0)


class TestLinkAdaptationPolicy:
    def test_initial_scheme_is_reported_before_any_observation(self):
        policy = LinkAdaptationPolicy(initial_scheme="CS-3")
        assert policy.current_scheme == "CS-3"
        assert policy.history == []

    def test_policy_converges_to_the_optimal_scheme(self):
        policy = LinkAdaptationPolicy(hysteresis_db=0.0, initial_scheme="CS-1")
        for _ in range(6):
            policy.observe(30.0)
        assert policy.current_scheme == "CS-4"
        policy_down = LinkAdaptationPolicy(hysteresis_db=0.0, initial_scheme="CS-4")
        for _ in range(6):
            policy_down.observe(-5.0)
        assert policy_down.current_scheme == "CS-1"

    def test_policy_moves_one_step_per_observation(self):
        policy = LinkAdaptationPolicy(hysteresis_db=0.0, initial_scheme="CS-1")
        policy.observe(40.0)
        assert policy.current_scheme == "CS-2"
        policy.observe(40.0)
        assert policy.current_scheme == "CS-3"

    def test_hysteresis_prevents_flapping_at_a_threshold(self):
        thresholds = switching_thresholds()
        boundary = thresholds[("CS-2", "CS-3")]
        policy = LinkAdaptationPolicy(hysteresis_db=1.5, initial_scheme="CS-2")
        # Measurements oscillating tightly around the boundary never flip the scheme.
        for offset in (0.3, -0.3, 0.4, -0.4, 0.2, -0.2):
            policy.observe(boundary + offset)
        assert set(policy.history) == {"CS-2"}

    def test_large_swings_do_change_the_scheme_despite_hysteresis(self):
        policy = LinkAdaptationPolicy(hysteresis_db=1.5, initial_scheme="CS-2")
        for _ in range(5):
            policy.observe(35.0)
        assert policy.current_scheme == "CS-4"

    def test_history_records_every_observation(self):
        policy = LinkAdaptationPolicy()
        for ci in (5.0, 10.0, 15.0):
            policy.observe(ci)
        assert len(policy.history) == 3

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            LinkAdaptationPolicy(hysteresis_db=-1.0)
        with pytest.raises(ValueError):
            LinkAdaptationPolicy(initial_scheme="CS-9")


class TestLinkAdaptationProperties:
    @given(ci=st.floats(min_value=-30.0, max_value=60.0))
    @settings(max_examples=60)
    def test_best_scheme_goodput_dominates_all_schemes(self, ci):
        chosen = best_coding_scheme(ci)
        for scheme in SCHEMES:
            assert goodput_kbit_s(chosen, ci) >= goodput_kbit_s(scheme, ci) - 1e-9

    @given(ci=st.floats(min_value=-30.0, max_value=60.0))
    @settings(max_examples=60)
    def test_goodput_never_exceeds_nominal_rate(self, ci):
        for scheme in SCHEMES:
            nominal = CODING_SCHEME_RATES_KBIT_S[scheme]
            assert goodput_kbit_s(scheme, ci) <= nominal * (1.0 - block_error_rate(scheme, ci)) + 1e-9
