"""Tests of the random sampling of 3GPP packet-service sessions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traffic.presets import TRAFFIC_MODEL_3
from repro.traffic.sampling import SessionSampler
from repro.traffic.session import PacketSessionModel


@pytest.fixture
def sampler(rng) -> SessionSampler:
    return SessionSampler(TRAFFIC_MODEL_3.session, rng)


class TestSampling:
    def test_session_has_at_least_one_packet_call(self, sampler):
        for _ in range(50):
            trace = sampler.sample_session()
            assert trace.number_of_packet_calls >= 1
            assert trace.number_of_packets >= 1

    def test_packet_times_are_increasing(self, sampler):
        trace = sampler.sample_session()
        times = trace.all_packet_times()
        assert np.all(np.diff(times) >= 0)

    def test_session_starts_at_requested_time(self, sampler):
        trace = sampler.sample_session(start_time=100.0)
        assert trace.packet_calls[0].start_time == pytest.approx(100.0)
        assert np.all(trace.all_packet_times() >= 100.0)

    def test_geometric_means_match_model(self, rng):
        model = TRAFFIC_MODEL_3.session
        sampler = SessionSampler(model, rng)
        calls = [sampler.sample_number_of_packet_calls() for _ in range(4000)]
        packets = [sampler.sample_number_of_packets() for _ in range(4000)]
        assert np.mean(calls) == pytest.approx(model.packet_calls_per_session, rel=0.1)
        assert np.mean(packets) == pytest.approx(model.packets_per_packet_call, rel=0.1)

    def test_exponential_means_match_model(self, rng):
        model = TRAFFIC_MODEL_3.session
        sampler = SessionSampler(model, rng)
        readings = [sampler.sample_reading_time() for _ in range(4000)]
        gaps = [sampler.sample_packet_interarrival() for _ in range(4000)]
        assert np.mean(readings) == pytest.approx(model.reading_time_s, rel=0.1)
        assert np.mean(gaps) == pytest.approx(model.packet_interarrival_s, rel=0.1)

    def test_degenerate_single_packet_session(self, rng):
        """An FTP-like model with one packet call still produces a valid trace."""
        model = PacketSessionModel(
            packet_calls_per_session=1,
            reading_time_s=10.0,
            packets_per_packet_call=1,
            packet_interarrival_s=0.5,
        )
        sampler = SessionSampler(model, rng)
        trace = sampler.sample_session()
        assert trace.number_of_packet_calls == 1
        assert trace.number_of_packets >= 1

    def test_mean_session_packet_count(self, rng):
        """Average packets per sampled session matches N_pc * N_d."""
        model = TRAFFIC_MODEL_3.session
        sampler = SessionSampler(model, rng)
        counts = [sampler.sample_session().number_of_packets for _ in range(300)]
        assert np.mean(counts) == pytest.approx(model.mean_packets_per_session, rel=0.2)

    def test_reproducibility_with_same_seed(self):
        first = SessionSampler(TRAFFIC_MODEL_3.session, np.random.default_rng(7))
        second = SessionSampler(TRAFFIC_MODEL_3.session, np.random.default_rng(7))
        trace_a = first.sample_session()
        trace_b = second.sample_session()
        assert trace_a.number_of_packets == trace_b.number_of_packets
        assert trace_a.all_packet_times() == pytest.approx(trace_b.all_packet_times())

    def test_empirical_rate_close_to_ipp_mean(self, rng):
        """The long-run packet rate of sampled sessions matches the IPP mean rate."""
        model = TRAFFIC_MODEL_3.session
        sampler = SessionSampler(model, rng)
        empirical = sampler.empirical_mean_rate(sessions=300)
        analytical = model.to_ipp().mean_arrival_rate()
        assert empirical == pytest.approx(analytical, rel=0.2)

    def test_empirical_rate_requires_positive_sessions(self, sampler):
        with pytest.raises(ValueError):
            sampler.empirical_mean_rate(sessions=0)

    def test_trace_duration_property(self, sampler):
        trace = sampler.sample_session()
        assert trace.duration == pytest.approx(trace.packet_calls[-1].end_time)
