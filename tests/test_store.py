"""Tests of the cross-process artifact store (repro.store)."""

from __future__ import annotations

import json
import multiprocessing
import os
import sys

import numpy as np
import pytest

from repro.runtime.cache import CODE_VERSION, default_cache_dir
from repro.runtime.faults import FaultPlan, inject_faults
from repro.store import (
    STORE_DIR_ENV,
    ArtifactStore,
    artifact_key,
    current_store,
    default_store_dir,
    store_context,
)


def _arrays(seed: int = 7, size: int = 256) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {
        "values": rng.standard_normal(size),
        "indices": np.arange(size, dtype=np.int32),
        "matrix": rng.standard_normal((8, 8)),
    }


class TestKeys:
    def test_key_is_stable_and_order_insensitive(self):
        a = artifact_key("propagator", {"x": 1, "y": [2.0, 3.0]})
        b = artifact_key("propagator", {"y": [2.0, 3.0], "x": 1})
        assert a == b
        assert len(a) == 64  # full sha256 hex

    def test_key_separates_kinds_and_identities(self):
        base = artifact_key("template", {"x": 1})
        assert artifact_key("propagator", {"x": 1}) != base
        assert artifact_key("template", {"x": 2}) != base

    def test_code_version_is_mixed_in(self):
        """A code edit must invalidate every stored artifact at once."""
        current = artifact_key("template", {"x": 1})
        assert current == artifact_key("template", {"x": 1}, code_version=CODE_VERSION)
        assert current != artifact_key("template", {"x": 1}, code_version="other")


class TestRoundTrip:
    def test_round_trip_is_bitwise_with_meta(self, tmp_path):
        store = ArtifactStore(tmp_path)
        arrays = _arrays()
        store.put("a" * 64, arrays, {"alias": [0, 1], "tol": 1e-9})
        loaded = store.get("a" * 64)
        assert loaded is not None
        got, meta = loaded
        assert meta == {"alias": [0, 1], "tol": 1e-9}
        assert set(got) == set(arrays)
        for name in arrays:
            assert got[name].dtype == arrays[name].dtype
            assert np.array_equal(got[name], arrays[name])
        assert store.stats.writes == 1 and store.stats.hits == 1

    def test_returned_arrays_are_read_only(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("b" * 64, _arrays())
        got, _ = store.get("b" * 64)
        with pytest.raises(ValueError):
            got["values"][0] = 1.0

    def test_absent_key_is_a_clean_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get("c" * 64) is None
        assert store.stats.misses == 1

    def test_reserved_array_names_are_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ValueError, match="reserved"):
            store.put("d" * 64, {"__meta__": np.zeros(2)})

    def test_memory_tier_serves_repeat_reads(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("e" * 64, _arrays())
        path = store.path_for("e" * 64)
        assert store.get("e" * 64) is not None  # put already remembered it
        assert store.stats.memory_hits == 1
        path.unlink()  # prove the next read never touches the disk
        assert store.get("e" * 64) is not None
        assert store.stats.memory_hits == 2
        store.clear_memory()
        assert store.get("e" * 64) is None  # now it really is gone

    def test_fresh_instance_reads_what_another_wrote(self, tmp_path):
        """The cross-process contract, single-process edition."""
        writer = ArtifactStore(tmp_path)
        arrays = _arrays()
        writer.put("f" * 64, arrays, {"origin": "writer"})
        reader = ArtifactStore(tmp_path)
        loaded = reader.get("f" * 64)
        assert loaded is not None
        got, meta = loaded
        assert meta["origin"] == "writer"
        assert np.array_equal(got["values"], arrays["values"])
        assert reader.stats.memory_hits == 0  # came from disk, not memory


class TestCorruption:
    def test_truncated_archive_is_quarantined(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "1" * 64
        store.put(key, _arrays())
        store.clear_memory()
        path = store.path_for(key)
        path.write_bytes(path.read_bytes()[:40])
        assert store.get(key) is None
        assert store.stats.corrupt == 1
        assert not path.exists()
        assert path.with_name(f"{key}.corrupt").exists()
        assert store.get(key) is None  # quarantined: stays a clean miss

    def test_bitflip_fails_the_digest_check(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "2" * 64
        store.put(key, _arrays())
        store.clear_memory()
        path = store.path_for(key)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF  # flip one payload byte, zip still parses
        path.write_bytes(bytes(blob))
        assert store.get(key) is None
        assert store.stats.corrupt == 1
        assert path.with_name(f"{key}.corrupt").exists()

    def test_injected_cache_corruption_exercises_quarantine(self, tmp_path):
        """`--inject-faults cache@0=corrupt` hits the store's put site too."""
        store = ArtifactStore(tmp_path)
        key = "3" * 64
        with inject_faults(FaultPlan.parse("cache@0=corrupt")):
            store.put(key, _arrays())
        assert store.get(key) is None  # truncated archive -> quarantine
        assert store.stats.corrupt == 1
        assert store.path_for(key).with_name(f"{key}.corrupt").exists()
        # The next write of the same key heals the entry.
        arrays = _arrays()
        store.put(key, arrays)
        loaded = store.get(key)
        assert loaded is not None
        assert np.array_equal(loaded[0]["values"], arrays["values"])


class TestEviction:
    def test_tiny_budget_evicts_everything(self, tmp_path):
        store = ArtifactStore(tmp_path, max_bytes=1)  # everything over budget
        for index in range(3):
            store.put(f"{index}" * 64, {"x": np.full(64, float(index))})
        assert store.stats.evictions == 3  # each put evicts its own entry
        assert len(store) == 0
        assert store.disk_bytes == 0

    def test_budget_keeps_newest_entries(self, tmp_path):
        probe = ArtifactStore(tmp_path / "probe")
        probe.put("a" * 64, {"x": np.zeros(64)})
        entry_size = probe.path_for("a" * 64).stat().st_size
        store = ArtifactStore(tmp_path / "real", max_bytes=2 * entry_size)
        now = 1_700_000_000.0
        for index in range(4):
            key = f"{index}" * 64
            store.put(key, {"x": np.zeros(64)})
            os.utime(store.path_for(key), (now + index, now + index))
            store._evict_over_budget()
        assert not store.path_for("0" * 64).exists()
        assert store.path_for("3" * 64).exists()
        assert store.disk_bytes <= 2 * entry_size


def _concurrent_writer(root: str, key: str, seed: int, rounds: int) -> None:
    store = ArtifactStore(root)
    rng = np.random.default_rng(seed)
    for _ in range(rounds):
        value = rng.standard_normal(512)
        store.put(key, {"value": value}, {"seed": seed})


class TestConcurrency:
    def test_two_processes_same_key_last_writer_wins_no_torn_reads(self, tmp_path):
        """Writers race on one key; every read is a valid artifact or a miss."""
        key = "9" * 64
        ctx = multiprocessing.get_context("spawn")
        workers = [
            ctx.Process(
                target=_concurrent_writer, args=(str(tmp_path), key, seed, 20)
            )
            for seed in (1, 2)
        ]
        for worker in workers:
            worker.start()
        reader = ArtifactStore(tmp_path)
        observed = 0
        try:
            while any(worker.is_alive() for worker in workers):
                reader.clear_memory()
                loaded = reader.get(key)
                if loaded is not None:
                    arrays, meta = loaded
                    # A torn file would fail the digest check (-> corrupt);
                    # a valid read must be one writer's complete payload.
                    assert arrays["value"].shape == (512,)
                    assert meta["seed"] in (1, 2)
                    observed += 1
        finally:
            for worker in workers:
                worker.join(timeout=60)
        assert reader.stats.corrupt == 0
        for worker in workers:
            assert worker.exitcode == 0
        reader.clear_memory()
        final = reader.get(key)
        assert final is not None  # last complete write won
        assert observed >= 1


class TestAmbientResolution:
    def test_store_off_by_default(self, monkeypatch):
        monkeypatch.delenv(STORE_DIR_ENV, raising=False)
        assert current_store() is None

    def test_env_var_enables_a_process_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path / "env-store"))
        store = current_store()
        assert store is not None
        assert store.root == tmp_path / "env-store"
        assert current_store() is store  # process-wide singleton per value

    def test_store_context_wins_over_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path / "env-store"))
        explicit = ArtifactStore(tmp_path / "explicit")
        with store_context(explicit):
            assert current_store() is explicit
        with store_context(None):  # --no-store: disables even the env store
            assert current_store() is None
        assert current_store() is not None

    def test_default_store_dir_honours_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path / "elsewhere"))
        assert default_store_dir() == tmp_path / "elsewhere"
        monkeypatch.delenv(STORE_DIR_ENV)
        assert default_store_dir() == default_cache_dir() / "store"

    def test_cache_dir_fallback_env(self, tmp_path, monkeypatch):
        """$REPRO_CACHE_DIR is honoured when the historical name is unset."""
        monkeypatch.delenv("GPRS_REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt-cache"))
        assert default_cache_dir() == tmp_path / "alt-cache"
        monkeypatch.setenv("GPRS_REPRO_CACHE_DIR", str(tmp_path / "old-cache"))
        assert default_cache_dir() == tmp_path / "old-cache"  # historical wins
        monkeypatch.delenv(STORE_DIR_ENV, raising=False)
        monkeypatch.delenv("GPRS_REPRO_CACHE_DIR")
        assert default_store_dir() == tmp_path / "alt-cache" / "store"


class TestMetrics:
    def test_traffic_lands_in_the_registry(self, tmp_path):
        from repro.obs.metrics import current_registry

        registry = current_registry()
        baseline = registry.snapshot()
        store = ArtifactStore(tmp_path)
        store.put("a" * 64, _arrays())
        store.clear_memory()
        assert store.get("a" * 64) is not None
        assert store.get("b" * 64) is None
        delta = registry.delta_since(baseline)["counters"]
        assert delta["store.writes"] == 1
        assert delta["store.hits"] == 1
        assert delta["store.misses"] == 1
        assert delta["store.bytes_written"] > 0
        assert delta["store.bytes_read"] > 0
        gauges = registry.snapshot()["gauges"]
        assert gauges["store.bytes"] == float(store.disk_bytes)
