"""Tests of the seeded random-variate streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.des.random_variates import RandomVariateStream


class TestReproducibility:
    def test_same_seed_same_sequence(self):
        first = RandomVariateStream(123)
        second = RandomVariateStream(123)
        assert [first.exponential(2.0) for _ in range(5)] == (
            [second.exponential(2.0) for _ in range(5)]
        )

    def test_different_seeds_differ(self):
        first = RandomVariateStream(1)
        second = RandomVariateStream(2)
        assert first.exponential(1.0) != second.exponential(1.0)

    def test_spawned_streams_are_reproducible_and_distinct(self):
        children_a = RandomVariateStream(99).spawn(3)
        children_b = RandomVariateStream(99).spawn(3)
        values_a = [child.uniform() for child in children_a]
        values_b = [child.uniform() for child in children_b]
        assert values_a == values_b
        assert len(set(values_a)) == 3

    def test_spawn_requires_positive_count(self):
        with pytest.raises(ValueError):
            RandomVariateStream(1).spawn(0)

    def test_spawn_from_generator_backed_stream(self):
        stream = RandomVariateStream(np.random.default_rng(5))
        children = stream.spawn(2)
        assert len(children) == 2
        assert children[0].uniform() != children[1].uniform()


class TestDistributions:
    def test_exponential_mean(self):
        stream = RandomVariateStream(7)
        samples = [stream.exponential(4.0) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(4.0, rel=0.05)

    def test_exponential_rate_form(self):
        stream = RandomVariateStream(8)
        samples = [stream.exponential_rate(0.5) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(2.0, rel=0.05)

    def test_exponential_zero_mean(self):
        assert RandomVariateStream(1).exponential(0.0) == 0.0

    def test_geometric_mean_and_support(self):
        stream = RandomVariateStream(9)
        samples = [stream.geometric(5.0) for _ in range(20000)]
        assert min(samples) >= 1
        assert np.mean(samples) == pytest.approx(5.0, rel=0.05)

    def test_geometric_mean_one_is_deterministic(self):
        stream = RandomVariateStream(10)
        assert all(stream.geometric(1.0) == 1 for _ in range(10))

    def test_uniform_bounds(self):
        stream = RandomVariateStream(11)
        samples = [stream.uniform(2.0, 3.0) for _ in range(1000)]
        assert all(2.0 <= value < 3.0 for value in samples)

    def test_integer_bounds_inclusive(self):
        stream = RandomVariateStream(12)
        samples = {stream.integer(1, 3) for _ in range(200)}
        assert samples == {1, 2, 3}

    def test_choice(self):
        stream = RandomVariateStream(13)
        options = ["a", "b", "c"]
        assert all(stream.choice(options) in options for _ in range(50))

    def test_bernoulli_probability(self):
        stream = RandomVariateStream(14)
        samples = [stream.bernoulli(0.3) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(0.3, abs=0.02)

    def test_hyperexponential_mean(self):
        stream = RandomVariateStream(15)
        samples = [
            stream.hyperexponential([1.0, 10.0], [0.5, 0.5]) for _ in range(20000)
        ]
        assert np.mean(samples) == pytest.approx(5.5, rel=0.07)

    def test_erlang_mean_and_lower_variance(self):
        stream = RandomVariateStream(16)
        erlangs = [stream.erlang(4, 2.0) for _ in range(20000)]
        exponentials = [stream.exponential(2.0) for _ in range(20000)]
        assert np.mean(erlangs) == pytest.approx(2.0, rel=0.05)
        assert np.var(erlangs) < np.var(exponentials)


class TestValidation:
    def test_invalid_arguments_rejected(self):
        stream = RandomVariateStream(0)
        with pytest.raises(ValueError):
            stream.exponential(-1.0)
        with pytest.raises(ValueError):
            stream.exponential_rate(0.0)
        with pytest.raises(ValueError):
            stream.geometric(0.5)
        with pytest.raises(ValueError):
            stream.uniform(3.0, 2.0)
        with pytest.raises(ValueError):
            stream.integer(5, 4)
        with pytest.raises(ValueError):
            stream.choice([])
        with pytest.raises(ValueError):
            stream.bernoulli(1.5)
        with pytest.raises(ValueError):
            stream.hyperexponential([1.0], [0.5, 0.5])
        with pytest.raises(ValueError):
            stream.hyperexponential([1.0, 2.0], [0.6, 0.6])
        with pytest.raises(ValueError):
            stream.erlang(0, 1.0)
        with pytest.raises(ValueError):
            stream.erlang(2, 0.0)
