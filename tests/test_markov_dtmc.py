"""Tests of the DiscreteTimeMarkovChain class."""

from __future__ import annotations

import numpy as np
import pytest

from repro.markov.ctmc import ContinuousTimeMarkovChain
from repro.markov.dtmc import DiscreteTimeMarkovChain


@pytest.fixture
def weather_chain() -> DiscreteTimeMarkovChain:
    matrix = np.array([[0.8, 0.2], [0.4, 0.6]])
    return DiscreteTimeMarkovChain(matrix, labels=["sunny", "rainy"])


class TestValidation:
    def test_rows_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to one"):
            DiscreteTimeMarkovChain(np.array([[0.5, 0.4], [0.3, 0.7]]))

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            DiscreteTimeMarkovChain(np.array([[1.2, -0.2], [0.5, 0.5]]))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            DiscreteTimeMarkovChain(np.ones((2, 3)) / 3)

    def test_label_count_checked(self):
        with pytest.raises(ValueError, match="labels"):
            DiscreteTimeMarkovChain(np.eye(2), labels=["only-one"])


class TestBehaviour:
    def test_step_propagates_distribution(self, weather_chain):
        start = np.array([1.0, 0.0])
        one_step = weather_chain.step(start)
        assert one_step == pytest.approx([0.8, 0.2])
        two_steps = weather_chain.step(start, steps=2)
        assert two_steps == pytest.approx(one_step @ weather_chain.transition_matrix.toarray())

    def test_step_zero_returns_same_distribution(self, weather_chain):
        start = np.array([0.3, 0.7])
        assert weather_chain.step(start, steps=0) == pytest.approx(start)

    def test_step_rejects_negative_count(self, weather_chain):
        with pytest.raises(ValueError):
            weather_chain.step(np.array([1.0, 0.0]), steps=-1)

    def test_step_rejects_wrong_length(self, weather_chain):
        with pytest.raises(ValueError, match="length"):
            weather_chain.step(np.array([1.0, 0.0, 0.0]))

    def test_stationary_distribution_closed_form(self, weather_chain):
        # For the 2-state chain: pi = (q, p) / (p + q) with p = P[0,1], q = P[1,0].
        pi = weather_chain.stationary_distribution()
        assert pi == pytest.approx([2 / 3, 1 / 3])

    def test_stationary_distribution_of_identity_like_chain(self):
        chain = DiscreteTimeMarkovChain(np.array([[1.0]]))
        assert chain.stationary_distribution() == pytest.approx([1.0])

    def test_occupation_frequencies_approach_stationary(self, weather_chain, rng):
        frequencies = weather_chain.occupation_frequencies(0, steps=20000, rng=rng)
        assert frequencies == pytest.approx([2 / 3, 1 / 3], abs=0.03)

    def test_occupation_frequencies_need_positive_steps(self, weather_chain):
        with pytest.raises(ValueError):
            weather_chain.occupation_frequencies(0, steps=0)


class TestConsistencyWithCtmc:
    def test_embedded_chain_stationary_matches_weighted_ctmc(self):
        """pi_CTMC is proportional to pi_embedded / exit_rate (standard identity)."""
        generator = np.array(
            [[-2.0, 1.5, 0.5], [1.0, -1.0, 0.0], [3.0, 1.0, -4.0]]
        )
        ctmc = ContinuousTimeMarkovChain(generator)
        embedded = DiscreteTimeMarkovChain(ctmc.embedded_jump_chain())
        pi_embedded = embedded.stationary_distribution()
        weighted = pi_embedded / ctmc.exit_rates()
        weighted /= weighted.sum()
        assert weighted == pytest.approx(ctmc.stationary_distribution(), abs=1e-8)
