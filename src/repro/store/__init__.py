"""Cross-process artifact store for binary NumPy/SciPy intermediates.

The store generalises the JSON-only result cache
(:mod:`repro.runtime.cache`) to the *binary* warm state that dominates a
solve's wall time: segment-propagator replay checkpoints, generator-template
index arrays, assembled coarse-space operators and warm-start distribution
stacks.  Artifacts are content-addressed (the key digests their identity plus
the code-version tag), written atomically, digest-verified on read with
quarantine on corruption, bounded by a byte-budget disk LRU, and fronted by a
per-process read-through memory tier so hot artifacts cost one dict lookup.

See :mod:`repro.store.artifacts` for the implementation and
:mod:`repro.service` for the long-lived server that keeps one store's memory
tier warm across many requests.
"""

from repro.store.artifacts import (
    DEFAULT_MEMORY_BYTES,
    DEFAULT_STORE_BYTES,
    STORE_DIR_ENV,
    ArtifactStore,
    StoreStats,
    artifact_key,
    current_store,
    default_store,
    default_store_dir,
    store_context,
)

__all__ = [
    "DEFAULT_MEMORY_BYTES",
    "DEFAULT_STORE_BYTES",
    "STORE_DIR_ENV",
    "ArtifactStore",
    "StoreStats",
    "artifact_key",
    "current_store",
    "default_store",
    "default_store_dir",
    "store_context",
]
