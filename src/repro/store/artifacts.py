"""Content-addressed, disk-backed artifact store for binary intermediates.

Layout and semantics mirror :class:`repro.runtime.cache.ResultCache`, adapted
to NumPy payloads:

* one ``.npz`` archive per artifact under two-character shard directories
  (``root/ab/<key>.npz``), written uncompressed so round-trips are fast and
  bitwise exact;
* each archive embeds its own metadata (``__meta__``, canonical JSON as
  bytes) and an integrity digest (``__digest__``, SHA-256 over every array's
  name, dtype, shape and raw bytes plus the metadata) so a read either
  returns exactly what was written or a clean miss;
* writes are atomic (temp file + ``os.replace``), so concurrent writers of
  the same key race benignly: the last complete archive wins and a reader
  can never observe a torn file as a valid artifact;
* a damaged archive is quarantined on first read -- renamed to
  ``<key>.corrupt``, counted under ``store.corrupt``, logged once per key --
  exactly like the result cache;
* the disk tier is bounded by ``max_bytes`` with mtime-LRU eviction (reads
  refresh the mtime), and a per-process read-through memory tier (bounded by
  ``memory_bytes``) serves repeat reads without touching the filesystem.

Keys come from :func:`artifact_key`, which digests a canonical JSON rendering
of the artifact's identity together with the cache's code-version tag, so any
local code edit invalidates every stored artifact at once -- binary warm
state can never serve stale numbers.

Ambient resolution: engine seams (propagator cache, template build, coarse
corrector) call :func:`current_store`, which prefers an explicitly activated
:func:`store_context` and otherwise falls back to a process-wide store rooted
at ``$REPRO_STORE_DIR`` when that variable is set.  With neither, the store
is off and every seam behaves exactly as before -- cold paths stay cold.
The environment fallback is what carries the store across the worker-pool
boundary: the CLI exports the flag value into ``os.environ`` before spawning
workers, and each worker resolves its own store lazily on first use.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import threading
from collections import OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.obs.metrics import current_registry
from repro.runtime.faults import current_fault_plan

_logger = logging.getLogger(__name__)

__all__ = [
    "DEFAULT_MEMORY_BYTES",
    "DEFAULT_STORE_BYTES",
    "STORE_DIR_ENV",
    "ArtifactStore",
    "StoreStats",
    "artifact_key",
    "current_store",
    "default_store",
    "default_store_dir",
    "store_context",
]

#: Environment variable overriding the default store directory (and enabling
#: the ambient store when no explicit :func:`store_context` is active).
STORE_DIR_ENV = "REPRO_STORE_DIR"

#: Disk budget: generous, because artifacts are the expensive-to-recompute
#: kind (a diurnal replay is ~tens of MB) -- but bounded, so an unattended
#: service cannot fill the disk.
DEFAULT_STORE_BYTES = 2 * 1024**3

#: Memory-tier budget, matching the propagator cache's in-process default.
DEFAULT_MEMORY_BYTES = 256 * 1024**2

#: Reserved array names inside an archive (not available to callers).
_RESERVED = ("__meta__", "__digest__")


def default_store_dir() -> Path:
    """Return the default store directory.

    ``$REPRO_STORE_DIR`` wins when set; otherwise the store nests under the
    result cache's directory (which itself honours its own env overrides).
    """
    override = os.environ.get(STORE_DIR_ENV)
    if override:
        return Path(override)
    from repro.runtime.cache import default_cache_dir

    return default_cache_dir() / "store"


def artifact_key(kind: str, identity: dict, *, code_version: str | None = None) -> str:
    """Return the content hash of one artifact.

    ``kind`` namespaces the artifact family (``"propagator"``,
    ``"template"``, ``"coarse-operator"``, ``"warm-seed"``); ``identity``
    is a JSON-renderable dictionary of everything that determines the
    artifact's bytes.  The cache's code-version tag is mixed in by default,
    so code edits invalidate all artifacts exactly like JSON results.
    """
    if code_version is None:
        from repro.runtime.cache import CODE_VERSION

        code_version = CODE_VERSION
    payload = {"kind": kind, "code_version": code_version, "identity": identity}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _payload_digest(arrays: dict[str, np.ndarray], meta_bytes: bytes) -> str:
    """Integrity digest over the full payload (names, dtypes, shapes, bytes)."""
    digest = hashlib.sha256()
    for name in sorted(arrays):
        value = arrays[name]
        digest.update(name.encode("utf-8"))
        digest.update(b"\0")
        digest.update(str(value.dtype).encode("utf-8"))
        digest.update(b"\0")
        digest.update(repr(value.shape).encode("utf-8"))
        digest.update(b"\0")
        digest.update(np.ascontiguousarray(value).tobytes())
    digest.update(meta_bytes)
    return digest.hexdigest()


@dataclass
class StoreStats:
    """Traffic counters of one :class:`ArtifactStore` instance."""

    hits: int = 0
    memory_hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    corrupt: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "memory_hits": self.memory_hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }


@dataclass
class ArtifactStore:
    """Disk-backed artifact store with a read-through memory tier.

    ``get``/``put`` speak ``(arrays, meta)`` pairs: a dict of named NumPy
    arrays plus a JSON-renderable metadata dict.  Returned arrays are
    read-only views of the stored bytes; callers that need to mutate must
    copy.  A miss (absent, unreadable, corrupt, or digest-mismatched entry)
    returns ``None`` -- the worst a broken store can do is recompute.

    Instances are **thread-safe**: one re-entrant lock serialises the
    memory-tier LRU, the stats counters and the disk accounting, so the
    service tier's concurrent handler threads can share a single store.
    Cross-*process* safety was already guaranteed by the atomic-rename
    write protocol; the lock adds the in-process half.
    """

    root: Path
    max_bytes: int = DEFAULT_STORE_BYTES
    memory_bytes: int = DEFAULT_MEMORY_BYTES
    stats: StoreStats = field(default_factory=StoreStats)
    _memory: "OrderedDict[str, tuple[dict, dict, int]]" = field(
        default_factory=OrderedDict, repr=False
    )
    _memory_used: int = field(default=0, repr=False)
    _disk_bytes: int | None = field(default=None, repr=False)
    _quarantine_logged: set = field(default_factory=set, repr=False)
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # ------------------------------------------------------------------ #
    # Paths and accounting
    # ------------------------------------------------------------------ #
    def path_for(self, key: str) -> Path:
        """Return the archive path of ``key`` (two-character shard dirs)."""
        return self.root / key[:2] / f"{key}.npz"

    def _scan_disk_bytes(self) -> int:
        total = 0
        if self.root.is_dir():
            for path in self.root.glob("*/*.npz"):
                try:
                    total += path.stat().st_size
                except OSError:
                    continue
        return total

    @property
    def disk_bytes(self) -> int:
        """Current disk usage (lazily scanned once, then tracked)."""
        if self._disk_bytes is None:
            self._disk_bytes = self._scan_disk_bytes()
        return self._disk_bytes

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.npz"))

    # ------------------------------------------------------------------ #
    # Memory tier
    # ------------------------------------------------------------------ #
    def _remember(self, key: str, arrays: dict, meta: dict) -> None:
        nbytes = sum(int(value.nbytes) for value in arrays.values())
        if nbytes > self.memory_bytes:
            return
        stale = self._memory.pop(key, None)
        if stale is not None:
            self._memory_used -= stale[2]
        self._memory[key] = (arrays, meta, nbytes)
        self._memory_used += nbytes
        while self._memory_used > self.memory_bytes and self._memory:
            _, (_, _, dropped) = self._memory.popitem(last=False)
            self._memory_used -= dropped
        current_registry().gauge("store.memory_bytes", float(self._memory_used))

    def clear_memory(self) -> None:
        """Drop the memory tier (disk entries stay)."""
        with self._lock:
            self._memory.clear()
            self._memory_used = 0
        current_registry().gauge("store.memory_bytes", 0.0)

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> tuple[dict[str, np.ndarray], dict] | None:
        """Return ``(arrays, meta)`` for ``key`` or ``None`` on a miss."""
        with self._lock:
            return self._get_locked(key)

    def _get_locked(self, key: str) -> tuple[dict[str, np.ndarray], dict] | None:
        registry = current_registry()
        entry = self._memory.get(key)
        if entry is not None:
            self._memory.move_to_end(key)
            arrays, meta, _ = entry
            self.stats.hits += 1
            self.stats.memory_hits += 1
            registry.count("store.hits")
            registry.count("store.memory_hits")
            return dict(arrays), dict(meta)

        path = self.path_for(key)
        try:
            with np.load(path, allow_pickle=False) as archive:
                payload = {name: archive[name] for name in archive.files}
        except FileNotFoundError:
            self.stats.misses += 1
            registry.count("store.misses")
            return None
        except Exception:  # damaged archive: BadZipFile, ValueError, OSError...
            self._quarantine(key, path)
            self.stats.misses += 1
            registry.count("store.misses")
            return None

        meta_raw = payload.pop("__meta__", None)
        digest_raw = payload.pop("__digest__", None)
        if meta_raw is None or digest_raw is None:
            self._quarantine(key, path)
            self.stats.misses += 1
            registry.count("store.misses")
            return None
        meta_bytes = bytes(meta_raw.tobytes())
        recorded = digest_raw.tobytes().decode("ascii", "replace")
        if _payload_digest(payload, meta_bytes) != recorded:
            self._quarantine(key, path)
            self.stats.misses += 1
            registry.count("store.misses")
            return None

        try:
            meta = json.loads(meta_bytes.decode("utf-8"))
        except ValueError:
            self._quarantine(key, path)
            self.stats.misses += 1
            registry.count("store.misses")
            return None

        for value in payload.values():
            value.setflags(write=False)
        nbytes = sum(int(value.nbytes) for value in payload.values())
        self.stats.hits += 1
        self.stats.bytes_read += nbytes
        registry.count("store.hits")
        registry.count("store.bytes_read", nbytes)
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:
            pass
        self._remember(key, payload, meta)
        return dict(payload), dict(meta)

    def _quarantine(self, key: str, path: Path) -> None:
        """Move a corrupt archive aside so the key reads as a clean miss."""
        self.stats.corrupt += 1
        current_registry().count("store.corrupt")
        try:
            size = path.stat().st_size
            os.replace(path, path.with_name(f"{key}.corrupt"))
            if self._disk_bytes is not None:
                self._disk_bytes = max(0, self._disk_bytes - size)
        except OSError:
            pass  # unmovable (e.g. read-only store): the miss still recomputes
        if key not in self._quarantine_logged:
            self._quarantine_logged.add(key)
            _logger.warning(
                "quarantined corrupt store artifact %s -> %s.corrupt", key, key
            )

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #
    def put(self, key: str, arrays: dict[str, np.ndarray], meta: dict | None = None) -> None:
        """Atomically store ``arrays`` (+ ``meta``) under ``key``.

        The archive is written whole to a temp file and renamed into place,
        so a concurrent reader sees either the previous complete artifact or
        the new one, never a mixture; concurrent writers of the same key are
        last-writer-wins.
        """
        with self._lock:
            self._put_locked(key, arrays, meta)

    def _put_locked(
        self, key: str, arrays: dict[str, np.ndarray], meta: dict | None
    ) -> None:
        for name in arrays:
            if name in _RESERVED:
                raise ValueError(f"array name {name!r} is reserved")
        frozen: dict[str, np.ndarray] = {}
        for name, value in arrays.items():
            frozen[name] = np.ascontiguousarray(value)
        meta = dict(meta or {})
        meta_bytes = json.dumps(meta, sort_keys=True, separators=(",", ":")).encode("utf-8")
        digest = _payload_digest(frozen, meta_bytes)
        payload = dict(frozen)
        payload["__meta__"] = np.frombuffer(meta_bytes, dtype=np.uint8)
        payload["__digest__"] = np.frombuffer(digest.encode("ascii"), dtype=np.uint8)

        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        previous = 0
        try:
            previous = path.stat().st_size
        except OSError:
            pass
        handle = tempfile.NamedTemporaryFile(
            "wb",
            dir=path.parent,
            prefix=f".{key[:8]}-",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                np.savez(handle, **payload)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

        try:
            written = path.stat().st_size
        except OSError:
            written = 0
        registry = current_registry()
        self.stats.writes += 1
        self.stats.bytes_written += written
        registry.count("store.writes")
        registry.count("store.bytes_written", written)
        if self._disk_bytes is None:
            self._disk_bytes = self._scan_disk_bytes()
        else:
            self._disk_bytes += written - previous
        self._evict_over_budget()
        registry.gauge("store.bytes", float(self.disk_bytes))

        plan = current_fault_plan()
        if plan is not None and plan.take_cache_corruption():
            # Injected corruption (the shared ``cache`` fault site): truncate
            # the just-written archive so the next read exercises quarantine.
            # Deliberately skip the memory tier so the corruption is visible
            # to this very process.
            path.write_bytes(path.read_bytes()[: max(1, written // 2)])
            registry.count("faults.injected")
            return
        for value in frozen.values():
            value.setflags(write=False)
        self._remember(key, frozen, meta)

    def _evict_over_budget(self) -> None:
        if self.disk_bytes <= self.max_bytes:
            return
        entries = []
        for path in self.root.glob("*/*.npz"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()
        total = sum(size for _, size, _ in entries)
        registry = current_registry()
        for _, size, path in entries:
            if total <= self.max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            self.stats.evictions += 1
            registry.count("store.evictions")
        self._disk_bytes = total


def default_store() -> ArtifactStore:
    """Return a store rooted at :func:`default_store_dir`."""
    return ArtifactStore(default_store_dir())


# ---------------------------------------------------------------------- #
# Ambient store resolution
# ---------------------------------------------------------------------- #
_DISABLED = object()
_ACTIVE: ContextVar = ContextVar("repro_active_store", default=None)
_ENV_STORE: tuple[str, ArtifactStore] | None = None


def current_store() -> ArtifactStore | None:
    """Return the ambient store, or ``None`` when storing is off.

    Resolution order: an explicit :func:`store_context` (including the
    disabled sentinel from ``store_context(None)``), then a process-wide
    store rooted at ``$REPRO_STORE_DIR`` when set, then ``None``.
    """
    active = _ACTIVE.get()
    if active is _DISABLED:
        return None
    if active is not None:
        return active
    override = os.environ.get(STORE_DIR_ENV)
    if not override:
        return None
    global _ENV_STORE
    if _ENV_STORE is None or _ENV_STORE[0] != override:
        _ENV_STORE = (override, ArtifactStore(Path(override)))
    return _ENV_STORE[1]


@contextmanager
def store_context(store: ArtifactStore | None):
    """Activate ``store`` as the ambient artifact store for this context.

    ``store_context(None)`` explicitly *disables* the store, overriding any
    ``$REPRO_STORE_DIR`` fallback -- that is what ``--no-store`` uses.
    """
    token = _ACTIVE.set(store if store is not None else _DISABLED)
    try:
        yield store
    finally:
        _ACTIVE.reset(token)
