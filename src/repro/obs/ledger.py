"""The structured run ledger: one schema-versioned JSONL record per run.

Every instrumented entry point -- the CLI commands behind ``--ledger``, the
benchmark helpers, eventually the service mode -- appends one canonical
record per run to a JSONL file.  A record carries everything needed to
answer, months later, "what ran, on which code, and where did the time
go": the command and its arguments, a digest of the resolved spec, the
package's content-addressed code version, the tracer's flat span totals,
the metric delta of the run, and the interpreter/library environment.

The schema is versioned (:data:`SCHEMA`, :data:`SCHEMA_VERSION`); readers
:func:`validate_record` before trusting a line, and refuse records from a
future schema rather than misreading them.  :func:`compare` diffs two
records (or the latest records of two ledger files) into per-span and
per-counter deltas -- the benchmarks' A/B reports and regression checks are
built on it, so production telemetry and benchmark telemetry share one
format.

Heavyweight imports (``repro``, numpy/scipy versions) happen lazily inside
functions: this module sits above the core engines and must stay importable
without dragging the whole package in.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
from typing import Any

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "append_record",
    "compare",
    "environment_fingerprint",
    "make_record",
    "read_ledger",
    "render_compare",
    "render_report",
    "resilience_block",
    "service_block",
    "spec_digest",
    "store_block",
    "validate_record",
]

#: Identifies ledger records among arbitrary JSONL lines.
SCHEMA = "gprs-repro/run-ledger"

#: Bump on any backwards-incompatible record change.
SCHEMA_VERSION = 1

#: Fields every valid record must carry.
REQUIRED_FIELDS = (
    "schema",
    "schema_version",
    "command",
    "code_version",
    "wall_s",
    "spans",
    "metrics",
    "environment",
)


def spec_digest(payload: Any) -> str:
    """Content digest of a resolved run spec (any JSON-renderable value)."""
    rendering = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(rendering.encode("utf-8")).hexdigest()[:16]


def environment_fingerprint() -> dict:
    """The interpreter and numeric-library versions a record ran under."""
    env = {
        "python": platform.python_version(),
        "platform": sys.platform,
        "machine": platform.machine(),
    }
    for library in ("numpy", "scipy"):
        module = sys.modules.get(library)
        if module is None:
            try:
                module = __import__(library)
            except ImportError:  # pragma: no cover - both ship with the repo
                continue
        env[library] = getattr(module, "__version__", "unknown")
    return env


#: Counter-to-field mapping behind a record's ``resilience`` block.
_RESILIENCE_COUNTERS = (
    ("attempts", "resilience.attempts"),
    ("retries", "resilience.retries"),
    ("timeouts", "resilience.timeouts"),
    ("pool_respawns", "resilience.pool_respawns"),
    ("degraded", "resilience.degraded"),
    ("failures", "resilience.task_failures"),
    ("resumed_points", "resilience.resumed_points"),
    ("checkpointed_points", "resilience.checkpointed_points"),
    ("checkpoint_mismatches", "resilience.checkpoint_mismatches"),
    ("faults_injected", "faults.injected"),
)


def resilience_block(metrics: dict | None) -> dict:
    """Derive a record's ``resilience`` block from its metric counters."""
    counters = (metrics or {}).get("counters", {})
    return {
        field: counters.get(counter, 0) for field, counter in _RESILIENCE_COUNTERS
    }


#: Counter-to-field mapping behind a record's ``store`` block (the
#: cross-process artifact store of :mod:`repro.store`).
_STORE_COUNTERS = (
    ("hits", "store.hits"),
    ("memory_hits", "store.memory_hits"),
    ("misses", "store.misses"),
    ("writes", "store.writes"),
    ("evictions", "store.evictions"),
    ("corrupt", "store.corrupt"),
    ("bytes_read", "store.bytes_read"),
    ("bytes_written", "store.bytes_written"),
)


def store_block(metrics: dict | None) -> dict:
    """Derive a record's ``store`` block from its metric counters."""
    counters = (metrics or {}).get("counters", {})
    return {field: counters.get(counter, 0) for field, counter in _STORE_COUNTERS}


#: Counter-to-field mapping behind a record's ``service`` block (the
#: admission-controlled scenario service of :mod:`repro.service`).
_SERVICE_COUNTERS = (
    ("requests", "service.requests"),
    ("accepted", "service.accepted"),
    ("coalesced", "service.coalesced"),
    ("rejected", "service.rejected"),
    ("timed_out", "service.timed_out"),
    ("cancelled", "service.cancelled"),
    ("completed", "service.completed"),
    ("errors", "service.errors"),
    ("drained", "service.drained"),
    ("abandoned", "service.abandoned"),
    ("replayed", "service.replayed"),
    ("journal_corrupt", "service.journal_corrupt"),
)


def service_block(metrics: dict | None) -> dict:
    """Derive a record's ``service`` block from its metric counters."""
    counters = (metrics or {}).get("counters", {})
    return {field: counters.get(counter, 0) for field, counter in _SERVICE_COUNTERS}


def make_record(
    *,
    command: str,
    target: str | None = None,
    preset: str | None = None,
    args: dict | None = None,
    spec: Any = None,
    wall_s: float,
    cpu_s: float | None = None,
    span_totals: dict | None = None,
    metrics: dict | None = None,
    created_utc: str | None = None,
    resilience: dict | None = None,
    store: dict | None = None,
    service: dict | None = None,
) -> dict:
    """Assemble one schema-v1 ledger record (pure data, JSON-ready).

    The ``resilience`` block (retries, timeouts, degradation, resumed
    points), the ``store`` block (artifact-store hits, writes, evictions,
    quarantines) and the ``service`` block (admission, coalescing,
    backpressure, drain and journal counters) are derived from the run's
    metric counters when not given explicitly -- additive fields, so the
    schema version stays 1.
    """
    from repro.runtime.cache import CODE_VERSION

    if created_utc is None:
        import datetime

        created_utc = (
            datetime.datetime.now(datetime.timezone.utc)
            .replace(microsecond=0)
            .isoformat()
        )
    record = {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "created_utc": created_utc,
        "command": command,
        "target": target,
        "preset": preset,
        "args": dict(args or {}),
        "spec_digest": spec_digest(spec) if spec is not None else None,
        "code_version": CODE_VERSION,
        "pid": os.getpid(),
        "wall_s": wall_s,
        "cpu_s": cpu_s,
        "spans": dict(span_totals or {}),
        "metrics": metrics
        or {"counters": {}, "gauges": {}, "histograms": {}},
        "resilience": (
            dict(resilience) if resilience is not None else resilience_block(metrics)
        ),
        "store": dict(store) if store is not None else store_block(metrics),
        "service": (
            dict(service) if service is not None else service_block(metrics)
        ),
        "environment": environment_fingerprint(),
    }
    return record


def validate_record(record: Any) -> dict:
    """Check one parsed line against the schema; return it or raise.

    Raises ``ValueError`` on anything that is not a this-version ledger
    record -- wrong schema marker, a *future* schema version (refusing to
    half-read unknown formats), or missing required fields.
    """
    if not isinstance(record, dict):
        raise ValueError("ledger record must be a JSON object")
    if record.get("schema") != SCHEMA:
        raise ValueError(
            f"not a {SCHEMA} record (schema={record.get('schema')!r})"
        )
    version = record.get("schema_version")
    if not isinstance(version, int) or version < 1:
        raise ValueError(f"invalid schema_version {version!r}")
    if version > SCHEMA_VERSION:
        raise ValueError(
            f"ledger schema_version {version} is newer than supported "
            f"{SCHEMA_VERSION}; refusing to misread it"
        )
    missing = [name for name in REQUIRED_FIELDS if name not in record]
    if missing:
        raise ValueError(f"ledger record missing fields: {', '.join(missing)}")
    return record


def append_record(path: str, record: dict) -> dict:
    """Validate ``record`` and append it as one line of ``path``."""
    validate_record(record)
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def read_ledger(path: str) -> list[dict]:
    """Every validated record of a ledger file, in file order."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                parsed = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{line_number}: not JSON: {error}") from None
            try:
                records.append(validate_record(parsed))
            except ValueError as error:
                raise ValueError(f"{path}:{line_number}: {error}") from None
    return records


def _resolve_record(source: "str | dict") -> dict:
    """A record from either a parsed dict or the last record of a file."""
    if isinstance(source, dict):
        return validate_record(source)
    records = read_ledger(source)
    if not records:
        raise ValueError(f"{source}: ledger holds no records")
    return records[-1]


def compare(ledger_a: "str | dict", ledger_b: "str | dict") -> dict:
    """Diff two runs: wall time, per-span, and per-counter deltas.

    Arguments are ledger file paths (the *latest* record of each is used)
    or already-parsed records.  The result reports ``b`` relative to ``a``:
    positive deltas mean ``b`` spent/counted more.
    """
    record_a = _resolve_record(ledger_a)
    record_b = _resolve_record(ledger_b)

    spans: dict[str, dict] = {}
    names = set(record_a["spans"]) | set(record_b["spans"])
    for name in sorted(names):
        span_a = record_a["spans"].get(name, {})
        span_b = record_b["spans"].get(name, {})
        spans[name] = {
            "wall_a": span_a.get("wall_s", 0.0),
            "wall_b": span_b.get("wall_s", 0.0),
            "wall_delta": span_b.get("wall_s", 0.0) - span_a.get("wall_s", 0.0),
            "count_a": span_a.get("count", 0),
            "count_b": span_b.get("count", 0),
        }

    counters: dict[str, dict] = {}
    counters_a = record_a["metrics"].get("counters", {})
    counters_b = record_b["metrics"].get("counters", {})
    for name in sorted(set(counters_a) | set(counters_b)):
        value_a = counters_a.get(name, 0)
        value_b = counters_b.get(name, 0)
        counters[name] = {"a": value_a, "b": value_b, "delta": value_b - value_a}

    wall_a = record_a.get("wall_s") or 0.0
    wall_b = record_b.get("wall_s") or 0.0
    return {
        "a": {
            "command": record_a.get("command"),
            "target": record_a.get("target"),
            "created_utc": record_a.get("created_utc"),
            "code_version": record_a.get("code_version"),
            "wall_s": wall_a,
        },
        "b": {
            "command": record_b.get("command"),
            "target": record_b.get("target"),
            "created_utc": record_b.get("created_utc"),
            "code_version": record_b.get("code_version"),
            "wall_s": wall_b,
        },
        "wall_delta_s": wall_b - wall_a,
        "wall_ratio": (wall_b / wall_a) if wall_a else None,
        "spans": spans,
        "counters": counters,
    }


def render_report(record: dict, *, top: int = 10) -> str:
    """Human rendering of one record: header, top-k spans, counters."""
    validate_record(record)
    lines = []
    target = f" {record['target']}" if record.get("target") else ""
    preset = f" [{record['preset']}]" if record.get("preset") else ""
    lines.append(f"run: {record['command']}{target}{preset}")
    lines.append(f"when: {record.get('created_utc', '?')}   code: {record['code_version']}")
    cpu = record.get("cpu_s")
    cpu_text = f"   cpu {cpu:.3f} s" if isinstance(cpu, (int, float)) else ""
    lines.append(f"wall {record['wall_s']:.3f} s{cpu_text}")

    spans = sorted(
        record["spans"].items(),
        key=lambda item: item[1].get("wall_s", 0.0),
        reverse=True,
    )
    if spans:
        lines.append("")
        lines.append(f"top spans (of {len(spans)}):")
        name_width = max(len(name) for name, _ in spans[:top])
        for name, totals in spans[:top]:
            share = (
                100.0 * totals.get("wall_s", 0.0) / record["wall_s"]
                if record["wall_s"]
                else 0.0
            )
            lines.append(
                f"  {name:<{name_width}}  "
                f"{totals.get('wall_s', 0.0):>9.3f} s  "
                f"{share:>5.1f}%  "
                f"x{totals.get('count', 0)}"
            )

    resilience = record.get("resilience") or {}
    if any(resilience.values()):
        lines.append("")
        lines.append("resilience:")
        name_width = max(len(name) for name in resilience)
        for name in sorted(resilience):
            if resilience[name]:
                lines.append(f"  {name:<{name_width}}  {resilience[name]}")

    store = record.get("store") or {}
    if any(store.values()):
        lines.append("")
        lines.append("store:")
        name_width = max(len(name) for name in store)
        for name in sorted(store):
            if store[name]:
                lines.append(f"  {name:<{name_width}}  {store[name]}")

    service = record.get("service") or {}
    if any(service.values()):
        lines.append("")
        lines.append("service:")
        name_width = max(len(name) for name in service)
        for name in sorted(service):
            if service[name]:
                lines.append(f"  {name:<{name_width}}  {service[name]}")

    counters = record["metrics"].get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters:")
        name_width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{name_width}}  {counters[name]}")

    gauges = record["metrics"].get("gauges", {})
    if gauges:
        lines.append("")
        lines.append("gauges:")
        name_width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name:<{name_width}}  {gauges[name]}")
    return "\n".join(lines)


def render_compare(diff: dict, *, top: int = 10) -> str:
    """Human rendering of a :func:`compare` result."""
    lines = []
    side_a, side_b = diff["a"], diff["b"]
    lines.append(
        f"a: {side_a['command']} {side_a.get('target') or ''} "
        f"({side_a.get('created_utc', '?')})  wall {side_a['wall_s']:.3f} s"
    )
    lines.append(
        f"b: {side_b['command']} {side_b.get('target') or ''} "
        f"({side_b.get('created_utc', '?')})  wall {side_b['wall_s']:.3f} s"
    )
    ratio = diff.get("wall_ratio")
    ratio_text = f"  ({ratio:.2f}x)" if isinstance(ratio, (int, float)) else ""
    lines.append(f"wall delta: {diff['wall_delta_s']:+.3f} s{ratio_text}")

    moved = [
        (name, entry)
        for name, entry in diff["spans"].items()
        if abs(entry["wall_delta"]) > 0.0
    ]
    moved.sort(key=lambda item: abs(item[1]["wall_delta"]), reverse=True)
    if moved:
        lines.append("")
        lines.append("span deltas:")
        name_width = max(len(name) for name, _ in moved[:top])
        for name, entry in moved[:top]:
            lines.append(
                f"  {name:<{name_width}}  "
                f"{entry['wall_a']:>9.3f} -> {entry['wall_b']:<9.3f}  "
                f"{entry['wall_delta']:+.3f} s"
            )

    changed = {
        name: entry for name, entry in diff["counters"].items() if entry["delta"]
    }
    if changed:
        lines.append("")
        lines.append("counter deltas:")
        name_width = max(len(name) for name in changed)
        for name in sorted(changed):
            entry = changed[name]
            lines.append(
                f"  {name:<{name_width}}  {entry['a']} -> {entry['b']}  "
                f"({entry['delta']:+d})"
            )
    return "\n".join(lines)
