"""Hierarchical spans with zero cost when tracing is disabled.

The tracer answers "where did the time go" for any run without perturbing
it.  A :class:`Tracer` hands out context-managed spans::

    with tracer.span("network.outer_iteration", cell=i):
        ...

Each span records monotonic wall time (``time.perf_counter``) and process
CPU time (``time.process_time``), nests under whichever span is open on the
same tracer, and carries arbitrary keyword attributes.  Closing the root
spans leaves two aggregate views behind: the span *tree* (every recorded
span with its children, in start order) and flat per-name *totals* (count,
wall, CPU per span name) -- the totals are what the run ledger persists and
what ``gprs-repro report`` renders.

Disabled tracing must cost nothing: the hot paths of the structured solver
and the uniformisation loop enter spans thousands of times per run, and the
standing contract of this repo is that instrumentation never changes
numbers *or* measurably changes timings.  When no tracer is active,
:func:`current_tracer` returns the module-level :data:`NULL_TRACER`, whose
``span()`` returns one shared, reusable no-op context manager -- no
allocation, no clock reads, no state.  Activation is ambient through a
:class:`contextvars.ContextVar` (the same pattern as
:func:`repro.runtime.executor.execution_options`), so library code never
threads a tracer argument through call chains: it asks for the current one
at the instant it opens a span.

This module is intentionally stdlib-only: it is imported by the innermost
core/runtime modules and must never create an import cycle.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "SpanNode",
    "Tracer",
    "activate_tracer",
    "current_tracer",
]


@dataclass
class SpanNode:
    """One recorded span: a named, timed, attributed node of the span tree."""

    name: str
    attributes: dict = field(default_factory=dict)
    wall_s: float = 0.0
    cpu_s: float = 0.0
    children: list["SpanNode"] = field(default_factory=list)

    def as_dict(self) -> dict:
        record = {
            "name": self.name,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
        }
        if self.attributes:
            record["attributes"] = dict(self.attributes)
        if self.children:
            record["children"] = [child.as_dict() for child in self.children]
        return record


class _NullSpan:
    """The shared no-op span context manager (one instance per process)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every call is a constant-time no-op."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, **attributes) -> _NullSpan:
        return _NULL_SPAN

    def span_totals(self) -> dict:
        return {}

    def tree(self) -> list:
        return []


#: The process-wide disabled tracer returned whenever none is active.
NULL_TRACER = NullTracer()


class Tracer:
    """Collects hierarchical spans into a tree plus flat per-name totals."""

    enabled = True

    def __init__(self) -> None:
        self._roots: list[SpanNode] = []
        self._stack: list[SpanNode] = []

    @contextmanager
    def span(self, name: str, **attributes):
        """Open one span; times it and files it under the enclosing span."""
        node = SpanNode(name=name, attributes=attributes)
        parent = self._stack[-1] if self._stack else None
        if parent is None:
            self._roots.append(node)
        else:
            parent.children.append(node)
        self._stack.append(node)
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        try:
            yield node
        finally:
            node.wall_s = time.perf_counter() - wall_start
            node.cpu_s = time.process_time() - cpu_start
            self._stack.pop()

    def tree(self) -> list[SpanNode]:
        """Every recorded root span (with children), in start order."""
        return list(self._roots)

    def span_totals(self) -> dict[str, dict]:
        """Flat per-name aggregates: ``{name: {count, wall_s, cpu_s}}``.

        ``wall_s``/``cpu_s`` sum the *self-inclusive* durations of every span
        with that name; nested same-name spans therefore overlap, which is
        the conventional flat-profile reading (a name's total is the time
        during which at least that many spans of the name were open).
        """
        totals: dict[str, dict] = {}
        stack = list(self._roots)
        while stack:
            node = stack.pop()
            entry = totals.setdefault(
                node.name, {"count": 0, "wall_s": 0.0, "cpu_s": 0.0}
            )
            entry["count"] += 1
            entry["wall_s"] += node.wall_s
            entry["cpu_s"] += node.cpu_s
            stack.extend(node.children)
        return totals

    def as_dict(self) -> dict:
        return {
            "totals": self.span_totals(),
            "tree": [root.as_dict() for root in self._roots],
        }


_ACTIVE_TRACER: ContextVar["Tracer | NullTracer"] = ContextVar(
    "repro_active_tracer", default=NULL_TRACER
)


def current_tracer() -> "Tracer | NullTracer":
    """The ambient tracer: :data:`NULL_TRACER` unless one was activated."""
    return _ACTIVE_TRACER.get()


@contextmanager
def activate_tracer(tracer: "Tracer | NullTracer"):
    """Install ``tracer`` as the ambient tracer for the enclosed block."""
    token = _ACTIVE_TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE_TRACER.reset(token)
