"""Unified observability: hierarchical spans, typed metrics, run ledger.

Three layers, one per module:

- :mod:`repro.obs.trace` -- zero-cost-when-disabled hierarchical spans with
  monotonic wall/CPU timings, aggregated into a span tree plus flat
  per-name totals.
- :mod:`repro.obs.metrics` -- a process-local registry of typed
  counters/gauges/histograms with PID-guarded merge semantics across the
  ``ProcessPoolExecutor`` boundary.
- :mod:`repro.obs.ledger` -- the schema-versioned JSONL run ledger, the
  ``gprs-repro report`` rendering, and the :func:`~repro.obs.ledger.compare`
  helper the benchmarks share.

The standing contract: instrumentation never changes numbers.  Tracing on
vs. off is bitwise identical, and the disabled path costs one contextvar
read per span site.
"""

from repro.obs.ledger import (
    SCHEMA,
    SCHEMA_VERSION,
    append_record,
    compare,
    make_record,
    read_ledger,
    render_compare,
    render_report,
    resilience_block,
    service_block,
    spec_digest,
    store_block,
    validate_record,
)
from repro.obs.metrics import (
    MetricsRegistry,
    absorb_export,
    activate_registry,
    current_registry,
    export_delta,
    global_registry,
)
from repro.obs.trace import (
    NULL_TRACER,
    SpanNode,
    Tracer,
    activate_tracer,
    current_tracer,
)

__all__ = [
    "NULL_TRACER",
    "SCHEMA",
    "SCHEMA_VERSION",
    "MetricsRegistry",
    "SpanNode",
    "Tracer",
    "absorb_export",
    "activate_registry",
    "activate_tracer",
    "append_record",
    "compare",
    "current_registry",
    "current_tracer",
    "export_delta",
    "global_registry",
    "make_record",
    "read_ledger",
    "render_compare",
    "render_report",
    "resilience_block",
    "service_block",
    "store_block",
    "spec_digest",
    "validate_record",
]
