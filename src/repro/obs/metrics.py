"""Process-local typed metrics with cross-process merge semantics.

One :class:`MetricsRegistry` per process collects everything the engines
already count ad hoc -- structured-solver sweeps and coarse-space
engagements, generator-template builds vs. rewrites, result- and
propagator-cache hits/misses/bytes, warm vs. cold solves, uniformisation
matvecs, executor chunk and pipeline occupancy -- under three metric types:

``counter``
    Monotonic event counts.  Merging sums them.
``gauge``
    Last-written point-in-time values (cache byte occupancy, pool width).
    Merging keeps the incoming value per worker-qualified name; unqualified
    merges overwrite.
``histogram``
    Count/sum/min/max summaries of observed values (chunk sizes, pipeline
    round widths).  Merging combines the summaries exactly.

Worker processes of a sweep each hold their own registry (module state does
not cross the ``ProcessPoolExecutor`` boundary).  A worker task therefore
finishes by calling :func:`export_delta` -- the registry delta accumulated
since the task started, stamped with the worker's PID -- and ships it home
piggybacked on its result.  The parent calls :func:`absorb_export`, which
merges the delta *only when the PID differs from its own*: on the serial
path the very same task function runs in-process, its counts land in the
parent registry directly, and absorbing its export too would double-count.
That PID guard is what lets one code path serve both execution modes while
keeping ``jobs = N`` metric totals identical to serial for all solver-work
counters.

Registries are **thread-safe**: every mutation and every snapshot runs
under one re-entrant lock per registry.  The service tier reads and writes
the global registry from concurrent handler threads, and a ``/stats``
snapshot taken mid-request must never observe a torn histogram or a
half-applied merge.  The lock is uncontended on the single-threaded paths,
so the solver hot loops pay only an uncontended acquire.

Stdlib-only on purpose: imported by the innermost core/runtime modules.
"""

from __future__ import annotations

import os
import threading
from contextvars import ContextVar
from dataclasses import dataclass, field

__all__ = [
    "MetricsRegistry",
    "absorb_export",
    "activate_registry",
    "current_registry",
    "export_delta",
    "global_registry",
]


@dataclass
class _Histogram:
    """Exact combinable summary of observed values."""

    count: int = 0
    total: float = 0.0
    min: float | None = None
    max: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def combine(self, other: dict) -> None:
        if not other.get("count"):
            return
        self.count += other["count"]
        self.total += other["sum"]
        self.min = other["min"] if self.min is None else min(self.min, other["min"])
        self.max = other["max"] if self.max is None else max(self.max, other["max"])

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": (self.total / self.count) if self.count else None,
        }


@dataclass
class MetricsRegistry:
    """Typed counters, gauges, and histograms for one process."""

    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    # -- recording -----------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the counter ``name`` (creating it at zero)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its latest ``value``."""
        with self._lock:
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """File ``value`` into the histogram ``name``."""
        with self._lock:
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = _Histogram()
            histogram.observe(value)

    # -- snapshots and merges ------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-data copy of every metric (JSON-ready, never torn)."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": {
                    name: histogram.as_dict()
                    for name, histogram in self.histograms.items()
                },
            }

    def delta_since(self, baseline: dict) -> dict:
        """The change from ``baseline`` (an earlier :meth:`snapshot`).

        Counters subtract (zero-change counters are dropped); gauges and
        histograms report their current state whenever it moved.
        """
        with self._lock:
            return self._delta_since_locked(baseline)

    def _delta_since_locked(self, baseline: dict) -> dict:
        base_counters = baseline.get("counters", {})
        counters = {
            name: value - base_counters.get(name, 0)
            for name, value in self.counters.items()
            if value != base_counters.get(name, 0)
        }
        base_gauges = baseline.get("gauges", {})
        gauges = {
            name: value
            for name, value in self.gauges.items()
            if value != base_gauges.get(name)
        }
        base_histograms = baseline.get("histograms", {})
        histograms = {}
        for name, histogram in self.histograms.items():
            current = histogram.as_dict()
            base = base_histograms.get(name)
            if base is None:
                if current["count"]:
                    histograms[name] = current
                continue
            if current["count"] == base["count"]:
                continue
            histograms[name] = {
                "count": current["count"] - base["count"],
                "sum": current["sum"] - base["sum"],
                # Extremes are not subtractable; the delta keeps the current
                # window's bounds, which is the honest combinable summary.
                "min": current["min"],
                "max": current["max"],
                "mean": None,
            }
            if histograms[name]["count"]:
                histograms[name]["mean"] = (
                    histograms[name]["sum"] / histograms[name]["count"]
                )
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge(self, snapshot: dict) -> None:
        """Fold a snapshot/delta from another registry into this one.

        Atomic: a concurrent :meth:`snapshot` sees either none or all of the
        merged values (the lock is re-entrant, so the nested ``count`` and
        ``gauge`` calls stay on this thread's acquisition).
        """
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self.count(name, value)
            for name, value in snapshot.get("gauges", {}).items():
                self.gauge(name, value)
            for name, summary in snapshot.get("histograms", {}).items():
                histogram = self.histograms.get(name)
                if histogram is None:
                    histogram = self.histograms[name] = _Histogram()
                histogram.combine(summary)

    def clear(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()


_GLOBAL_REGISTRY: MetricsRegistry | None = None
_GLOBAL_LOCK = threading.Lock()


def global_registry() -> MetricsRegistry:
    """This process's shared registry (created on first use, race-free)."""
    global _GLOBAL_REGISTRY
    if _GLOBAL_REGISTRY is None:
        with _GLOBAL_LOCK:
            if _GLOBAL_REGISTRY is None:
                _GLOBAL_REGISTRY = MetricsRegistry()
    return _GLOBAL_REGISTRY


_ACTIVE_REGISTRY: ContextVar[MetricsRegistry | None] = ContextVar(
    "repro_active_registry", default=None
)


def current_registry() -> MetricsRegistry:
    """The ambient registry: the process-global one unless overridden."""
    return _ACTIVE_REGISTRY.get() or global_registry()


class activate_registry:
    """Install ``registry`` as the ambient registry for a ``with`` block."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        self._token = None

    def __enter__(self) -> MetricsRegistry:
        self._token = _ACTIVE_REGISTRY.set(self._registry)
        return self._registry

    def __exit__(self, *exc_info) -> bool:
        _ACTIVE_REGISTRY.reset(self._token)
        return False


# -- worker export protocol ---------------------------------------------------


def export_delta(baseline: dict, registry: MetricsRegistry | None = None) -> dict:
    """Package a worker's metric delta for shipment back to the parent.

    ``baseline`` is the :meth:`MetricsRegistry.snapshot` taken when the task
    started; the export carries the delta since then plus this process's PID
    so the parent can tell a worker's export from its own in-process run.
    """
    registry = registry if registry is not None else current_registry()
    return {"pid": os.getpid(), "metrics": registry.delta_since(baseline)}


def absorb_export(export: dict | None, registry: MetricsRegistry | None = None) -> bool:
    """Merge a worker export unless it came from this very process.

    Returns ``True`` when the export was merged.  Exports stamped with the
    parent's own PID are ignored: the serial path runs the identical task
    function in-process, so its metrics are already in the registry and
    merging the export again would double-count every event.
    """
    if not export:
        return False
    if export.get("pid") == os.getpid():
        return False
    registry = registry if registry is not None else current_registry()
    registry.merge(export.get("metrics", {}))
    return True
