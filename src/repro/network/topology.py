"""Cell topologies: neighbour graphs with handover routing and per-cell overrides.

A :class:`CellTopology` describes *where handovers go*: a row-stochastic
routing matrix whose entry ``routing[i][j]`` is the probability that a user
handing over out of cell ``i`` enters cell ``j``, plus optional per-cell
parameter overrides (a hotter arrival rate, a degraded radio profile, a
different channel split).  The network model couples one single-cell CTMC per
cell through this routing (see :mod:`repro.network.model`).

Constructors cover the layouts the paper and its extensions need:

* :func:`hexagonal_cluster` -- the paper's wrap-around cluster.  With seven
  cells the wrap-around makes every cell adjacent to the six others, so the
  routing is uniform over all other cells and **doubly stochastic**; a
  homogeneous network on this topology reproduces the paper's single-cell
  fixed point exactly.
* :func:`ring` -- cells on a cycle, each handing over to its two neighbours.
* :func:`grid` -- a rows x cols lattice, optionally wrapped into a torus
  (wrapped grids are doubly stochastic, open grids are not).
* :func:`hotspot` -- a wrap-around cluster whose hot cell receives a
  multiplied arrival rate (the classic heterogeneous question the single-cell
  model cannot answer).

Topologies are frozen and dict round-trippable (:meth:`CellTopology.to_dict` /
:meth:`CellTopology.from_dict`) so they can live inside scenario specs and
content-addressed cache keys.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from types import MappingProxyType

import numpy as np

from repro.core.parameters import GprsModelParameters

__all__ = [
    "CELL_OVERRIDE_FIELDS",
    "CellTopology",
    "grid",
    "hexagonal_cluster",
    "hotspot",
    "ring",
]

#: Per-cell override keys: every cell-local field of
#: :class:`~repro.core.parameters.GprsModelParameters` (the shared traffic
#: model and the swept arrival rate are excluded) plus the multiplicative
#: ``arrival_rate_multiplier`` used for hotspot cells, which composes with the
#: sweep instead of pinning an absolute rate.
CELL_OVERRIDE_FIELDS = frozenset(
    {
        "gprs_fraction",
        "number_of_channels",
        "reserved_pdch",
        "buffer_size",
        "max_gprs_sessions",
        "coding_scheme",
        "mean_gsm_call_duration_s",
        "mean_gsm_dwell_time_s",
        "mean_gprs_dwell_time_s",
        "tcp_threshold",
        "block_error_rate",
        "arrival_rate_multiplier",
    }
)

#: Row-sum slack tolerated before a routing matrix is rejected.
_STOCHASTIC_TOL = 1e-9


@dataclass(frozen=True)
class CellTopology:
    """A neighbour graph with handover routing probabilities and overrides.

    Parameters
    ----------
    name:
        Human-readable label, e.g. ``"hex-7"`` (shown by reports).
    routing:
        Square row-stochastic matrix; ``routing[i][j]`` is the probability
        that a handover out of cell ``i`` targets cell ``j``.  The diagonal
        must be zero except in the degenerate single-cell topology, where
        ``((1.0,),)`` encodes the paper's wrap-around (every departing user
        re-enters the same cell -- the homogeneity assumption itself).
    overrides:
        Optional per-cell parameter overrides, ``{cell_index: {field: value}}``
        with fields from :data:`CELL_OVERRIDE_FIELDS`.  Cells without an
        entry use the base parameters unchanged.  Stored as read-only
        mappings after validation.
    """

    name: str
    routing: tuple[tuple[float, ...], ...]
    overrides: dict[int, dict] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a topology needs a non-empty name")
        rows = tuple(tuple(float(value) for value in row) for row in self.routing)
        if not rows:
            raise ValueError("a topology needs at least one cell")
        size = len(rows)
        for index, row in enumerate(rows):
            if len(row) != size:
                raise ValueError("the routing matrix must be square")
            if any(value < 0.0 for value in row):
                raise ValueError("routing probabilities must be non-negative")
            if abs(sum(row) - 1.0) > _STOCHASTIC_TOL:
                raise ValueError(
                    f"routing row {index} must sum to 1 (got {sum(row)!r})"
                )
            if size > 1 and row[index] != 0.0:
                raise ValueError(
                    f"cell {index} routes handovers to itself; self-loops are "
                    "only meaningful in a single-cell topology"
                )
        object.__setattr__(self, "routing", rows)

        overrides = {}
        for cell, values in dict(self.overrides).items():
            cell = int(cell)
            if not 0 <= cell < size:
                raise ValueError(f"override cell index {cell} out of range")
            values = dict(values)
            unknown = set(values) - CELL_OVERRIDE_FIELDS
            if unknown:
                raise ValueError(
                    f"unknown cell override(s) {sorted(unknown)}; allowed: "
                    f"{sorted(CELL_OVERRIDE_FIELDS)}"
                )
            if values:
                overrides[cell] = MappingProxyType(values)
        # Read-only views: topologies are registered as process-wide
        # singletons and content-addressed by digest(), so a mutable dict
        # here would let a caller silently change cache keys mid-sweep.
        object.__setattr__(self, "overrides", MappingProxyType(overrides))

    def __reduce__(self):
        # MappingProxyType is not picklable; round-trip through the dict form.
        return (CellTopology.from_dict, (self.to_dict(),))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def number_of_cells(self) -> int:
        return len(self.routing)

    def neighbours(self, cell: int) -> tuple[int, ...]:
        """Cells reachable by a handover out of ``cell`` (ascending order)."""
        self._validate_cell(cell)
        return tuple(
            target
            for target, probability in enumerate(self.routing[cell])
            if probability > 0.0 and target != cell
        )

    def routing_matrix(self) -> np.ndarray:
        """The routing as a ``(cells, cells)`` float array (a fresh copy)."""
        return np.array(self.routing, dtype=float)

    def is_doubly_stochastic(self, tol: float = 1e-9) -> bool:
        """Whether every column also sums to one.

        Doubly stochastic routing conserves handover flow per cell under
        homogeneity: a uniform network then has the paper's single-cell fixed
        point in every cell.  Wrap-around clusters, rings and wrapped grids
        qualify; open grids do not.
        """
        columns = self.routing_matrix().sum(axis=0)
        return bool(np.all(np.abs(columns - 1.0) <= tol))

    def is_homogeneous(self) -> bool:
        """Whether no cell overrides the base parameters."""
        return not self.overrides

    def cell_parameters(
        self, cell: int, base: GprsModelParameters
    ) -> GprsModelParameters:
        """Materialise the effective parameters of ``cell`` over ``base``.

        The ``arrival_rate_multiplier`` override scales the base arrival rate
        (so it composes with arrival-rate sweeps); every other override
        replaces the corresponding parameter field.
        """
        self._validate_cell(cell)
        values = dict(self.overrides.get(cell, {}))
        multiplier = values.pop("arrival_rate_multiplier", None)
        params = base.replace(**values) if values else base
        if multiplier is not None:
            params = params.replace(
                total_call_arrival_rate=base.total_call_arrival_rate
                * float(multiplier)
            )
        return params

    def _validate_cell(self, cell: int) -> None:
        if not 0 <= cell < self.number_of_cells:
            raise ValueError(
                f"cell index {cell} out of range (topology has "
                f"{self.number_of_cells} cells)"
            )

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Return the topology as a plain, JSON-serialisable dictionary."""
        return {
            "name": self.name,
            "routing": [list(row) for row in self.routing],
            "overrides": {
                str(cell): dict(values) for cell, values in sorted(self.overrides.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CellTopology":
        """Rebuild a topology from :meth:`to_dict` output (JSON string keys ok)."""
        known = {"name", "routing", "overrides"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown topology field(s) {sorted(unknown)}")
        return cls(
            name=data["name"],
            routing=tuple(tuple(row) for row in data["routing"]),
            overrides={
                int(cell): dict(values)
                for cell, values in dict(data.get("overrides", {})).items()
            },
        )

    def digest(self) -> str:
        """Stable content hash of the topology (for cache keys and reports)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


# ---------------------------------------------------------------------- #
# Constructors
# ---------------------------------------------------------------------- #
def _uniform_rows(adjacency: list[list[int]], cells: int) -> tuple[tuple[float, ...], ...]:
    rows = []
    for cell in range(cells):
        neighbours = adjacency[cell]
        row = [0.0] * cells
        for target in neighbours:
            row[target] += 1.0 / len(neighbours)
        rows.append(tuple(row))
    return tuple(rows)


def hexagonal_cluster(
    cells: int = 7, overrides: dict[int, dict] | None = None
) -> CellTopology:
    """The paper's wrap-around hexagonal cluster with uniform routing.

    With wrap-around, a user leaving the cluster re-enters on the opposite
    side, which for the canonical seven-cell layout makes every cell adjacent
    to every other cell; handovers route uniformly over the ``cells - 1``
    other cells.  The single-cell case routes back into the same cell -- the
    homogeneity assumption of Eqs. (4)-(5) itself.  The resulting routing is
    doubly stochastic for any size, so a homogeneous network on this topology
    reproduces the single-cell fixed point in every cell.
    """
    if cells < 1:
        raise ValueError("the cluster needs at least one cell")
    if cells == 1:
        routing: tuple[tuple[float, ...], ...] = ((1.0,),)
    else:
        routing = _uniform_rows(
            [[j for j in range(cells) if j != i] for i in range(cells)], cells
        )
    return CellTopology(
        name=f"hex-{cells}", routing=routing, overrides=overrides or {}
    )


def ring(cells: int, overrides: dict[int, dict] | None = None) -> CellTopology:
    """A cycle of cells, each handing over to its two ring neighbours."""
    if cells < 1:
        raise ValueError("the ring needs at least one cell")
    if cells == 1:
        return CellTopology(name="ring-1", routing=((1.0,),), overrides=overrides or {})
    adjacency = [
        sorted({(i - 1) % cells, (i + 1) % cells} - {i}) for i in range(cells)
    ]
    return CellTopology(
        name=f"ring-{cells}",
        routing=_uniform_rows(adjacency, cells),
        overrides=overrides or {},
    )


def grid(
    rows: int,
    cols: int,
    *,
    wrap: bool = True,
    overrides: dict[int, dict] | None = None,
) -> CellTopology:
    """A ``rows x cols`` lattice; ``wrap=True`` closes it into a torus.

    Cells are numbered row-major.  A wrapped grid is doubly stochastic (every
    cell has exactly four neighbours); an open grid keeps handover flow inside
    the lattice but concentrates it on interior cells.
    """
    if rows < 1 or cols < 1:
        raise ValueError("the grid needs at least one row and one column")
    cells = rows * cols
    if cells == 1:
        return CellTopology(name="grid-1x1", routing=((1.0,),), overrides=overrides or {})
    adjacency: list[list[int]] = []
    for r in range(rows):
        for c in range(cols):
            targets: set[int] = set()
            for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                nr, nc = r + dr, c + dc
                if wrap:
                    nr, nc = nr % rows, nc % cols
                elif not (0 <= nr < rows and 0 <= nc < cols):
                    continue
                target = nr * cols + nc
                if target != r * cols + c:
                    targets.add(target)
            adjacency.append(sorted(targets))
    suffix = "torus" if wrap else "open"
    return CellTopology(
        name=f"grid-{rows}x{cols}-{suffix}",
        routing=_uniform_rows(adjacency, cells),
        overrides=overrides or {},
    )


def hotspot(
    cells: int = 7,
    *,
    hot_cell: int = 0,
    arrival_multiplier: float = 2.0,
    extra_overrides: dict[int, dict] | None = None,
) -> CellTopology:
    """A wrap-around cluster whose hot cell sees a multiplied arrival rate."""
    if arrival_multiplier <= 0:
        raise ValueError("arrival_multiplier must be positive")
    overrides: dict[int, dict] = {
        cell: dict(values) for cell, values in (extra_overrides or {}).items()
    }
    hot = dict(overrides.get(hot_cell, {}))
    hot["arrival_rate_multiplier"] = float(arrival_multiplier)
    overrides[hot_cell] = hot
    topology = hexagonal_cluster(cells, overrides)
    return CellTopology(
        name=f"hotspot-{cells}x{arrival_multiplier:g}",
        routing=topology.routing,
        overrides=topology.overrides,
    )
