"""Analytic multi-cell network layer: cells coupled by handover flows.

The paper's Markov model covers one cell and closes the handover loop with
the homogeneity assumption (incoming rate = own outgoing rate).  This package
generalises that closure to arbitrary heterogeneous topologies:

* :mod:`repro.network.topology` -- :class:`CellTopology`: a neighbour graph
  with per-edge handover routing probabilities and per-cell parameter
  overrides, plus constructors for the paper's wrap-around hexagonal cluster
  and for ring / grid / hotspot layouts.
* :mod:`repro.network.model` -- :class:`NetworkModel`: the network-wide
  handover-flow fixed point (closed-form Erlang pre-pass, then warm-started
  CTMC outer iterations with cells solved in parallel) and its
  :class:`NetworkResult` (per-cell measures, network aggregates, convergence
  trace, warm-start accounting).
* :mod:`repro.network.sweep` -- arrival-rate sweeps over a whole topology,
  cached under topology-aware keys and warm-continued from point to point.

Quickstart::

    from repro import GprsModelParameters, traffic_model
    from repro.network import NetworkModel, hotspot

    params = GprsModelParameters.from_traffic_model(
        traffic_model(3), total_call_arrival_rate=0.5,
        buffer_size=10, max_gprs_sessions=5)
    result = NetworkModel(hotspot(7, arrival_multiplier=2.5), params).solve()
    print(result.series("voice_blocking_probability"))
"""

# topology has no intra-package dependencies, model depends on topology and
# sweep on both.  Nothing here imports repro.runtime at module level (sweep
# defers those imports into its functions): the runtime package reaches into
# repro.network.topology for its scenario registry, and the dependency must
# stay one-directional for both packages to import standalone.
from repro.network.topology import (
    CELL_OVERRIDE_FIELDS,
    CellTopology,
    grid,
    hexagonal_cluster,
    hotspot,
    ring,
)
from repro.network.model import (
    CellSolution,
    NetworkModel,
    NetworkResult,
    network_erlang_rates,
)
from repro.network.sweep import (
    NetworkSweepPoint,
    NetworkSweepResult,
    network_sweep_payloads,
    run_network_sweep,
)

__all__ = [
    "CELL_OVERRIDE_FIELDS",
    "CellSolution",
    "CellTopology",
    "NetworkModel",
    "NetworkResult",
    "NetworkSweepPoint",
    "NetworkSweepResult",
    "grid",
    "hexagonal_cluster",
    "hotspot",
    "network_erlang_rates",
    "network_sweep_payloads",
    "ring",
    "run_network_sweep",
]
