"""Joint solution of heterogeneous cells coupled by handover flows.

The paper closes the handover loop of a *single* cell with the homogeneity
assumption: the incoming handover rate equals the cell's own outgoing rate
(Eqs. (4)-(5)).  :class:`NetworkModel` replaces that assumption with the
actual network coupling -- the Marsan-style fixed point over a whole
topology: each cell's incoming GSM/GPRS handover rates are the
routing-weighted sum of its neighbours' outgoing rates,

    ``in_j = sum_i routing[i][j] * out_i``,

which lets the analytic model answer heterogeneous questions (hotspot cells,
uneven radio quality, mixed channel splits) that previously only the
discrete-event simulator could approach.

The solve runs in two stages:

1. **Erlang pre-pass.**  The network-wide fixed point is first iterated with
   the closed-form Erlang-loss outgoing rates
   (:func:`~repro.core.handover.cell_outgoing_rates`) -- the exact per-cell
   map of the paper's Eqs. (4)-(5), evaluated per cell and routed.  This
   costs microseconds per iteration and lands within the Erlang tolerance of
   the true rates.  In a homogeneous network with doubly stochastic routing
   the symmetric iterates collapse onto the single-cell iteration, so the
   pre-pass converges to the paper's own fixed point.
2. **CTMC outer iterations.**  Every cell's full CTMC is then solved with its
   incoming rates *pinned* (:meth:`HandoverBalance.pinned`), the outgoing
   rates are re-measured from the stationary distribution
   (``mu_h,GSM E[n]`` and ``mu_h,GPRS E[m]``) and routed, and the loop
   repeats until the incoming rates stop drifting.  Because the chain's GSM
   and session marginals are exact Erlang-loss birth-death processes, stage 2
   confirms stage 1 up to solver tolerance within an iteration or two -- but
   it is what makes the coupling honest (the rates the measures are computed
   from are the rates the chain itself emits) and it is the natural consumer
   of the warm-start machinery: per cell shape one
   :class:`~repro.core.template.GeneratorTemplate` /
   :class:`~repro.core.structured_solver.StructuredSolveContext` pair is
   shared across cells and outer iterations, and from the second iteration on
   every solve is warm-started from that cell's previous stationary vector.

Cells are independent within an iteration, so they are solved in parallel
(``jobs > 1``) through a process pool kept alive across the outer loop;
results are reassembled in cell order and workers run the identical per-cell
code path, which keeps parallel runs bitwise identical to serial ones.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.core.handover import HandoverBalance, cell_outgoing_rates
from repro.core.measures import GprsPerformanceMeasures
from repro.core.model import GprsMarkovModel, build_solver_scaffold
from repro.core.parameters import GprsModelParameters
from repro.core.template import GeneratorTemplate
from repro.network.topology import CellTopology
from repro.obs.metrics import absorb_export, current_registry, export_delta
from repro.obs.trace import current_tracer
from repro.queueing.fixed_point import fixed_point_iteration

__all__ = [
    "CellSolution",
    "NetworkModel",
    "NetworkResult",
    "NetworkSolveDriver",
    "network_erlang_rates",
]


# ---------------------------------------------------------------------- #
# Per-process scaffolding cache (shared across cells and outer iterations)
# ---------------------------------------------------------------------- #
#: Scaffolding (state space, generator template, structured context) keyed by
#: the fixed-parameter fingerprint and solver.  Lives at module level so that
#: pool workers -- which stay alive across the outer iterations of one solve
#: -- reuse it exactly like the serial path does.  Reuse is numerically
#: neutral (templates are bitwise-faithful), so it cannot break the
#: parallel == serial guarantee.
_SCAFFOLDS: dict[tuple, tuple] = {}
_SCAFFOLD_LIMIT = 8


def _scaffold_for(params: GprsModelParameters, solver: str) -> tuple:
    key = (GeneratorTemplate.fingerprint_of(params), solver)
    cached = _SCAFFOLDS.pop(key, None)
    if cached is None:
        if len(_SCAFFOLDS) >= _SCAFFOLD_LIMIT:
            # Evict the least recently used entry (hits re-insert below), so
            # even a cyclic access pattern over many shapes keeps its most
            # recent shapes cached instead of thrashing.
            _SCAFFOLDS.pop(next(iter(_SCAFFOLDS)))
        cached = build_solver_scaffold(params, solver)
    _SCAFFOLDS[key] = cached
    return cached


@dataclass(frozen=True)
class _CellSolve:
    """Raw outcome of one cell solve (worker return value, picklable)."""

    measures: GprsPerformanceMeasures
    gsm_outgoing_rate: float
    gprs_outgoing_rate: float
    distribution: np.ndarray
    warm: bool
    iterations: int


def _solve_cell_task(job: tuple) -> tuple[_CellSolve, dict]:
    """Solve one cell's CTMC with pinned incoming handover rates.

    Top-level so the process pool can pickle it; the serial path calls the
    very same function, which is what keeps ``jobs = N`` bitwise identical to
    serial execution.  Returns ``(solve, metrics_export)``: the export ships
    a worker registry's delta home, and
    :meth:`NetworkSolveDriver.absorb` merges it only when it actually
    crossed a process boundary (the PID guard), so the serial path -- whose
    counts already landed in the parent registry -- is never double-counted.
    """
    baseline = current_registry().snapshot()
    params, solver, solver_tol, gsm_incoming, gprs_incoming, initial = job
    space, template, context = _scaffold_for(params, solver)
    model = GprsMarkovModel(
        params,
        solver_method=solver,
        solver_tol=solver_tol,
        initial_distribution=initial,
        generator_template=template,
        state_space=space,
        structured_context=context,
        fixed_handover_balance=HandoverBalance.pinned(gsm_incoming, gprs_incoming),
    )
    solution = model.solve()
    distribution = solution.steady_state.distribution
    states = space.all_states()
    gsm_outgoing = params.gsm_handover_departure_rate * float(
        np.dot(distribution, states.gsm_calls)
    )
    gprs_outgoing = params.gprs_handover_departure_rate * float(
        np.dot(distribution, states.gprs_sessions)
    )
    solve = _CellSolve(
        measures=solution.measures,
        gsm_outgoing_rate=gsm_outgoing,
        gprs_outgoing_rate=gprs_outgoing,
        distribution=distribution,
        # warm_start_used (not `initial is not None`): a degraded seed that
        # triggered the model's automatic cold retry must count as cold.
        warm=model.warm_start_used,
        iterations=solution.steady_state.iterations,
    )
    return solve, export_delta(baseline)


# ---------------------------------------------------------------------- #
# Stage 1: the closed-form network fixed point
# ---------------------------------------------------------------------- #
def network_erlang_rates(
    topology: CellTopology,
    cell_parameters: list[GprsModelParameters],
    *,
    tol: float = 1e-12,
    max_iterations: int = 500,
    initial: tuple[np.ndarray, np.ndarray] | None = None,
) -> tuple[np.ndarray, np.ndarray, int, bool]:
    """Balance the network-wide handover flows with Erlang-loss closed forms.

    Returns ``(gsm_incoming, gprs_incoming, iterations, converged)`` where the
    rate arrays have one entry per cell.  ``initial`` seeds the iteration
    (e.g. with the previous sweep point's converged rates); the default is
    the paper's ``lambda_h = lambda`` seed applied per cell.
    """
    cells = topology.number_of_cells
    routing_t = topology.routing_matrix().T

    def network_map(stacked: np.ndarray) -> np.ndarray:
        gsm_in = stacked[:cells]
        gprs_in = stacked[cells:]
        gsm_out = np.empty(cells)
        gprs_out = np.empty(cells)
        for index, params in enumerate(cell_parameters):
            gsm_out[index], gprs_out[index] = cell_outgoing_rates(
                params, gsm_in[index], gprs_in[index]
            )
        return np.concatenate([routing_t @ gsm_out, routing_t @ gprs_out])

    if initial is not None:
        seed = np.concatenate(
            [np.asarray(initial[0], dtype=float), np.asarray(initial[1], dtype=float)]
        )
        if seed.shape[0] != 2 * cells:
            raise ValueError("initial rates must provide one pair per cell")
        seed = np.maximum(0.0, seed)
    else:
        seed = np.array(
            [params.gsm_arrival_rate for params in cell_parameters]
            + [params.gprs_arrival_rate for params in cell_parameters]
        )

    result = fixed_point_iteration(
        network_map,
        initial=seed,
        tol=tol,
        max_iterations=max_iterations,
        accelerate=True,
    )
    balanced = np.maximum(0.0, result.value)
    return balanced[:cells], balanced[cells:], result.iterations, result.converged


# ---------------------------------------------------------------------- #
# Results
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class CellSolution:
    """One cell's share of a network solution."""

    index: int
    parameters: GprsModelParameters
    measures: GprsPerformanceMeasures
    gsm_incoming_rate: float
    gprs_incoming_rate: float
    gsm_outgoing_rate: float
    gprs_outgoing_rate: float

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "values": self.measures.as_dict(),
            "gsm_incoming_rate": self.gsm_incoming_rate,
            "gprs_incoming_rate": self.gprs_incoming_rate,
            "gsm_outgoing_rate": self.gsm_outgoing_rate,
            "gprs_outgoing_rate": self.gprs_outgoing_rate,
        }


@dataclass(frozen=True)
class NetworkResult:
    """Joint solution of all cells plus convergence and warm-start accounting.

    Attributes
    ----------
    cells:
        One :class:`CellSolution` per cell, in cell order.
    aggregates:
        Unweighted mean of every performance measure across cells (the same
        keys as :meth:`~repro.core.measures.GprsPerformanceMeasures.as_dict`);
        network *totals* are available via :meth:`total`.
    outer_iterations / convergence_trace / converged:
        CTMC outer fixed-point diagnostics; the trace holds the relative
        incoming-rate drift after each outer iteration.
    erlang_iterations:
        Iterations spent in the closed-form pre-pass.
    solver_calls / cold_solves:
        Total CTMC solves and how many of them started without a warm seed
        (the first outer iteration, unless the model was seeded with previous
        distributions -- e.g. by the sweep continuation).
    solver_iterations:
        Inner solver iterations summed over every cell solve (the quantity
        the warm starts reduce; direct solves count as one iteration each).
    frozen_solves:
        Cell solves skipped by the outer-loop freezing (``freeze_tol``):
        iterations in which a cell's incoming rates had not moved since its
        last actual solve.  Always 0 when freezing is disabled.
    """

    topology: CellTopology
    base_parameters: GprsModelParameters
    cells: tuple[CellSolution, ...]
    aggregates: dict[str, float]
    outer_iterations: int
    converged: bool
    convergence_trace: tuple[float, ...]
    erlang_iterations: int
    solver_calls: int
    cold_solves: int
    solver_iterations: int
    distributions: tuple[np.ndarray, ...] = field(repr=False, compare=False)
    frozen_solves: int = 0

    @property
    def number_of_cells(self) -> int:
        return len(self.cells)

    @property
    def warm_solves(self) -> int:
        return self.solver_calls - self.cold_solves

    def cell(self, index: int) -> CellSolution:
        return self.cells[index]

    def series(self, metric: str) -> tuple[float, ...]:
        """One measure across cells, in cell order."""
        return tuple(cell.measures.as_dict()[metric] for cell in self.cells)

    def aggregate(self, metric: str) -> float:
        """Unweighted mean of ``metric`` across cells."""
        return self.aggregates[metric]

    def total(self, metric: str) -> float:
        """Sum of ``metric`` across cells (e.g. network carried traffic)."""
        return float(sum(self.series(metric)))

    def incoming_rates(self) -> tuple[np.ndarray, np.ndarray]:
        """The balanced ``(gsm, gprs)`` incoming rates, one entry per cell.

        These are always the rates the final cell solves were computed with
        (converged to ``outer_tol`` when ``converged`` is true).
        """
        return (
            np.array([cell.gsm_incoming_rate for cell in self.cells]),
            np.array([cell.gprs_incoming_rate for cell in self.cells]),
        )

    def as_dict(self) -> dict:
        """JSON-serialisable rendering (used by the cache and ``--json``).

        The topology is identified by name/size/digest rather than embedded
        in full: sweep records would otherwise repeat the routing matrix once
        per point (the spec already carries the complete rendering once).
        """
        return {
            "topology": {
                "name": self.topology.name,
                "cells": self.topology.number_of_cells,
                "digest": self.topology.digest(),
            },
            "aggregates": dict(self.aggregates),
            "cells": [cell.as_dict() for cell in self.cells],
            "outer_iterations": self.outer_iterations,
            "converged": self.converged,
            "convergence_trace": list(self.convergence_trace),
            "erlang_iterations": self.erlang_iterations,
            "solver_calls": self.solver_calls,
            "cold_solves": self.cold_solves,
            "solver_iterations": self.solver_iterations,
            "frozen_solves": self.frozen_solves,
        }


# ---------------------------------------------------------------------- #
# The network model
# ---------------------------------------------------------------------- #
class NetworkModel:
    """Analytic model of a multi-cell network coupled by handover flows.

    Parameters
    ----------
    topology:
        The neighbour graph, routing probabilities and per-cell overrides.
    base_parameters:
        Parameters shared by every cell before overrides are applied; the
        arrival rate of this object is the sweep axis of network sweeps.
    solver_method / solver_tol:
        Per-cell steady-state solver settings
        (see :class:`~repro.core.model.GprsMarkovModel`).
    outer_tol:
        Relative drift of the incoming handover rates below which the CTMC
        outer fixed point is considered converged.
    min_outer_iterations:
        Lower bound on CTMC outer iterations (default 2): the second
        iteration is what *verifies* the routed rates against chains solved
        with them, and it runs entirely warm.
    max_outer_iterations:
        Outer iteration budget; exceeding it returns ``converged=False``.
    erlang_tol:
        Tolerance of the closed-form pre-pass.
    jobs:
        Worker processes for the per-iteration cell solves (1 = serial,
        in-process).  Results are bitwise independent of ``jobs``.
    pool:
        Optional externally managed pool reused for the cell solves (the
        sweep loop passes one pool across all points so workers keep their
        scaffold caches warm); the caller owns its lifetime.  Preferably a
        :class:`~repro.runtime.resilience.ResilientPool` (retries, deadlines
        and degradation apply); a plain :class:`ProcessPoolExecutor` is still
        accepted for compatibility and runs without recovery.  When given,
        ``jobs`` only decides *whether* to use it.
    warm:
        When ``False`` every cell solve of every outer iteration starts cold
        (no stationary-vector continuation) -- the A/B knob of the network
        benchmarks; results change only within solver tolerance.
    freeze_tol:
        Outer-loop freezing threshold (``None`` = disabled).  When set, an
        outer iteration skips re-solving any cell whose incoming handover
        rates have moved by at most this relative amount since that cell's
        last actual solve, reusing its previous stationary distribution and
        outgoing rates.  In heterogeneous networks the cells converge
        unevenly, so the final iterations typically freeze all but the
        slowest cell (the saved solves are counted in
        :attr:`NetworkResult.frozen_solves`).  A frozen cell's reported
        measures correspond to rates at most ``freeze_tol`` away from the
        final ones, so choose it of the order of ``outer_tol``; freezing is
        deterministic, which preserves the parallel == serial guarantee.
    initial_rates / initial_distributions:
        Optional continuation state from an adjacent sweep point: seed rates
        for the pre-pass and per-cell stationary vectors that warm-start even
        the first outer iteration.
    """

    def __init__(
        self,
        topology: CellTopology,
        base_parameters: GprsModelParameters,
        *,
        solver_method: str = "auto",
        solver_tol: float = 1e-10,
        outer_tol: float = 1e-9,
        min_outer_iterations: int = 2,
        max_outer_iterations: int = 50,
        erlang_tol: float = 1e-12,
        jobs: int = 1,
        warm: bool = True,
        freeze_tol: float | None = None,
        pool: "ProcessPoolExecutor | object | None" = None,
        initial_rates: tuple[np.ndarray, np.ndarray] | None = None,
        initial_distributions: tuple[np.ndarray, ...] | None = None,
    ) -> None:
        if min_outer_iterations < 1:
            raise ValueError("min_outer_iterations must be at least 1")
        if max_outer_iterations < min_outer_iterations:
            raise ValueError("max_outer_iterations must cover the minimum")
        self._topology = topology
        self._base = base_parameters
        self._solver = solver_method
        self._solver_tol = solver_tol
        self._outer_tol = outer_tol
        self._min_outer = min_outer_iterations
        self._max_outer = max_outer_iterations
        self._erlang_tol = erlang_tol
        if freeze_tol is not None and freeze_tol < 0:
            raise ValueError("freeze_tol must be non-negative (or None to disable)")
        self._jobs = max(1, int(jobs))
        self._warm = warm
        self._freeze_tol = freeze_tol
        self._external_pool = pool
        self._initial_rates = initial_rates
        if initial_distributions is not None and len(initial_distributions) != (
            topology.number_of_cells
        ):
            raise ValueError("initial_distributions must provide one vector per cell")
        self._initial_distributions = initial_distributions

    @property
    def topology(self) -> CellTopology:
        return self._topology

    def cell_parameters(self) -> list[GprsModelParameters]:
        """The effective per-cell parameters (base plus overrides)."""
        return [
            self._topology.cell_parameters(index, self._base)
            for index in range(self._topology.number_of_cells)
        ]

    def solve(self) -> NetworkResult:
        """Run both fixed-point stages and return the joint solution.

        Parallel cell solves go through a
        :class:`~repro.runtime.resilience.ResilientPool` (configured from the
        ambient :class:`~repro.runtime.executor.ExecutionOptions`), so a
        crashed or timed-out worker is retried rather than aborting the
        solve.  A cell that exhausts its retry budget raises
        :class:`~repro.runtime.resilience.SweepFailureError` regardless of
        ``strict`` -- the fixed point needs every cell, so a network solve
        cannot partially complete; sweep callers catch it and record the
        whole point as failed.  Cell-task fault indices are dispatch ordinals
        within this solve.
        """
        from repro.runtime.executor import current_options
        from repro.runtime.resilience import (
            ResilientPool,
            SweepFailure,
            SweepFailureError,
        )

        driver = NetworkSolveDriver(self)
        cells = self._topology.number_of_cells
        own_pool: ResilientPool | None = None
        pool = self._external_pool
        if pool is None and self._jobs > 1 and cells > 1:
            options = current_options()
            own_pool = ResilientPool(
                min(self._jobs, cells),
                policy=options.retry,
                task_timeout=options.task_timeout,
                strict=options.strict,
            )
            pool = own_pool
        tracer = current_tracer()
        dispatched = 0
        try:
            while True:
                jobs = driver.next_jobs()
                with tracer.span(
                    "network.outer_iteration", cells=len(jobs)
                ):
                    if isinstance(pool, ResilientPool) and jobs:
                        outcomes = pool.run(
                            _solve_cell_task,
                            jobs,
                            site="cell",
                            indices=range(dispatched, dispatched + len(jobs)),
                        )
                        new_solves = []
                        for outcome in outcomes:
                            if isinstance(outcome, SweepFailure):
                                raise SweepFailureError(outcome)
                            new_solves.append(outcome)
                    elif pool is not None and len(jobs) > 1:
                        # Legacy externally managed ProcessPoolExecutor.
                        new_solves = list(pool.map(_solve_cell_task, jobs))
                    else:
                        new_solves = [_solve_cell_task(job) for job in jobs]
                    dispatched += len(jobs)
                    if driver.absorb(new_solves):
                        break
        finally:
            if own_pool is not None:
                own_pool.shutdown()
        return driver.result()


class NetworkSolveDriver:
    """Incremental state machine of one :meth:`NetworkModel.solve`.

    The driver separates *what to compute* from *where to compute it*: it
    emits the cell-solve jobs of the current CTMC outer iteration
    (:meth:`next_jobs`), absorbs their results and performs the routed-rate
    reduction (:meth:`absorb`), and finally assembles the
    :class:`NetworkResult` (:meth:`result`).  :meth:`NetworkModel.solve`
    drives one instance to completion; the pipelined sweep scheduler
    (:func:`repro.network.sweep.network_sweep_payloads` with
    ``pipelined=True``) interleaves many instances -- one per sweep point --
    over a single worker pool, so the cells of point ``i + 1`` fill the pool
    while point ``i``'s outer iteration drains.  Every job is a plain
    ``_solve_cell_task`` tuple built from this point's own inputs, so results
    are bitwise independent of which process executes them and in which
    order the points interleave.

    The Erlang pre-pass runs in the constructor (it is a closed-form,
    microsecond-scale computation that needs no pool).
    """

    def __init__(self, model: NetworkModel) -> None:
        self._model = model
        self._cells = model._topology.number_of_cells
        self._cell_params = model.cell_parameters()
        self._routing_t = model._topology.routing_matrix().T
        self._gsm_in, self._gprs_in, self._erlang_iterations, _ = network_erlang_rates(
            model._topology,
            self._cell_params,
            tol=model._erlang_tol,
            initial=model._initial_rates,
        )
        self._distributions: list[np.ndarray | None] = (
            list(model._initial_distributions)
            if model._initial_distributions is not None
            else [None] * self._cells
        )
        self._trace: list[float] = []
        self._solver_calls = 0
        self._cold_solves = 0
        self._solver_iterations = 0
        self._frozen_solves = 0
        self._converged = False
        self._outer = 0
        self._done = False
        self._solves: list[_CellSolve | None] = [None] * self._cells
        # Incoming rates each cell's latest actual solve used; the freezing
        # test compares against these, not the previous iteration's rates, so
        # slow cumulative drift can never hide behind small per-step moves.
        self._solved_gsm = np.full(self._cells, np.nan)
        self._solved_gprs = np.full(self._cells, np.nan)
        self._active: list[int] = []

    @property
    def done(self) -> bool:
        return self._done

    def next_jobs(self) -> list[tuple]:
        """Return the cell-solve jobs of the upcoming outer iteration.

        Each element is a ``_solve_cell_task`` argument tuple; frozen cells
        (``freeze_tol``) are omitted.  Returns an empty list when every cell
        is frozen this iteration (the caller still calls :meth:`absorb` with
        an empty result list) and when the solve is :attr:`done`.
        """
        if self._done:
            return []
        model = self._model
        self._outer += 1
        if model._freeze_tol is None:
            active = list(range(self._cells))
        else:
            freeze_scale = max(
                1.0,
                float(np.max(np.abs(self._gsm_in))),
                float(np.max(np.abs(self._gprs_in))),
            )
            active = [
                index
                for index in range(self._cells)
                if self._solves[index] is None
                or max(
                    abs(float(self._gsm_in[index]) - self._solved_gsm[index]),
                    abs(float(self._gprs_in[index]) - self._solved_gprs[index]),
                )
                > model._freeze_tol * freeze_scale
            ]
        self._active = active
        return [
            (
                self._cell_params[index],
                model._solver,
                model._solver_tol,
                float(self._gsm_in[index]),
                float(self._gprs_in[index]),
                self._distributions[index] if model._warm else None,
            )
            for index in active
        ]

    def absorb(self, new_solves: list) -> bool:
        """Fold one outer iteration's cell solves back into the fixed point.

        ``new_solves`` must align with the job list of the latest
        :meth:`next_jobs` call; each element is the ``(solve, export)`` pair
        :func:`_solve_cell_task` returns (bare :class:`_CellSolve` values are
        also accepted).  Worker metric exports are merged into this process's
        registry here -- the single seam both :meth:`NetworkModel.solve` and
        the pipelined scheduler flow through -- with same-PID exports skipped
        (the serial path already counted in-process).  Returns ``True`` when
        the solve is finished (converged past ``min_outer`` iterations, or
        budget exhausted -- in which case the rates are left at the values
        the final solves actually used, so the reported incoming rates and
        measures stay mutually consistent even unconverged).
        """
        model = self._model
        registry = current_registry()
        unwrapped = []
        for item in new_solves:
            if isinstance(item, tuple):
                solve, export = item
                absorb_export(export, registry)
            else:
                solve = item
            unwrapped.append(solve)
        new_solves = unwrapped
        for index, solve in zip(self._active, new_solves):
            self._solves[index] = solve
            self._solved_gsm[index] = float(self._gsm_in[index])
            self._solved_gprs[index] = float(self._gprs_in[index])
        self._solver_calls += len(self._active)
        self._frozen_solves += self._cells - len(self._active)
        self._cold_solves += sum(1 for solve in new_solves if not solve.warm)
        self._solver_iterations += sum(solve.iterations for solve in new_solves)
        self._distributions = [solve.distribution for solve in self._solves]
        registry.count("network.outer_iterations")
        registry.count("network.cell_solves", len(self._active))
        registry.count("network.frozen_solves", self._cells - len(self._active))
        registry.count(
            "network.cold_solves",
            sum(1 for solve in new_solves if not solve.warm),
        )

        gsm_out = np.array([solve.gsm_outgoing_rate for solve in self._solves])
        gprs_out = np.array([solve.gprs_outgoing_rate for solve in self._solves])
        new_gsm = self._routing_t @ gsm_out
        new_gprs = self._routing_t @ gprs_out
        scale = max(
            1.0,
            float(np.max(np.abs(self._gsm_in))),
            float(np.max(np.abs(self._gprs_in))),
        )
        drift = float(
            max(
                np.max(np.abs(new_gsm - self._gsm_in)),
                np.max(np.abs(new_gprs - self._gprs_in)),
            )
            / scale
        )
        self._trace.append(drift)
        if drift <= model._outer_tol and self._outer >= model._min_outer:
            self._converged = True
            self._done = True
        elif self._outer >= model._max_outer:
            self._done = True
        else:
            self._gsm_in, self._gprs_in = new_gsm, new_gprs
        return self._done

    def result(self) -> NetworkResult:
        """Assemble the :class:`NetworkResult` of the finished solve."""
        solutions = tuple(
            CellSolution(
                index=index,
                parameters=self._cell_params[index],
                measures=solve.measures,
                gsm_incoming_rate=float(self._gsm_in[index]),
                gprs_incoming_rate=float(self._gprs_in[index]),
                gsm_outgoing_rate=solve.gsm_outgoing_rate,
                gprs_outgoing_rate=solve.gprs_outgoing_rate,
            )
            for index, solve in enumerate(self._solves)
        )
        measure_dicts = [solution.measures.as_dict() for solution in solutions]
        aggregates = {
            key: float(np.mean([values[key] for values in measure_dicts]))
            for key in measure_dicts[0]
        }
        return NetworkResult(
            topology=self._model._topology,
            base_parameters=self._model._base,
            cells=solutions,
            aggregates=aggregates,
            outer_iterations=self._outer,
            converged=self._converged,
            convergence_trace=tuple(self._trace),
            erlang_iterations=self._erlang_iterations,
            solver_calls=self._solver_calls,
            cold_solves=self._cold_solves,
            solver_iterations=self._solver_iterations,
            distributions=tuple(self._distributions),
            frozen_solves=self._frozen_solves,
        )
