"""Arrival-rate sweeps over a whole topology, cached and warm-continued.

A network sweep point is one :class:`~repro.network.model.NetworkModel` solve
at one base arrival rate: the swept rate applies to every cell (hot cells
scale it through their ``arrival_rate_multiplier`` override), so a sweep
answers "how does the whole network degrade as load grows".  Points are
solved in ascending rate order; with ``warm=True`` each point seeds the next
one's Erlang pre-pass with its converged rates and warm-starts even the first
CTMC outer iteration with the previous point's stationary vectors, while the
cells *within* a point are solved in parallel (``jobs``).

With ``pipelined=True`` the sweep switches to the **two-level scheduler**
(:func:`repro.runtime.executor.drive_pipelined`): every uncached point
becomes a :class:`~repro.network.model.NetworkSolveDriver` and all the
points' cell solves share one worker pool -- the cells of point ``i + 1``
start while point ``i``'s outer iteration drains, so the pool never idles at
iteration barriers or between points.  Pipelined points are solved
independently (each still warm-starts its *own* outer iterations, but the
cross-point continuation is off -- it would serialise the pipeline), which
is exactly what keeps the schedule bitwise identical to its own serial
execution regardless of ``jobs`` and of how the points interleave; values
differ from the warm-continued sequential path only within solver tolerance,
like every other warm/cold provenance difference.

Each solved point is stored in the content-addressed result cache under a key
that hashes the effective base-cell parameters *plus the topology digest*
(routing matrix and per-cell overrides), with the computation kind set to
``"network"`` -- two topologies never share entries, and a network point can
never collide with a single-cell sweep point of the same parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.network.model import NetworkModel

if TYPE_CHECKING:
    # Imported lazily at runtime: repro.runtime reaches into this package for
    # its scenario registry, so module-level imports here would make the
    # dependency bidirectional (repro.network stays importable standalone).
    from repro.experiments.scale import ExperimentScale
    from repro.runtime.cache import ResultCache
    from repro.runtime.spec import ScenarioSpec

__all__ = [
    "NetworkSweepPoint",
    "NetworkSweepResult",
    "network_sweep_payloads",
    "run_network_sweep",
]


@dataclass(frozen=True)
class NetworkSweepPoint:
    """One solved (or cache-served) network sweep point."""

    index: int
    arrival_rate: float
    payload: dict
    from_cache: bool = False

    @property
    def aggregates(self) -> dict[str, float]:
        return self.payload["aggregates"]

    @property
    def cells(self) -> list[dict]:
        return self.payload["cells"]

    def aggregate(self, metric: str) -> float:
        return self.payload["aggregates"][metric]

    def cell_series(self, metric: str) -> tuple[float, ...]:
        """One measure across cells at this point, in cell order."""
        return tuple(cell["values"][metric] for cell in self.payload["cells"])


@dataclass(frozen=True)
class NetworkSweepResult:
    """All points of one network scenario sweep, in sweep order."""

    spec: "ScenarioSpec"
    scale: "ExperimentScale"
    points: tuple[NetworkSweepPoint, ...]
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def arrival_rates(self) -> tuple[float, ...]:
        return tuple(point.arrival_rate for point in self.points)

    @property
    def pipelined_jobs(self) -> int:
        """Cell-solve jobs routed through the two-level pipelined scheduler.

        0 for sequential (per-point) sweeps and for fully cache-served runs;
        cached payloads report the provenance of the run that produced them,
        exactly like ``solver_calls``.
        """
        return sum(point.payload.get("pipelined_jobs", 0) for point in self.points)

    def series(self, metric: str) -> tuple[float, ...]:
        """The network-mean of ``metric`` across the sweep."""
        return tuple(point.aggregate(metric) for point in self.points)

    def as_dict(self) -> dict:
        return {
            "scenario": self.spec.to_dict(),
            "scale": self.scale.to_dict(),
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "points": [
                {
                    "index": point.index,
                    "arrival_rate": point.arrival_rate,
                    "from_cache": point.from_cache,
                    **point.payload,
                }
                for point in self.points
            ],
        }


def network_sweep_payloads(
    spec: "ScenarioSpec",
    scale: "ExperimentScale",
    *,
    solver_tol: float = 1e-9,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
    warm: bool = True,
    pipelined: bool = False,
) -> list[tuple[dict, bool]]:
    """Solve every point of a network scenario sweep, cache-aware.

    Returns one ``(payload, from_cache)`` pair per arrival rate, in sweep
    order; payloads are :meth:`~repro.network.model.NetworkResult.as_dict`
    renderings.  ``warm=False`` disables both the point-to-point continuation
    and the within-point warm starts across outer iterations (the ``--cold``
    A/B knob); values shift only within solver tolerance.  ``pipelined=True``
    schedules points x cells through one shared job pool (see the module
    docstring): points solve independently, their payloads gain a
    ``pipelined_jobs`` provenance counter, and results are bitwise identical
    for any ``jobs`` (ordered reassembly, per-point state isolation).
    """
    from concurrent.futures import ProcessPoolExecutor

    from repro.runtime.cache import result_key
    from repro.runtime.spec import parameters_to_dict

    if spec.network is None:
        raise ValueError(f"scenario {spec.name!r} has no network topology")
    topology = spec.network
    base = spec.parameters(scale)
    rates = spec.sweep_rates(scale)
    topology_dict = topology.to_dict()

    if pipelined:
        from repro.network.model import NetworkSolveDriver, _solve_cell_task
        from repro.runtime.executor import drive_pipelined

        ordered: list[tuple[dict, bool] | None] = [None] * len(rates)
        misses: list[tuple[int, str | None]] = []
        drivers: list[NetworkSolveDriver] = []
        for index, rate in enumerate(rates):
            params = base.with_arrival_rate(rate)
            key = (
                result_key(
                    parameters_to_dict(params),
                    solver=spec.solver,
                    solver_tol=solver_tol,
                    kind="network",
                    network=topology_dict,
                )
                if cache is not None
                else None
            )
            payload = cache.get(key) if cache is not None else None
            if payload is not None:
                ordered[index] = (payload, True)
                continue
            misses.append((index, key))
            drivers.append(
                NetworkSolveDriver(
                    NetworkModel(
                        topology,
                        params,
                        solver_method=spec.solver,
                        solver_tol=solver_tol,
                        warm=warm,
                    )
                )
            )
        solved, _ = drive_pipelined(drivers, _solve_cell_task, jobs)
        writable = True
        for (index, key), network_result in zip(misses, solved):
            payload = network_result.as_dict()
            payload["pipelined_jobs"] = network_result.solver_calls
            if cache is not None and writable:
                try:
                    cache.put(key, payload)
                except OSError:
                    # Same degradation as the sequential path below.
                    writable = False
            ordered[index] = (payload, False)
        return ordered

    # One pool serves every point of the sweep: the workers stay alive, so
    # their per-process scaffold caches (templates, structured contexts)
    # survive from point to point exactly like the serial path's do.
    pool = (
        ProcessPoolExecutor(max_workers=min(jobs, topology.number_of_cells))
        if jobs > 1 and topology.number_of_cells > 1
        else None
    )
    results: list[tuple[dict, bool]] = []
    seed_rates = None
    seed_distributions = None
    writable = True
    try:
        for rate in rates:
            params = base.with_arrival_rate(rate)
            key = (
                result_key(
                    parameters_to_dict(params),
                    solver=spec.solver,
                    solver_tol=solver_tol,
                    kind="network",
                    network=topology_dict,
                )
                if cache is not None
                else None
            )
            payload = cache.get(key) if cache is not None else None
            if payload is not None:
                # A cache hit carries no stationary vectors, so the warm
                # continuation restarts at the next solved point.
                seed_rates = None
                seed_distributions = None
                results.append((payload, True))
                continue

            result = NetworkModel(
                topology,
                params,
                solver_method=spec.solver,
                solver_tol=solver_tol,
                jobs=jobs,
                warm=warm,
                pool=pool,
                initial_rates=seed_rates if warm else None,
                initial_distributions=seed_distributions if warm else None,
            ).solve()
            payload = result.as_dict()
            if cache is not None and writable:
                try:
                    cache.put(key, payload)
                except OSError:
                    # An unwritable cache stops persisting but keeps serving
                    # reads -- same degradation as the single-cell executor.
                    writable = False
            if warm:
                seed_rates = result.incoming_rates()
                seed_distributions = result.distributions
            results.append((payload, False))
    finally:
        if pool is not None:
            pool.shutdown()
    return results


def run_network_sweep(
    spec: "ScenarioSpec",
    scale: "ExperimentScale | None" = None,
    *,
    jobs: int | None = None,
    cache: "ResultCache | None | str" = "ambient",
    warm: bool | None = None,
    pipelined: bool | None = None,
) -> NetworkSweepResult:
    """Run one network scenario sweep and return its per-cell points.

    The ``jobs`` / ``cache`` / ``warm`` / ``pipelined`` arguments resolve
    against the ambient :func:`~repro.runtime.executor.execution_options`
    exactly like :func:`~repro.runtime.executor.run_sweep`; ``jobs``
    parallelises the cells within each point, or -- with ``pipelined`` --
    all points' cells through one shared pool.
    """
    from repro.experiments.scale import ExperimentScale
    from repro.runtime.executor import current_options

    scale = scale or ExperimentScale.default()
    options = current_options()
    effective_jobs = options.jobs if jobs is None else jobs
    effective_cache = options.cache if cache == "ambient" else cache
    effective_warm = options.warm if warm is None else warm
    effective_pipelined = options.pipelined if pipelined is None else pipelined

    solved = network_sweep_payloads(
        spec,
        scale,
        jobs=effective_jobs,
        cache=effective_cache,
        warm=effective_warm,
        pipelined=effective_pipelined,
    )
    rates = spec.sweep_rates(scale)
    points = tuple(
        NetworkSweepPoint(
            index=index, arrival_rate=rate, payload=payload, from_cache=hit
        )
        for index, (rate, (payload, hit)) in enumerate(zip(rates, solved))
    )
    hits = sum(1 for point in points if point.from_cache)
    return NetworkSweepResult(
        spec=spec,
        scale=scale,
        points=points,
        cache_hits=hits,
        cache_misses=len(points) - hits,
    )
