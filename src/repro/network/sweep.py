"""Arrival-rate sweeps over a whole topology, cached and warm-continued.

A network sweep point is one :class:`~repro.network.model.NetworkModel` solve
at one base arrival rate: the swept rate applies to every cell (hot cells
scale it through their ``arrival_rate_multiplier`` override), so a sweep
answers "how does the whole network degrade as load grows".  Points are
solved in ascending rate order; with ``warm=True`` each point seeds the next
one's Erlang pre-pass with its converged rates and warm-starts even the first
CTMC outer iteration with the previous point's stationary vectors, while the
cells *within* a point are solved in parallel (``jobs``).

With ``pipelined=True`` the sweep switches to the **two-level scheduler**
(:func:`repro.runtime.executor.drive_pipelined`): every uncached point
becomes a :class:`~repro.network.model.NetworkSolveDriver` and all the
points' cell solves share one worker pool -- the cells of point ``i + 1``
start while point ``i``'s outer iteration drains, so the pool never idles at
iteration barriers or between points.  Pipelined points are solved
independently (each still warm-starts its *own* outer iterations, but the
cross-point continuation is off -- it would serialise the pipeline), which
is exactly what keeps the schedule bitwise identical to its own serial
execution regardless of ``jobs`` and of how the points interleave; values
differ from the warm-continued sequential path only within solver tolerance,
like every other warm/cold provenance difference.

Each solved point is stored in the content-addressed result cache under a key
that hashes the effective base-cell parameters *plus the topology digest*
(routing matrix and per-cell overrides), with the computation kind set to
``"network"`` -- two topologies never share entries, and a network point can
never collide with a single-cell sweep point of the same parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.network.model import NetworkModel

if TYPE_CHECKING:
    # Imported lazily at runtime: repro.runtime reaches into this package for
    # its scenario registry, so module-level imports here would make the
    # dependency bidirectional (repro.network stays importable standalone).
    from repro.experiments.scale import ExperimentScale
    from repro.runtime.cache import ResultCache
    from repro.runtime.spec import ScenarioSpec

__all__ = [
    "NetworkSweepPoint",
    "NetworkSweepResult",
    "network_sweep_payloads",
    "run_network_sweep",
]


@dataclass(frozen=True)
class NetworkSweepPoint:
    """One solved (or cache-served) network sweep point.

    ``payload`` is ``None`` for a point whose solve failed terminally in a
    non-strict run (see :class:`~repro.runtime.resilience.SweepFailure`).
    """

    index: int
    arrival_rate: float
    payload: dict | None
    from_cache: bool = False

    @property
    def failed(self) -> bool:
        return self.payload is None

    @property
    def aggregates(self) -> dict[str, float]:
        self._require_payload()
        return self.payload["aggregates"]

    @property
    def cells(self) -> list[dict]:
        self._require_payload()
        return self.payload["cells"]

    def aggregate(self, metric: str) -> float:
        self._require_payload()
        return self.payload["aggregates"][metric]

    def cell_series(self, metric: str) -> tuple[float, ...]:
        """One measure across cells at this point, in cell order."""
        self._require_payload()
        return tuple(cell["values"][metric] for cell in self.payload["cells"])

    def _require_payload(self) -> None:
        if self.payload is None:
            raise RuntimeError(
                f"network sweep point {self.index} (rate {self.arrival_rate:g}) "
                "failed; no measures are available"
            )


@dataclass(frozen=True)
class NetworkSweepResult:
    """All points of one network scenario sweep, in sweep order."""

    spec: "ScenarioSpec"
    scale: "ExperimentScale"
    points: tuple[NetworkSweepPoint, ...]
    cache_hits: int = 0
    cache_misses: int = 0
    failures: tuple = ()

    @property
    def arrival_rates(self) -> tuple[float, ...]:
        return tuple(point.arrival_rate for point in self.points)

    @property
    def pipelined_jobs(self) -> int:
        """Cell-solve jobs routed through the two-level pipelined scheduler.

        0 for sequential (per-point) sweeps and for fully cache-served runs;
        cached payloads report the provenance of the run that produced them,
        exactly like ``solver_calls``.
        """
        return sum(
            point.payload.get("pipelined_jobs", 0)
            for point in self.points
            if point.payload is not None
        )

    def series(self, metric: str) -> tuple[float, ...]:
        """The network-mean of ``metric`` across the sweep."""
        return tuple(point.aggregate(metric) for point in self.points)

    def as_dict(self) -> dict:
        return {
            "scenario": self.spec.to_dict(),
            "scale": self.scale.to_dict(),
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "failures": [failure.as_dict() for failure in self.failures],
            "points": [
                {
                    "index": point.index,
                    "arrival_rate": point.arrival_rate,
                    "from_cache": point.from_cache,
                    "failed": point.failed,
                    **(point.payload or {}),
                }
                for point in self.points
            ],
        }


def network_sweep_payloads(
    spec: "ScenarioSpec",
    scale: "ExperimentScale",
    *,
    solver_tol: float = 1e-9,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
    warm: bool = True,
    pipelined: bool = False,
    retry=None,
    task_timeout: float | None = None,
    strict: bool = False,
    checkpoint=None,
    pool=None,
) -> list[tuple[dict | None, bool]]:
    """Solve every point of a network scenario sweep, cache-aware.

    ``pool`` injects an externally owned
    :class:`~repro.runtime.resilience.ResilientPool` for the sequential
    (non-pipelined) path -- the long-lived service uses it so its workers
    (and their per-process scaffold caches) survive across requests.  An
    injected pool is never shut down here; without one, the sweep creates
    and owns its own pool as before.

    Returns one ``(payload, from_cache)`` pair per arrival rate, in sweep
    order; payloads are :meth:`~repro.network.model.NetworkResult.as_dict`
    renderings.  ``warm=False`` disables both the point-to-point continuation
    and the within-point warm starts across outer iterations (the ``--cold``
    A/B knob); values shift only within solver tolerance.  ``pipelined=True``
    schedules points x cells through one shared job pool (see the module
    docstring): points solve independently, their payloads gain a
    ``pipelined_jobs`` provenance counter, and results are bitwise identical
    for any ``jobs`` (ordered reassembly, per-point state isolation).

    Cell solves run under ``retry`` / ``task_timeout``
    (:mod:`repro.runtime.resilience`); a point whose solve fails terminally
    is reported through :func:`~repro.runtime.resilience.report_failure` and
    returned as ``(None, False)`` unless ``strict`` re-raises.  ``checkpoint``
    journals each completed point's cache key so an interrupted sweep resumes
    from cache.
    """
    from dataclasses import replace as dc_replace

    from repro.runtime.cache import result_key
    from repro.runtime.resilience import (
        ResilientPool,
        SweepFailure,
        SweepFailureError,
        checkpointed_get,
        payload_digest,
        report_failure,
    )
    from repro.runtime.spec import parameters_to_dict

    if spec.network is None:
        raise ValueError(f"scenario {spec.name!r} has no network topology")
    topology = spec.network
    base = spec.parameters(scale)
    rates = spec.sweep_rates(scale)
    topology_dict = topology.to_dict()

    def key_for(params) -> str | None:
        if cache is None:
            return None
        return result_key(
            parameters_to_dict(params),
            solver=spec.solver,
            solver_tol=solver_tol,
            kind="network",
            network=topology_dict,
        )

    def store(index: int, key: str | None, payload: dict, writable: bool) -> bool:
        if cache is not None and writable and key is not None:
            try:
                cache.put(key, payload)
            except OSError:
                # An unwritable cache stops persisting but keeps serving
                # reads -- same degradation as the single-cell executor.
                return False
            if checkpoint is not None:
                checkpoint.record(
                    site="network",
                    index=index,
                    key=key,
                    digest=payload_digest(payload),
                )
        return writable

    if pipelined:
        from repro.network.model import NetworkSolveDriver, _solve_cell_task
        from repro.runtime.executor import drive_pipelined

        ordered: list[tuple[dict | None, bool] | None] = [None] * len(rates)
        misses: list[tuple[int, str | None]] = []
        drivers: list[NetworkSolveDriver] = []
        for index, rate in enumerate(rates):
            params = base.with_arrival_rate(rate)
            key = key_for(params)
            payload = checkpointed_get(cache, key, checkpoint)
            if payload is not None:
                ordered[index] = (payload, True)
                continue
            misses.append((index, key))
            drivers.append(
                NetworkSolveDriver(
                    NetworkModel(
                        topology,
                        params,
                        solver_method=spec.solver,
                        solver_tol=solver_tol,
                        warm=warm,
                    )
                )
            )
        writable = True
        payloads: dict[int, dict] = {}

        def persist(position: int, result) -> None:
            # Fires as each driver finishes, so completed points are stored
            # and checkpointed before a later strict failure aborts the run.
            nonlocal writable
            index, key = misses[position]
            payload = result.as_dict()
            payload["pipelined_jobs"] = result.solver_calls
            payloads[position] = payload
            writable = store(index, key, payload, writable)

        solved, _ = drive_pipelined(
            drivers,
            _solve_cell_task,
            jobs,
            site="cell",
            retry=retry,
            task_timeout=task_timeout,
            strict=strict,
            on_complete=persist,
        )
        for position, ((index, _key), outcome) in enumerate(zip(misses, solved)):
            if isinstance(outcome, SweepFailure):
                report_failure(dc_replace(outcome, points=(index,)))
                ordered[index] = (None, False)
                continue
            ordered[index] = (payloads[position], False)
        return ordered

    # One pool serves every point of the sweep: the workers stay alive, so
    # their per-process scaffold caches (templates, structured contexts)
    # survive from point to point exactly like the serial path's do.
    owned = pool is None
    if pool is None:
        pool = (
            ResilientPool(
                min(jobs, topology.number_of_cells),
                policy=retry,
                task_timeout=task_timeout,
                strict=strict,
            )
            if jobs > 1 and topology.number_of_cells > 1
            else None
        )
    results: list[tuple[dict | None, bool]] = []
    seed_rates = None
    seed_distributions = None
    writable = True
    try:
        for index, rate in enumerate(rates):
            params = base.with_arrival_rate(rate)
            key = key_for(params)
            payload = checkpointed_get(cache, key, checkpoint)
            if payload is not None:
                # A cache hit carries no stationary vectors, so the warm
                # continuation restarts at the next solved point.
                seed_rates = None
                seed_distributions = None
                results.append((payload, True))
                continue

            try:
                result = NetworkModel(
                    topology,
                    params,
                    solver_method=spec.solver,
                    solver_tol=solver_tol,
                    jobs=jobs,
                    warm=warm,
                    pool=pool,
                    initial_rates=seed_rates if warm else None,
                    initial_distributions=seed_distributions if warm else None,
                ).solve()
            except SweepFailureError as error:
                if strict:
                    raise
                report_failure(dc_replace(error.failure, points=(index,)))
                # The failed point leaves no continuation state behind.
                seed_rates = None
                seed_distributions = None
                results.append((None, False))
                continue
            payload = result.as_dict()
            writable = store(index, key, payload, writable)
            if warm:
                seed_rates = result.incoming_rates()
                seed_distributions = result.distributions
            results.append((payload, False))
    finally:
        if pool is not None and owned:
            pool.shutdown()
    return results


def run_network_sweep(
    spec: "ScenarioSpec",
    scale: "ExperimentScale | None" = None,
    *,
    jobs: int | None = None,
    cache: "ResultCache | None | str" = "ambient",
    warm: bool | None = None,
    pipelined: bool | None = None,
    retry=None,
    task_timeout: float | None = None,
    strict: bool | None = None,
    checkpoint=None,
    pool=None,
) -> NetworkSweepResult:
    """Run one network scenario sweep and return its per-cell points.

    The ``jobs`` / ``cache`` / ``warm`` / ``pipelined`` arguments -- and the
    resilience knobs ``retry`` / ``task_timeout`` / ``strict`` /
    ``checkpoint`` -- resolve against the ambient
    :func:`~repro.runtime.executor.execution_options` exactly like
    :func:`~repro.runtime.executor.run_sweep`; ``jobs`` parallelises the
    cells within each point, or -- with ``pipelined`` -- all points' cells
    through one shared pool.  Terminal per-point failures land in
    :attr:`NetworkSweepResult.failures` (their points carry
    ``payload=None``) unless ``strict``.
    """
    from repro.experiments.scale import ExperimentScale
    from repro.runtime.executor import current_options
    from repro.runtime.resilience import collect_failures

    scale = scale or ExperimentScale.default()
    options = current_options()
    effective_jobs = options.jobs if jobs is None else jobs
    effective_cache = options.cache if cache == "ambient" else cache
    effective_warm = options.warm if warm is None else warm
    effective_pipelined = options.pipelined if pipelined is None else pipelined
    effective_retry = options.retry if retry is None else retry
    effective_timeout = options.task_timeout if task_timeout is None else task_timeout
    effective_strict = options.strict if strict is None else strict
    effective_checkpoint = options.checkpoint if checkpoint is None else checkpoint

    with collect_failures() as failures:
        solved = network_sweep_payloads(
            spec,
            scale,
            jobs=effective_jobs,
            cache=effective_cache,
            warm=effective_warm,
            pipelined=effective_pipelined,
            retry=effective_retry,
            task_timeout=effective_timeout,
            strict=effective_strict,
            checkpoint=effective_checkpoint,
            pool=pool,
        )
    rates = spec.sweep_rates(scale)
    points = tuple(
        NetworkSweepPoint(
            index=index, arrival_rate=rate, payload=payload, from_cache=hit
        )
        for index, (rate, (payload, hit)) in enumerate(zip(rates, solved))
    )
    hits = sum(1 for point in points if point.from_cache)
    return NetworkSweepResult(
        spec=spec,
        scale=scale,
        points=points,
        cache_hits=hits,
        cache_misses=len(points) - hits,
        failures=tuple(failures),
    )
