"""Parallel sweep execution with cache-aware scheduling.

The executor turns a :class:`~repro.runtime.spec.ScenarioSpec` (or a bare
parameter set, for the figure functions) into solved sweep points:

1. every point's cache key is computed from its *effective* parameters;
2. cached points are served immediately (and never touch a solver);
3. the remaining misses are solved -- in-process when ``jobs <= 1`` or only
   one point is missing, otherwise sharded across a
   :class:`concurrent.futures.ProcessPoolExecutor`;
4. results are reassembled **in sweep order** regardless of completion order
   and written back to the cache.

Workers receive plain dictionaries (never live objects), so the parallel path
computes exactly what the serial path computes; a ``jobs=4`` run is
bit-for-bit identical to ``jobs=1``.  Per-point seeds come from
:meth:`ScenarioSpec.point_seed` and are deterministic in the point index.

:func:`execution_options` provides an ambient (contextvar-based) way to switch
existing call chains -- ``run_experiment`` down through ``sweep_arrival_rates``
-- to parallel/cached execution without threading arguments through every
figure function.
"""

from __future__ import annotations

import contextlib
import contextvars
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.measures import GprsPerformanceMeasures
from repro.core.model import GprsMarkovModel
from repro.core.parameters import GprsModelParameters
from repro.runtime.cache import ResultCache, result_key
from repro.runtime.spec import ScenarioSpec, parameters_from_dict, parameters_to_dict

if TYPE_CHECKING:  # imported lazily at runtime to keep runtime below experiments
    from repro.experiments.scale import ExperimentScale

__all__ = [
    "ExecutionOptions",
    "ScenarioRunResult",
    "SweepPoint",
    "current_options",
    "execution_options",
    "run_sweep",
    "sweep_measure_dicts",
]


# ---------------------------------------------------------------------- #
# Ambient execution options
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ExecutionOptions:
    """Ambient defaults for sweep execution (worker count and cache)."""

    jobs: int = 1
    cache: ResultCache | None = None


_OPTIONS: contextvars.ContextVar[ExecutionOptions] = contextvars.ContextVar(
    "repro_runtime_execution_options", default=ExecutionOptions()
)


def current_options() -> ExecutionOptions:
    """Return the execution options active in this context."""
    return _OPTIONS.get()


@contextlib.contextmanager
def execution_options(jobs: int = 1, cache: ResultCache | None = None):
    """Scope ambient execution options (used by ``run_experiment`` and the CLI)."""
    token = _OPTIONS.set(ExecutionOptions(jobs=jobs, cache=cache))
    try:
        yield
    finally:
        _OPTIONS.reset(token)


# ---------------------------------------------------------------------- #
# Worker entry point (must stay a top-level function: it is pickled)
# ---------------------------------------------------------------------- #
def _solve_point_task(params_dict: dict, solver: str, solver_tol: float) -> dict:
    """Solve one configuration and return the full measure set as a dict."""
    params = parameters_from_dict(params_dict)
    model = GprsMarkovModel(params, solver_method=solver, solver_tol=solver_tol)
    return model.solve().measures.as_dict()


def sweep_measure_dicts(
    base_parameters: GprsModelParameters,
    arrival_rates: tuple[float, ...],
    *,
    solver: str = "auto",
    solver_tol: float = 1e-9,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> list[tuple[dict, bool]]:
    """Solve every sweep point, cache-aware and optionally in parallel.

    Returns one ``(measures_dict, from_cache)`` pair per arrival rate, in
    sweep order.  This is the single execution path shared by the scenario
    runtime and the figure sweeps, so both enjoy the same cache and the same
    parallelism.
    """
    point_dicts = [
        parameters_to_dict(base_parameters.with_arrival_rate(rate))
        for rate in arrival_rates
    ]
    keys = [
        result_key(point, solver=solver, solver_tol=solver_tol)
        for point in point_dicts
    ]

    results: dict[int, dict] = {}
    from_cache: dict[int, bool] = {}
    misses: list[int] = []
    for index, key in enumerate(keys):
        payload = cache.get(key) if cache is not None else None
        if payload is not None:
            results[index] = payload
            from_cache[index] = True
        else:
            misses.append(index)
            from_cache[index] = False

    workers = max(1, int(jobs))
    if misses:
        if workers > 1 and len(misses) > 1:
            with ProcessPoolExecutor(max_workers=min(workers, len(misses))) as pool:
                futures = {
                    index: pool.submit(
                        _solve_point_task, point_dicts[index], solver, solver_tol
                    )
                    for index in misses
                }
                for index, future in futures.items():
                    results[index] = future.result()
        else:
            for index in misses:
                results[index] = _solve_point_task(point_dicts[index], solver, solver_tol)
        if cache is not None:
            for index in misses:
                try:
                    cache.put(keys[index], results[index])
                except OSError:
                    # An unwritable cache degrades to a cold one: the solved
                    # results are still returned, nothing is persisted.
                    break

    return [(results[index], from_cache[index]) for index in range(len(arrival_rates))]


# ---------------------------------------------------------------------- #
# Scenario-level API
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SweepPoint:
    """One solved point of a scenario sweep."""

    index: int
    arrival_rate: float
    seed: int
    values: dict[str, float]
    from_cache: bool = False

    def metric(self, name: str) -> float:
        return self.values[name]


@dataclass(frozen=True)
class ScenarioRunResult:
    """All points of one scenario run, in sweep order, plus cache accounting."""

    spec: ScenarioSpec
    scale: ExperimentScale
    points: tuple[SweepPoint, ...]
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def arrival_rates(self) -> tuple[float, ...]:
        return tuple(point.arrival_rate for point in self.points)

    def series(self, metric: str) -> tuple[float, ...]:
        """Return one metric across the sweep, aligned with ``arrival_rates``."""
        return tuple(point.values[metric] for point in self.points)

    def measures(self) -> tuple[GprsPerformanceMeasures, ...]:
        """Return the full measure objects (one per point)."""
        return tuple(GprsPerformanceMeasures(**point.values) for point in self.points)

    def as_dict(self) -> dict:
        """JSON-serialisable rendering (spec, per-point values, cache stats)."""
        return {
            "scenario": self.spec.to_dict(),
            "scale": self.scale.to_dict(),
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "points": [
                {
                    "index": point.index,
                    "arrival_rate": point.arrival_rate,
                    "seed": point.seed,
                    "from_cache": point.from_cache,
                    "values": dict(point.values),
                }
                for point in self.points
            ],
        }


def run_sweep(
    spec: ScenarioSpec,
    scale: ExperimentScale | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None | str = "ambient",
) -> ScenarioRunResult:
    """Run one scenario sweep and return its ordered points.

    Parameters
    ----------
    spec:
        The scenario to run (typically from :data:`repro.runtime.SCENARIOS`).
    scale:
        Experiment scale preset; defaults to
        :meth:`~repro.experiments.scale.ExperimentScale.default`.
    jobs:
        Worker processes; ``None`` takes the ambient
        :func:`execution_options` value (default 1 = serial, in-process).
    cache:
        A :class:`~repro.runtime.cache.ResultCache`, ``None`` to disable
        caching, or the sentinel ``"ambient"`` (default) to take the cache
        from :func:`execution_options`.
    """
    from repro.experiments.scale import ExperimentScale

    scale = scale or ExperimentScale.default()
    options = current_options()
    effective_jobs = options.jobs if jobs is None else jobs
    effective_cache = options.cache if cache == "ambient" else cache

    rates = spec.sweep_rates(scale)
    params = spec.parameters(scale)
    solved = sweep_measure_dicts(
        params,
        rates,
        solver=spec.solver,
        jobs=effective_jobs,
        cache=effective_cache,
    )
    points = tuple(
        SweepPoint(
            index=index,
            arrival_rate=rate,
            seed=spec.point_seed(index),
            values=values,
            from_cache=hit,
        )
        for index, (rate, (values, hit)) in enumerate(zip(rates, solved))
    )
    hits = sum(1 for point in points if point.from_cache)
    return ScenarioRunResult(
        spec=spec,
        scale=scale,
        points=points,
        cache_hits=hits,
        cache_misses=len(points) - hits,
    )
