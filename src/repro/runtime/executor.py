"""Parallel sweep execution with cache-aware scheduling and warm-started chunks.

The executor turns a :class:`~repro.runtime.spec.ScenarioSpec` (or a bare
parameter set, for the figure functions) into solved sweep points:

1. every point's cache key is computed from its *effective* parameters;
2. cached points are served immediately (and never touch a solver);
3. the remaining misses are grouped into **chunks of adjacent arrival rates**
   and solved -- in-process when ``jobs <= 1``, otherwise one chunk per task
   on a :class:`concurrent.futures.ProcessPoolExecutor`;
4. results are reassembled **in sweep order** regardless of completion order
   and written back to the cache.

Within one chunk the points are solved in sweep order through a shared
:class:`~repro.core.template.GeneratorTemplate` /
:class:`~repro.core.structured_solver.StructuredSolveContext`, and every
point is warm-started from the previous points' stationary vectors and
balanced handover rates (see :class:`~repro.core.model.GprsMarkovModel`) --
this is what makes a sweep dramatically cheaper than independent solves.
Chunk boundaries depend only on the sweep itself (never on ``jobs``), and the
serial path executes the very same chunks in order, so a ``jobs=4`` run is
bit-for-bit identical to ``jobs=1``.  ``warm=False`` restores the fully
independent per-point behaviour (fresh enumeration, paper-seeded handover
fixed point, cold solver start) -- the ``--cold`` CLI flag exposes it for A/B
timing.  Per-point seeds come from :meth:`ScenarioSpec.point_seed` and are
deterministic in the point index.

Cache semantics: keys hash the effective parameters and solver settings,
*not* the warm/chunk provenance.  Every value stored under a key is accurate
to the key's ``solver_tol`` regardless of which chunk-mates seeded it, so
warm, cold and partially-cached runs may differ from each other -- but only
within solver tolerance (asserted down to 1e-8 at converged tolerances in
``benchmarks/test_bench_sweep_warmstart.py``).  Bitwise reproducibility is
therefore guaranteed *given the same cache state* (in particular
``jobs=N`` vs. serial, which always read the same hits); for bitwise A/B
comparisons between warm and cold runs, disable the cache.

:func:`execution_options` provides an ambient (contextvar-based) way to switch
existing call chains -- ``run_experiment`` down through ``sweep_arrival_rates``
-- to parallel/cached execution without threading arguments through every
figure function.
"""

from __future__ import annotations

import contextlib
import contextvars
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.core.measures import GprsPerformanceMeasures
from repro.core.model import GprsMarkovModel
from repro.core.parameters import GprsModelParameters
from repro.obs.metrics import absorb_export, current_registry, export_delta
from repro.obs.trace import current_tracer
from repro.runtime.cache import ResultCache, result_key
from repro.runtime.resilience import (
    ResilientPool,
    RetryPolicy,
    SweepCheckpoint,
    SweepFailure,
    checkpointed_get,
    collect_failures,
    payload_digest,
    report_failure,
)
from repro.runtime.spec import ScenarioSpec, parameters_from_dict, parameters_to_dict

if TYPE_CHECKING:  # imported lazily at runtime to keep runtime below experiments
    from repro.experiments.scale import ExperimentScale

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "ExecutionOptions",
    "ScenarioRunResult",
    "SweepPoint",
    "current_options",
    "drive_pipelined",
    "execution_options",
    "run_sweep",
    "sweep_measure_dicts",
]

#: Sweep points per warm-started chunk.  A chunk is the unit of parallel
#: scheduling *and* of warm-start continuation, so the value trades parallel
#: width against the fraction of points that benefit from a warm start; it is
#: deliberately independent of ``jobs`` so that parallel runs stay bitwise
#: identical to serial ones.
DEFAULT_CHUNK_SIZE = 8

#: How many previous stationary vectors each point's solver may extrapolate
#: from (see ``initial_distribution`` of GprsMarkovModel).
_WARM_HISTORY = 4


# ---------------------------------------------------------------------- #
# Ambient execution options
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ExecutionOptions:
    """Ambient defaults for sweep execution.

    Attributes
    ----------
    jobs:
        Worker processes (1 = serial, in-process).
    cache:
        Content-addressed result cache, or ``None`` for uncached runs.
    warm:
        Enable sweep-aware incremental solving (generator templates plus
        warm-started handover balancing and steady-state solves) within each
        chunk of adjacent arrival rates.
    chunk_size:
        Points per warm-started chunk (also the parallel scheduling unit).
    pipelined:
        Network sweeps only: schedule points x cells through one shared job
        pool (:func:`drive_pipelined`) instead of solving the points
        sequentially.  Points are then solved independently (no cross-point
        continuation), which keeps the pipeline bitwise identical to its own
        serial execution; single-cell and transient sweeps ignore the flag.
    retry:
        The :class:`~repro.runtime.resilience.RetryPolicy` applied to every
        chunk/cell/trajectory task (``None`` = the default policy).
    task_timeout:
        Per-task deadline in seconds, enforced through future timeouts on
        the parallel paths (``None`` disables; serial execution cannot
        interrupt itself, so the knob is ignored in-process).
    strict:
        Fail fast on the first exhausted task
        (:class:`~repro.runtime.resilience.SweepFailureError`) instead of
        recording a structured :class:`~repro.runtime.resilience.SweepFailure`
        per affected point and finishing the sweep.
    checkpoint:
        A :class:`~repro.runtime.resilience.SweepCheckpoint` journal of
        completed points; requires a cache (resuming serves checkpointed
        points from it).
    """

    jobs: int = 1
    cache: ResultCache | None = None
    warm: bool = True
    chunk_size: int = DEFAULT_CHUNK_SIZE
    pipelined: bool = False
    retry: RetryPolicy | None = None
    task_timeout: float | None = None
    strict: bool = False
    checkpoint: SweepCheckpoint | None = None
    #: Start each chunk's first point from the persisted warm-seed stack of
    #: the previous run over this configuration (artifact store required).
    #: Off by default: a seeded start converges to the same measures only
    #: within solver tolerance, not bitwise, so it is strictly opt-in --
    #: unlike every other store seam, which is bitwise-faithful.
    seed_from_store: bool = False


_OPTIONS: contextvars.ContextVar[ExecutionOptions] = contextvars.ContextVar(
    "repro_runtime_execution_options", default=ExecutionOptions()
)


def current_options() -> ExecutionOptions:
    """Return the execution options active in this context."""
    return _OPTIONS.get()


@contextlib.contextmanager
def execution_options(
    jobs: int = 1,
    cache: ResultCache | None = None,
    warm: bool = True,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    pipelined: bool = False,
    retry: RetryPolicy | None = None,
    task_timeout: float | None = None,
    strict: bool = False,
    checkpoint: SweepCheckpoint | None = None,
    seed_from_store: bool = False,
):
    """Scope ambient execution options (used by ``run_experiment`` and the CLI)."""
    token = _OPTIONS.set(
        ExecutionOptions(
            jobs=jobs,
            cache=cache,
            warm=warm,
            chunk_size=chunk_size,
            pipelined=pipelined,
            retry=retry,
            task_timeout=task_timeout,
            strict=strict,
            checkpoint=checkpoint,
            seed_from_store=seed_from_store,
        )
    )
    try:
        yield
    finally:
        _OPTIONS.reset(token)


# ---------------------------------------------------------------------- #
# Two-level pipelined scheduling of incremental solve drivers
# ---------------------------------------------------------------------- #
def drive_pipelined(
    drivers: list,
    worker,
    jobs: int,
    *,
    site: str = "cell",
    retry: RetryPolicy | None = None,
    task_timeout: float | None = None,
    strict: bool = False,
    on_complete=None,
) -> tuple[list, int]:
    """Drive several incremental solve drivers through one shared job pool.

    A *driver* is a solve broken into schedulable rounds: ``next_jobs()``
    returns the picklable argument tuples of its next round (empty when
    nothing needs solving this round), ``absorb(results)`` folds the round's
    results back in and returns ``True`` once the solve is finished, and
    ``result()`` assembles the final value
    (:class:`repro.network.model.NetworkSolveDriver` is the canonical
    implementation).  ``worker`` is the top-level function applied to each
    job tuple.

    With ``jobs > 1`` every driver's current round is in flight on one shared
    :class:`ProcessPoolExecutor` simultaneously -- the two-level pipeline: as
    one driver's round drains, the other drivers' jobs keep the workers busy,
    and a finished round immediately submits its successor.  Reductions
    (``absorb``) always run in this process, each driver's rounds stay
    strictly ordered, and each job is built from its own driver's state
    alone, so the computation is bitwise identical to the serial path
    (``jobs <= 1``), which executes the very same rounds driver by driver in
    list order.

    Returns ``(results, dispatched)`` where ``results`` is in driver order
    and ``dispatched`` counts the job tuples routed through the scheduler.

    Execution is fault tolerant: each job runs under ``retry`` (and, in
    parallel mode, ``task_timeout``) through a
    :class:`~repro.runtime.resilience.ResilientPool`, with jobs indexed by
    their global dispatch ordinal for deterministic fault injection.  A
    driver whose job exhausts its attempts yields its
    :class:`~repro.runtime.resilience.SweepFailure` in place of a result
    (``strict`` raises instead); the other drivers still complete.

    ``on_complete(index, result)`` -- when given -- fires the moment driver
    ``index`` finishes (never for a failed driver), so callers can persist
    completed work *before* a later strict failure aborts the run.
    """
    dispatched = 0
    completed: dict[int, object] = {}

    def finish(index: int, driver) -> None:
        completed[index] = driver.result()
        if on_complete is not None:
            on_complete(index, completed[index])

    def advance(driver, round_results) -> list[tuple]:
        """Absorb one round, then return the next round's jobs.

        Skips through rounds that need no work (e.g. fully frozen outer
        iterations) so the caller only ever sees non-empty rounds or
        completion.
        """
        nonlocal dispatched
        finished = driver.absorb(round_results)
        while not finished:
            round_jobs = driver.next_jobs()
            if round_jobs:
                dispatched += len(round_jobs)
                return round_jobs
            finished = driver.absorb([])
        return []

    def first_round(driver) -> list[tuple]:
        nonlocal dispatched
        round_jobs = driver.next_jobs()
        if not round_jobs:
            # A first round with nothing to solve: absorb it (advance counts
            # any subsequent rounds itself).
            return advance(driver, []) if not driver.done else []
        dispatched += len(round_jobs)
        return round_jobs

    failed: dict[int, SweepFailure] = {}

    if jobs <= 1 or not drivers:
        runner = ResilientPool(1, policy=retry, strict=strict)
        for index, driver in enumerate(drivers):
            round_jobs = first_round(driver)
            while round_jobs:
                base = dispatched - len(round_jobs)
                outcomes = runner.run(
                    worker,
                    round_jobs,
                    site=site,
                    indices=range(base, dispatched),
                )
                failure = next(
                    (o for o in outcomes if isinstance(o, SweepFailure)), None
                )
                if failure is not None:
                    failed[index] = failure
                    break
                round_jobs = advance(driver, outcomes)
            if index not in failed:
                finish(index, driver)
        current_registry().count("executor.pipeline.dispatched", dispatched)
        return [
            failed[index] if index in failed else completed[index]
            for index in range(len(drivers))
        ], dispatched

    rounds: dict[int, list] = {}
    outstanding: dict[int, int] = {}
    inflight = 0

    registry = current_registry()
    registry.gauge("executor.pool_width", jobs)
    runner = ResilientPool(
        jobs, policy=retry, task_timeout=task_timeout, strict=strict
    )

    def submit_round(index: int, round_jobs: list[tuple]) -> None:
        nonlocal inflight
        base = dispatched - len(round_jobs)
        rounds[index] = [None] * len(round_jobs)
        outstanding[index] = len(round_jobs)
        for position, job in enumerate(round_jobs):
            runner.submit(
                worker, job, site=site, index=base + position, tag=(index, position)
            )
        inflight += len(round_jobs)

    with current_tracer().span(
        "executor.pipeline", drivers=len(drivers), jobs=jobs
    ), runner:
        for index, driver in enumerate(drivers):
            round_jobs = first_round(driver)
            if round_jobs:
                submit_round(index, round_jobs)
            else:
                finish(index, driver)
        while inflight:
            batch = runner.poll()
            inflight -= len(batch)
            registry.observe("executor.pipeline.in_flight", inflight)
            touched = set()
            for (index, position), outcome in batch:
                if index in failed:
                    continue  # late results of a driver that already failed
                if isinstance(outcome, SweepFailure):
                    failed[index] = outcome
                    rounds.pop(index, None)
                    outstanding.pop(index, None)
                    continue
                rounds[index][position] = outcome
                outstanding[index] -= 1
                touched.add(index)
            for index in touched:
                if index not in failed and outstanding.get(index) == 0:
                    next_jobs = advance(drivers[index], rounds.pop(index))
                    outstanding.pop(index)
                    if next_jobs:
                        submit_round(index, next_jobs)
                    else:
                        finish(index, drivers[index])
    registry.count("executor.pipeline.dispatched", dispatched)
    return [
        failed[index] if index in failed else completed[index]
        for index in range(len(drivers))
    ], dispatched


# ---------------------------------------------------------------------- #
# Chunk solving (the worker entry point must stay top-level: it is pickled)
# ---------------------------------------------------------------------- #
def _seed_store_key(params, solver: str, solver_tol: float) -> str:
    """Artifact key of one configuration's warm-seed distribution stack."""
    from repro.core.template import _fixed_fingerprint
    from repro.store.artifacts import artifact_key

    return artifact_key(
        "warm-seed",
        {
            "fingerprint": [repr(part) for part in _fixed_fingerprint(params)],
            "solver": solver,
            "solver_tol": solver_tol,
        },
    )


def _solve_chunk_points(
    point_dicts: list[dict],
    solver: str,
    solver_tol: float,
    warm: bool,
    shared: tuple | None = None,
    seed_from_store: bool = False,
) -> tuple[list[dict], tuple | None]:
    """Solve adjacent sweep points in order, warm-starting each from the last.

    Returns the measure dictionaries plus the reusable ``(space, template,
    context)`` triple so the serial path can share them across chunks (the
    warm-start *state* -- previous distributions and handover rates -- is
    deliberately not shared: it resets at every chunk boundary, which is what
    keeps chunked parallel runs bitwise identical to serial ones).

    When an ambient artifact store is active, the chunk's final warm-start
    stack is persisted as a ``warm-seed`` artifact for the configuration --
    a later run over the same configuration (a denser sweep, a re-run after
    a cache invalidation) can start its cold first point from it, but only
    behind the explicit ``seed_from_store`` opt-in: a seeded start converges
    to the same answer within solver tolerance, not bitwise (the solver's
    acceptance gates discard a seed that does not actually help).
    """
    if not warm:
        results = []
        for point in point_dicts:
            params = parameters_from_dict(point)
            model = GprsMarkovModel(params, solver_method=solver, solver_tol=solver_tol)
            results.append(model.solve().measures.as_dict())
        return results, None

    from repro.core.model import build_solver_scaffold
    from repro.store.artifacts import current_store

    store = current_store()
    space = template = context = None
    if shared is not None:
        space, template, context = shared

    seed_stack = None
    seed_key = None
    if store is not None and point_dicts:
        first_params = parameters_from_dict(point_dicts[0])
        seed_key = _seed_store_key(first_params, solver, solver_tol)
        if seed_from_store:
            loaded = store.get(seed_key)
            if loaded is not None:
                stack = loaded[0].get("stack")
                if stack is not None and stack.ndim == 2:
                    seed_stack = np.asarray(stack, dtype=float)

    results = []
    history: list[np.ndarray] = []
    previous_handover = None
    for point in point_dicts:
        params = parameters_from_dict(point)
        if space is None:
            space, template, context = build_solver_scaffold(params, solver)
        initial = np.stack(history, axis=0) if history else None
        if initial is None and seed_stack is not None:
            if seed_stack.shape[1] == space.size:
                initial = seed_stack
                current_registry().count("executor.store_seeded")
            seed_stack = None  # only ever seeds the chunk's first solve
        model = GprsMarkovModel(
            params,
            solver_method=solver,
            solver_tol=solver_tol,
            initial_distribution=initial,
            initial_handover_rates=previous_handover,
            generator_template=template,
            state_space=space,
            structured_context=context,
        )
        solution = model.solve()
        previous_handover = solution.handover
        history.append(solution.steady_state.distribution)
        if len(history) > _WARM_HISTORY:
            history.pop(0)
        results.append(solution.measures.as_dict())
    if store is not None and seed_key is not None and history:
        rates = [
            parameters_from_dict(point).total_call_arrival_rate
            for point in point_dicts
        ]
        try:
            store.put(
                seed_key,
                {"stack": np.stack(history, axis=0)},
                {"rates": rates[-len(history):]},
            )
        except OSError:
            pass  # an unwritable store never blocks a solve
    return results, (space, template, context)


def _solve_chunk_task(job: tuple) -> tuple[list[dict], dict]:
    """Worker entry point: solve one chunk in a fresh process.

    ``job`` is the ``(point_dicts, solver, solver_tol, warm,
    seed_from_store)`` payload -- one picklable tuple, the
    :class:`~repro.runtime.resilience.ResilientPool` task shape.  Returns
    ``(measure_dicts, metrics_export)``: the export piggybacks the worker
    registry's delta (stamped with the worker PID) back to the parent, which
    merges it only when it really crossed a process boundary.
    """
    point_dicts, solver, solver_tol, warm, seed_from_store = job
    baseline = current_registry().snapshot()
    results = _solve_chunk_points(
        point_dicts, solver, solver_tol, warm, None, seed_from_store
    )[0]
    return results, export_delta(baseline)


def _chunked(indices: list[int], count: int, chunk_size: int) -> list[list[int]]:
    """Group ``indices`` by the fixed chunk grid over ``range(count)``.

    The grid depends only on the sweep length and the chunk size -- never on
    ``jobs`` or on which points were cache hits -- so for a given cache state
    the scheduling (worker count, completion order) can never change
    numerical results.  Cache hits do leave gaps inside a chunk, which
    shortens the warm-start history of the remaining misses; that shifts
    results only within solver tolerance (see the module docstring).
    """
    size = max(1, int(chunk_size))
    members: dict[int, list[int]] = {}
    for index in indices:
        members.setdefault(index // size, []).append(index)
    return [members[block] for block in sorted(members)]


def sweep_measure_dicts(
    base_parameters: GprsModelParameters,
    arrival_rates: tuple[float, ...],
    *,
    solver: str = "auto",
    solver_tol: float = 1e-9,
    jobs: int = 1,
    cache: ResultCache | None = None,
    warm: bool = True,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    retry: RetryPolicy | None = None,
    task_timeout: float | None = None,
    strict: bool = False,
    checkpoint: SweepCheckpoint | None = None,
    seed_from_store: bool = False,
) -> list[tuple[dict | None, bool]]:
    """Solve every sweep point, cache-aware and optionally in parallel.

    Returns one ``(measures_dict, from_cache)`` pair per arrival rate, in
    sweep order.  This is the single execution path shared by the scenario
    runtime and the figure sweeps, so both enjoy the same cache, the same
    parallelism and the same warm-started chunking (``warm``/``chunk_size``,
    see the module docstring).

    Chunk tasks execute under ``retry``/``task_timeout`` through a
    :class:`~repro.runtime.resilience.ResilientPool` (chunks are indexed by
    their ordinal for deterministic fault injection).  A chunk that exhausts
    its attempts leaves ``None`` in place of its points' measure dicts and
    reports one :class:`~repro.runtime.resilience.SweepFailure` naming them
    (``strict`` raises instead).  ``checkpoint`` journals every completed
    point's cache key and payload digest; on a later run, checkpointed
    points are served from the cache (digest-verified) without a solve.
    """
    point_dicts = [
        parameters_to_dict(base_parameters.with_arrival_rate(rate))
        for rate in arrival_rates
    ]
    keys = (
        [result_key(point, solver=solver, solver_tol=solver_tol) for point in point_dicts]
        if cache is not None
        else None
    )

    results: dict[int, dict] = {}
    from_cache: dict[int, bool] = {}
    misses: list[int] = []
    for index in range(len(point_dicts)):
        payload = (
            checkpointed_get(cache, keys[index], checkpoint)
            if cache is not None
            else None
        )
        if payload is not None:
            results[index] = payload
            from_cache[index] = True
        else:
            misses.append(index)
            from_cache[index] = False

    workers = max(1, int(jobs))
    writable = True

    def persist(chunk: list[int]) -> None:
        """Store and journal one completed chunk's points *immediately*.

        Persistence is per chunk, as outcomes arrive, so a later abort (a
        strict failure, a kill) loses at most the in-flight work -- a
        ``--checkpoint`` resume re-solves only the unfinished chunks.
        """
        nonlocal writable
        if cache is None or not writable:
            return
        for index in chunk:
            if index not in results:
                continue  # the point's chunk failed; nothing to persist
            try:
                cache.put(keys[index], results[index])
            except OSError:
                # An unwritable cache degrades to a cold one: the solved
                # results are still returned, nothing is persisted.
                writable = False
                return
            if checkpoint is not None:
                checkpoint.record(
                    site="chunk",
                    index=index,
                    key=keys[index],
                    digest=payload_digest(results[index]),
                )

    if misses:
        registry = current_registry()
        chunks = _chunked(misses, len(point_dicts), chunk_size if warm else 1)
        registry.count("executor.chunks", len(chunks))
        for chunk in chunks:
            registry.observe("executor.chunk_points", len(chunk))
        if workers > 1 and len(chunks) > 1:
            pool_width = min(workers, len(chunks))
            registry.gauge("executor.pool_width", pool_width)
            with current_tracer().span(
                "executor.parallel_chunks", chunks=len(chunks), jobs=pool_width
            ), ResilientPool(
                pool_width, policy=retry, task_timeout=task_timeout, strict=strict
            ) as pool:
                for ordinal, chunk in enumerate(chunks):
                    pool.submit(
                        _solve_chunk_task,
                        (
                            [point_dicts[index] for index in chunk],
                            solver,
                            solver_tol,
                            warm,
                            seed_from_store,
                        ),
                        site="chunk",
                        index=ordinal,
                        tag=ordinal,
                    )
                pending = len(chunks)
                while pending:
                    for tag, outcome in pool.poll():
                        pending -= 1
                        chunk = chunks[tag]
                        if isinstance(outcome, SweepFailure):
                            report_failure(replace(outcome, points=tuple(chunk)))
                            continue
                        solved, export = outcome
                        absorb_export(export, registry)
                        for index, values in zip(chunk, solved):
                            results[index] = values
                        persist(chunk)
        else:
            shared = None
            runner = ResilientPool(1, policy=retry, strict=strict)
            for ordinal, chunk in enumerate(chunks):
                with current_tracer().span(
                    "executor.chunk", points=len(chunk)
                ):
                    job = (
                        [point_dicts[index] for index in chunk],
                        solver,
                        solver_tol,
                        warm,
                        shared,
                        seed_from_store,
                    )
                    outcome = runner.run(
                        lambda args: _solve_chunk_points(*args),
                        [job],
                        site="chunk",
                        indices=[ordinal],
                    )[0]
                if isinstance(outcome, SweepFailure):
                    report_failure(replace(outcome, points=tuple(chunk)))
                    continue
                solved, shared = outcome
                for index, values in zip(chunk, solved):
                    results[index] = values
                persist(chunk)

    return [
        (results.get(index), from_cache[index]) for index in range(len(arrival_rates))
    ]


# ---------------------------------------------------------------------- #
# Scenario-level API
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SweepPoint:
    """One solved point of a scenario sweep."""

    index: int
    arrival_rate: float
    seed: int
    values: dict[str, float]
    from_cache: bool = False
    failed: bool = False

    def metric(self, name: str) -> float:
        return self.values[name]


@dataclass(frozen=True)
class ScenarioRunResult:
    """All points of one scenario run, in sweep order, plus cache accounting.

    ``failures`` holds the structured
    :class:`~repro.runtime.resilience.SweepFailure` records of any points
    that could not be solved (their :class:`SweepPoint` is marked ``failed``
    with empty values); metric accessors refuse a partial result rather than
    silently returning a shorter series.
    """

    spec: ScenarioSpec
    scale: ExperimentScale
    points: tuple[SweepPoint, ...]
    cache_hits: int = 0
    cache_misses: int = 0
    failures: tuple[SweepFailure, ...] = ()

    @property
    def arrival_rates(self) -> tuple[float, ...]:
        return tuple(point.arrival_rate for point in self.points)

    def _check_complete(self) -> None:
        bad = [point.index for point in self.points if point.failed]
        if bad:
            raise RuntimeError(
                f"sweep point(s) {bad} failed; see result.failures for details"
            )

    def series(self, metric: str) -> tuple[float, ...]:
        """Return one metric across the sweep, aligned with ``arrival_rates``."""
        self._check_complete()
        return tuple(point.values[metric] for point in self.points)

    def measures(self) -> tuple[GprsPerformanceMeasures, ...]:
        """Return the full measure objects (one per point)."""
        self._check_complete()
        return tuple(GprsPerformanceMeasures(**point.values) for point in self.points)

    def as_dict(self) -> dict:
        """JSON-serialisable rendering (spec, per-point values, cache stats)."""
        return {
            "scenario": self.spec.to_dict(),
            "scale": self.scale.to_dict(),
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "failures": [failure.as_dict() for failure in self.failures],
            "points": [
                {
                    "index": point.index,
                    "arrival_rate": point.arrival_rate,
                    "seed": point.seed,
                    "from_cache": point.from_cache,
                    "failed": point.failed,
                    "values": dict(point.values),
                }
                for point in self.points
            ],
        }


def run_sweep(
    spec: ScenarioSpec,
    scale: ExperimentScale | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None | str = "ambient",
    warm: bool | None = None,
    chunk_size: int | None = None,
    pipelined: bool | None = None,
    retry: RetryPolicy | None = None,
    task_timeout: float | None = None,
    strict: bool | None = None,
    checkpoint: SweepCheckpoint | None = None,
    seed_from_store: bool | None = None,
) -> ScenarioRunResult:
    """Run one scenario sweep and return its ordered points.

    Parameters
    ----------
    spec:
        The scenario to run (typically from :data:`repro.runtime.SCENARIOS`).
    scale:
        Experiment scale preset; defaults to
        :meth:`~repro.experiments.scale.ExperimentScale.default`.
    jobs:
        Worker processes; ``None`` takes the ambient
        :func:`execution_options` value (default 1 = serial, in-process).
    cache:
        A :class:`~repro.runtime.cache.ResultCache`, ``None`` to disable
        caching, or the sentinel ``"ambient"`` (default) to take the cache
        from :func:`execution_options`.
    warm, chunk_size:
        Sweep-aware incremental solving knobs (see :class:`ExecutionOptions`);
        ``None`` takes the ambient values.
    pipelined:
        Network scenarios only (see :class:`ExecutionOptions`); ``None``
        takes the ambient value, and explicitly enabling it for a
        single-cell or transient scenario is rejected.
    retry, task_timeout, strict, checkpoint:
        Fault-tolerance knobs (see :class:`ExecutionOptions`); ``None``
        takes the ambient values.  Failed points come back marked
        ``failed`` with their
        :class:`~repro.runtime.resilience.SweepFailure` records attached to
        the result; ``strict`` raises
        :class:`~repro.runtime.resilience.SweepFailureError` at the first
        exhausted task instead.
    seed_from_store:
        Opt-in warm-seed start from the artifact store (single-cell sweeps
        only; see :class:`ExecutionOptions`); ``None`` takes the ambient
        value.

    Network scenarios (a topology attached to the spec) run through
    :func:`repro.network.sweep.network_sweep_payloads` instead: each point is
    a joint multi-cell solve, ``jobs`` parallelises the cells within a point
    (or, with ``pipelined=True``, points x cells share one job pool), and
    the returned values are the network-mean measures (use
    :func:`repro.network.sweep.run_network_sweep` for per-cell detail).

    Transient scenarios (a workload profile attached to the spec) run through
    :func:`repro.transient.sweep.transient_sweep_payloads`: each point is a
    full time-dependent trajectory at that base arrival rate, ``jobs``
    parallelises the independent trajectories, and the returned values are
    the trajectory's *time-averaged* measures (use
    :func:`repro.transient.sweep.run_transient_sweep` for the full
    trajectories).
    """
    from repro.experiments.scale import ExperimentScale

    scale = scale or ExperimentScale.default()
    options = current_options()
    effective_jobs = options.jobs if jobs is None else jobs
    effective_cache = options.cache if cache == "ambient" else cache
    effective_warm = options.warm if warm is None else warm
    effective_chunk = options.chunk_size if chunk_size is None else chunk_size
    effective_pipelined = options.pipelined if pipelined is None else pipelined
    effective_retry = options.retry if retry is None else retry
    effective_timeout = options.task_timeout if task_timeout is None else task_timeout
    effective_strict = options.strict if strict is None else strict
    effective_checkpoint = options.checkpoint if checkpoint is None else checkpoint
    effective_seed = (
        options.seed_from_store if seed_from_store is None else seed_from_store
    )

    rates = spec.sweep_rates(scale)
    if spec.network is None and pipelined:
        # Pipelining schedules points x cells; without cells there is no
        # second level, so rejecting the knob beats silently ignoring it.
        raise ValueError(
            "pipelined applies only to network scenarios; single-cell and "
            "transient sweeps already parallelise across whole points"
        )
    with collect_failures() as failures:
        if spec.network is not None:
            from repro.network.sweep import network_sweep_payloads

            if chunk_size is not None:
                # Network sweeps have no point-chunking (cells parallelise
                # within a point); rejecting the knob beats silently
                # ignoring it.
                raise ValueError(
                    "chunk_size applies only to single-cell scenarios; network "
                    "sweeps parallelise across cells within each point"
                )
            payloads = network_sweep_payloads(
                spec,
                scale,
                jobs=effective_jobs,
                cache=effective_cache,
                warm=effective_warm,
                pipelined=effective_pipelined,
                retry=effective_retry,
                task_timeout=effective_timeout,
                strict=effective_strict,
                checkpoint=effective_checkpoint,
            )
            solved = [
                (payload["aggregates"] if payload is not None else None, hit)
                for payload, hit in payloads
            ]
        elif spec.transient is not None:
            from repro.transient.sweep import transient_sweep_payloads

            if chunk_size is not None:
                # Transient sweeps have no point-chunking (whole trajectories
                # parallelise); rejecting the knob beats silently ignoring it.
                raise ValueError(
                    "chunk_size applies only to single-cell scenarios; "
                    "transient sweeps parallelise across independent "
                    "trajectories"
                )
            payloads = transient_sweep_payloads(
                spec,
                scale,
                jobs=effective_jobs,
                cache=effective_cache,
                warm=effective_warm,
                retry=effective_retry,
                task_timeout=effective_timeout,
                strict=effective_strict,
                checkpoint=effective_checkpoint,
            )
            solved = [
                (payload["time_averages"] if payload is not None else None, hit)
                for payload, hit in payloads
            ]
        else:
            params = spec.parameters(scale)
            solved = sweep_measure_dicts(
                params,
                rates,
                solver=spec.solver,
                jobs=effective_jobs,
                cache=effective_cache,
                warm=effective_warm,
                chunk_size=effective_chunk,
                retry=effective_retry,
                task_timeout=effective_timeout,
                strict=effective_strict,
                checkpoint=effective_checkpoint,
                seed_from_store=effective_seed,
            )
    points = tuple(
        SweepPoint(
            index=index,
            arrival_rate=rate,
            seed=spec.point_seed(index),
            values=values if values is not None else {},
            from_cache=hit,
            failed=values is None,
        )
        for index, (rate, (values, hit)) in enumerate(zip(rates, solved))
    )
    hits = sum(1 for point in points if point.from_cache)
    return ScenarioRunResult(
        spec=spec,
        scale=scale,
        points=points,
        cache_hits=hits,
        cache_misses=len(points) - hits,
        failures=tuple(failures),
    )
