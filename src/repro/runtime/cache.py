"""Content-addressed result cache for sweep points.

Every solved sweep point is stored as one small JSON file whose name is the
SHA-256 hash of a canonical JSON rendering of *what produced it*: the
effective model parameters (including the swept arrival rate), the solver
settings, the kind of computation, and a code-version tag.  Consequences:

* the cache is **content-addressed** -- two scenarios (or a scenario and a
  figure run) that resolve to the same effective configuration share entries;
* the key is **stable across processes and machines** -- it only hashes plain
  dictionaries via ``json.dumps(sort_keys=True)``, never ``repr`` or ``hash()``;
* the code-version tag in every key combines ``repro.__version__`` with a
  digest of the package's own source files, so *any* local code edit -- not
  just a release bump -- invalidates all entries at once and numerical fixes
  never serve stale results.

Writes are atomic (temp file + ``os.replace``) so concurrent workers and
interrupted runs can never leave a torn JSON file behind.  An entry that is
damaged anyway (an external writer, a dying disk, an injected fault) is
**quarantined** on first read: the file is renamed to ``<key>.corrupt`` --
preserving the evidence while guaranteeing the next read of that key is a
clean miss -- a ``cache.corrupt`` counter ticks, and the quarantine is
logged once per key.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import repro
from repro.obs.metrics import current_registry
from repro.runtime.faults import current_fault_plan

_logger = logging.getLogger(__name__)

__all__ = ["CODE_VERSION", "CacheStats", "ResultCache", "default_cache_dir", "result_key"]

_SOURCE_DIGEST: str | None = None


def _source_digest() -> str:
    """Digest of every ``.py`` file of the installed ``repro`` package.

    Memoised behind a module-level cache so each process hashes the package
    source at most once, no matter how many callers ask -- the run ledger
    reuses it (via :data:`CODE_VERSION`) for its code-version field, and
    worker processes recompute it only on their own first use.  It makes the
    cache self-invalidating under local code edits, which matters in a
    repository whose product is the numbers.
    """
    global _SOURCE_DIGEST
    if _SOURCE_DIGEST is not None:
        return _SOURCE_DIGEST
    digest = hashlib.sha256()
    try:
        root = Path(repro.__file__).resolve().parent
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
    except OSError:
        _SOURCE_DIGEST = "unhashable"
        return _SOURCE_DIGEST
    _SOURCE_DIGEST = digest.hexdigest()[:12]
    return _SOURCE_DIGEST


#: Tag mixed into every cache key: package version plus a source digest, so
#: both release bumps and local code edits invalidate existing entries.
CODE_VERSION: str = f"repro-{repro.__version__}-{_source_digest()}"

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "GPRS_REPRO_CACHE_DIR"

#: Shorter alias honoured when :data:`CACHE_DIR_ENV` is unset, mirroring the
#: artifact store's ``REPRO_STORE_DIR`` -- service deployments and CI pin
#: both warm tiers with one naming scheme, no flag threading required.
CACHE_DIR_FALLBACK_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """Return the default cache directory (env overrides or ``~/.cache/gprs-repro``)."""
    override = os.environ.get(CACHE_DIR_ENV) or os.environ.get(CACHE_DIR_FALLBACK_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "gprs-repro"


def result_key(
    params_dict: dict,
    *,
    solver: str,
    solver_tol: float,
    kind: str = "analytical",
    seed: int | None = None,
    network: dict | None = None,
    transient: dict | str | None = None,
    code_version: str = CODE_VERSION,
) -> str:
    """Return the content hash of one sweep point.

    Parameters
    ----------
    params_dict:
        Effective model parameters (from
        :func:`repro.runtime.spec.parameters_to_dict`) *including* the swept
        arrival rate.  For network points these are the *base-cell*
        parameters; per-cell deviations enter through ``network``.  For
        transient points they are the unperturbed base parameters; per-segment
        deviations enter through ``transient``.
    solver, solver_tol:
        Steady-state solver settings.
    kind:
        Computation kind, ``"analytical"`` for single-cell CTMC solves,
        ``"network"`` for joint multi-cell solves and ``"transient"`` for
        time-dependent trajectories; simulation-backed runs use a different
        kind so no two ever collide.
    seed:
        Per-point seed for stochastic kinds (``None`` for analytical solves).
    network:
        Topology digest for network points: the full
        :meth:`~repro.network.topology.CellTopology.to_dict` rendering
        (routing matrix and per-cell overrides), so networks that differ in
        any edge weight or override cache separately -- and never share
        entries with single-cell runs (``None``).
    transient:
        Workload-profile identity for transient points: the profile's cached
        content :meth:`~repro.transient.schedule.WorkloadProfile.digest`
        (preferred -- computed once per profile, so per-point keys stop
        re-rendering the whole schedule), or the full
        :meth:`~repro.transient.schedule.WorkloadProfile.to_dict` rendering.
        Either way profiles that differ in any segment or sample cache
        separately -- and never share entries with steady-state runs
        (``None``).
    code_version:
        Version tag; defaults to :data:`CODE_VERSION`.
    """
    payload = {
        "kind": kind,
        "code_version": code_version,
        "solver": solver,
        "solver_tol": solver_tol,
        "seed": seed,
        "network": network,
        "transient": transient,
        "parameters": params_dict,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/write/corrupt counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
        }

    def merge(self, other: "CacheStats | dict") -> None:
        """Fold another instance's counts in (worker stats joining a parent's)."""
        if isinstance(other, CacheStats):
            other = other.as_dict()
        self.hits += other.get("hits", 0)
        self.misses += other.get("misses", 0)
        self.writes += other.get("writes", 0)
        self.corrupt += other.get("corrupt", 0)


@dataclass
class ResultCache:
    """JSON-file result cache under ``root`` (sharded by key prefix).

    ``get``/``put`` speak plain dictionaries; callers decide what a payload
    means.  An unreadable entry counts as a miss; a *corrupt* entry (present
    but not valid JSON) is additionally quarantined -- renamed to
    ``<key>.corrupt`` so it can never be re-read, counted under
    ``cache.corrupt``, and logged once per key.  The worst a broken cache
    can do is recompute.
    """

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)
    _quarantine_logged: set = field(default_factory=set, repr=False)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def path_for(self, key: str) -> Path:
        """Return the file path of ``key`` (two-character shard directories)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """Return the cached payload for ``key`` or ``None`` on a miss."""
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError:
            self.stats.misses += 1
            current_registry().count("cache.result.misses")
            return None
        except ValueError:
            self._quarantine(key, path)
            self.stats.misses += 1
            current_registry().count("cache.result.misses")
            return None
        self.stats.hits += 1
        current_registry().count("cache.result.hits")
        return payload

    def _quarantine(self, key: str, path: Path) -> None:
        """Move a corrupt entry aside so the key reads as a clean miss."""
        self.stats.corrupt += 1
        current_registry().count("cache.corrupt")
        try:
            os.replace(path, path.with_name(f"{key}.corrupt"))
        except OSError:
            pass  # unmovable (e.g. read-only cache): the miss still recomputes
        if key not in self._quarantine_logged:
            self._quarantine_logged.add(key)
            _logger.warning(
                "quarantined corrupt cache entry %s -> %s.corrupt", key, key
            )

    def put(self, key: str, payload: dict) -> None:
        """Atomically store ``payload`` under ``key``.

        Interruptions never leave a torn entry: any failure (including
        ``KeyboardInterrupt``, which is re-raised, never swallowed) removes
        the temp file and the target is only ever replaced whole.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "w",
            encoding="utf-8",
            dir=path.parent,
            prefix=f".{key[:8]}-",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                json.dump(payload, handle)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        current_registry().count("cache.result.writes")
        plan = current_fault_plan()
        if plan is not None and plan.take_cache_corruption():
            # Injected corruption (the ``cache`` fault site): truncate the
            # just-written entry so the next read exercises quarantine.
            path.write_text('{"corrupt', encoding="utf-8")
            current_registry().count("faults.injected")

    def __len__(self) -> int:
        """Number of entries currently stored (walks the shard directories)."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
