"""Registry of runnable scenarios: the 11 paper figures plus extensions.

Each entry is a :class:`~repro.runtime.spec.ScenarioSpec` describing one
workload declaratively.  The paper scenarios (tag ``"paper"``) pin the *base*
configuration behind Figures 5-15 -- one representative curve per figure, with
the figure's own metrics -- so ``gprs-repro sweep figure12 --jobs 4`` replays
the paper's workload through the parallel, cached runtime.  (The multi-curve
renderings with every legend entry remain in
:mod:`repro.experiments.figures`; run them via ``gprs-repro run``.)

The extension scenarios (tag ``"extension"``) open workloads the paper never
measured: heavily loaded GPRS cells, degraded radio links, bursty sources,
buffer dimensioning, dense cells, voice-only protection and uncontrolled TCP.

The network scenarios (tag ``"network"``, a
:class:`~repro.network.topology.CellTopology` attached to the spec) sweep a
whole multi-cell topology through :class:`~repro.network.model.NetworkModel`:
the homogeneous seven-cell validation anchor, a hotspot cluster, a cluster
with degraded-radio cells and a sixteen-cell ring.

The transient scenarios (tag ``"transient"``, a
:class:`~repro.transient.schedule.WorkloadProfile` attached to the spec)
solve non-stationary workloads through
:class:`~repro.transient.model.TransientModel`: the morning busy-hour ramp,
a flash crowd, a partial-capacity outage with recovery, and a compressed
24-hour diurnal cycle.
"""

from __future__ import annotations

from repro.network.topology import hexagonal_cluster, hotspot, ring
from repro.runtime.spec import ScenarioSpec
from repro.transient.schedule import (
    busy_hour_ramp,
    diurnal_cycle,
    flash_crowd,
    outage_recovery,
)

__all__ = ["SCENARIOS", "list_scenarios", "register", "scenario"]

#: All registered scenarios, keyed by :attr:`ScenarioSpec.name`.
SCENARIOS: dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec) -> ScenarioSpec:
    """Add ``spec`` to the registry (names must be unique)."""
    if spec.name in SCENARIOS:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    SCENARIOS[spec.name] = spec
    return spec


def scenario(name: str) -> ScenarioSpec:
    """Return the registered scenario called ``name``."""
    try:
        return SCENARIOS[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown scenario {name!r}; available: {', '.join(sorted(SCENARIOS))}"
        ) from exc


def _kind_of(spec: ScenarioSpec) -> str:
    """One of ``"cell"``, ``"network"`` or ``"transient"`` (mutually exclusive)."""
    if spec.network is not None:
        return "network"
    if spec.transient is not None:
        return "transient"
    return "cell"


def list_scenarios(
    tag: str | None = None, *, kind: str | None = None
) -> tuple[ScenarioSpec, ...]:
    """Return all scenarios, sorted by name, optionally filtered.

    ``tag`` keeps scenarios carrying that tag; ``kind`` distinguishes
    single-cell steady-state workloads (``"cell"``), multi-cell ones
    (``"network"``, a topology attached) and non-stationary ones
    (``"transient"``, a workload profile attached).
    """
    if kind not in (None, "cell", "network", "transient"):
        raise ValueError(
            f"unknown scenario kind {kind!r}; use 'cell', 'network' or 'transient'"
        )
    specs = (
        spec
        for spec in SCENARIOS.values()
        if (tag is None or tag in spec.tags)
        and (kind is None or _kind_of(spec) == kind)
    )
    return tuple(sorted(specs, key=lambda spec: spec.name))


# ---------------------------------------------------------------------- #
# Paper scenarios: the base configuration of each evaluation figure
# ---------------------------------------------------------------------- #
register(ScenarioSpec(
    name="figure5",
    description="TCP threshold calibration: packet loss at the calibrated eta = 0.7",
    traffic_model=3,
    tcp_threshold=0.7,
    metrics=("packet_loss_probability",),
    tags=("paper",),
))

register(ScenarioSpec(
    name="figure6",
    description="Validation workload: CDT and per-user throughput, 5% GPRS users",
    traffic_model=3,
    gprs_fraction=0.05,
    reserved_pdch=1,
    metrics=("carried_data_traffic", "throughput_per_user_kbit_s"),
    tags=("paper",),
))

register(ScenarioSpec(
    name="figure7",
    description="Carried data traffic, traffic model 1 with 2 reserved PDCHs",
    traffic_model=1,
    reserved_pdch=2,
    metrics=("carried_data_traffic",),
    tags=("paper",),
))

register(ScenarioSpec(
    name="figure8",
    description="Packet loss probability, traffic model 2 with 2 reserved PDCHs",
    traffic_model=2,
    reserved_pdch=2,
    metrics=("packet_loss_probability",),
    tags=("paper",),
))

register(ScenarioSpec(
    name="figure9",
    description="Queueing delay, traffic model 1 with 4 reserved PDCHs",
    traffic_model=1,
    reserved_pdch=4,
    metrics=("queueing_delay",),
    tags=("paper",),
))

register(ScenarioSpec(
    name="figure10",
    description="Session-limit study: CDT and GPRS blocking at M = 100 (paper scale)",
    traffic_model=1,
    reserved_pdch=2,
    max_sessions=100,
    metrics=("carried_data_traffic", "gprs_blocking_probability"),
    tags=("paper",),
))

register(ScenarioSpec(
    name="figure11",
    description="CDT and per-user throughput, 2% GPRS users, 2 reserved PDCHs",
    traffic_model=3,
    gprs_fraction=0.02,
    reserved_pdch=2,
    metrics=("carried_data_traffic", "throughput_per_user_kbit_s"),
    tags=("paper",),
))

register(ScenarioSpec(
    name="figure12",
    description="CDT and per-user throughput, 5% GPRS users, 2 reserved PDCHs",
    traffic_model=3,
    gprs_fraction=0.05,
    reserved_pdch=2,
    metrics=("carried_data_traffic", "throughput_per_user_kbit_s"),
    tags=("paper",),
))

register(ScenarioSpec(
    name="figure13",
    description="CDT and per-user throughput, 10% GPRS users, 2 reserved PDCHs",
    traffic_model=3,
    gprs_fraction=0.10,
    reserved_pdch=2,
    metrics=("carried_data_traffic", "throughput_per_user_kbit_s"),
    tags=("paper",),
))

register(ScenarioSpec(
    name="figure14",
    description="Voice-service impact: carried voice traffic and blocking, 2 reserved PDCHs",
    traffic_model=3,
    reserved_pdch=2,
    metrics=("carried_voice_traffic", "voice_blocking_probability"),
    tags=("paper",),
))

register(ScenarioSpec(
    name="figure15",
    description="Average GPRS sessions and session blocking, 5% GPRS users",
    traffic_model=3,
    gprs_fraction=0.05,
    reserved_pdch=1,
    metrics=("average_gprs_sessions", "gprs_blocking_probability"),
    tags=("paper",),
))


# ---------------------------------------------------------------------- #
# Extension scenarios: workloads beyond the paper's evaluation
# ---------------------------------------------------------------------- #
register(ScenarioSpec(
    name="heavy-gprs",
    description="Data-dominated cell: 30% GPRS users on 4 reserved PDCHs",
    traffic_model=3,
    gprs_fraction=0.30,
    reserved_pdch=4,
    metrics=(
        "carried_data_traffic",
        "packet_loss_probability",
        "throughput_per_user_kbit_s",
    ),
    tags=("extension",),
))

register(ScenarioSpec(
    name="degraded-radio",
    description="Poor radio link: CS-1 coding with 10% block error rate",
    traffic_model=3,
    coding_scheme="CS-1",
    block_error_rate=0.10,
    reserved_pdch=2,
    metrics=(
        "packet_loss_probability",
        "queueing_delay",
        "throughput_per_user_kbit_s",
    ),
    tags=("extension",),
))

register(ScenarioSpec(
    name="bursty-sessions",
    description="Burstier-than-3GPP sources: near-zero reading time, long packet calls",
    traffic_model=3,
    traffic_overrides={"reading_time_s": 0.5, "packets_per_packet_call": 50.0},
    reserved_pdch=2,
    metrics=(
        "packet_loss_probability",
        "mean_queue_length",
        "queueing_delay",
    ),
    tags=("extension",),
))

register(ScenarioSpec(
    name="large-buffer",
    description="Buffer dimensioning: K = 400 packets trades loss for delay",
    traffic_model=2,
    buffer_size=400,
    reserved_pdch=2,
    metrics=(
        "packet_loss_probability",
        "queueing_delay",
        "mean_queue_length",
    ),
    tags=("extension",),
))

register(ScenarioSpec(
    name="dense-cell",
    description="Double-capacity cell: 40 physical channels, 10% GPRS users",
    traffic_model=3,
    number_of_channels=40,
    gprs_fraction=0.10,
    reserved_pdch=4,
    metrics=(
        "carried_data_traffic",
        "carried_voice_traffic",
        "voice_blocking_probability",
    ),
    tags=("extension",),
))

register(ScenarioSpec(
    name="voice-first",
    description="No reserved PDCHs: GPRS rides purely on idle voice channels",
    traffic_model=3,
    reserved_pdch=0,
    metrics=(
        "carried_voice_traffic",
        "voice_blocking_probability",
        "packet_loss_probability",
    ),
    tags=("extension",),
))

register(ScenarioSpec(
    name="no-flow-control",
    description="Uncontrolled TCP (eta = 1): worst-case buffer overload",
    traffic_model=3,
    tcp_threshold=1.0,
    reserved_pdch=2,
    metrics=(
        "packet_loss_probability",
        "mean_queue_length",
        "offered_packet_rate",
    ),
    tags=("extension",),
))


# ---------------------------------------------------------------------- #
# Network scenarios: whole topologies solved by the multi-cell fixed point
# ---------------------------------------------------------------------- #
register(ScenarioSpec(
    name="homogeneous-7",
    description="Validation anchor: uniform 7-cell wrap-around cluster "
    "(must reproduce the single-cell fixed point)",
    traffic_model=3,
    gprs_fraction=0.05,
    reserved_pdch=2,
    metrics=(
        "carried_data_traffic",
        "voice_blocking_probability",
        "throughput_per_user_kbit_s",
    ),
    tags=("network", "extension"),
    network=hexagonal_cluster(7),
))

register(ScenarioSpec(
    name="hotspot-cluster",
    description="Hot mid cell at 2.5x arrivals: neighbours absorb the "
    "handover overflow",
    traffic_model=3,
    gprs_fraction=0.05,
    reserved_pdch=2,
    metrics=(
        "voice_blocking_probability",
        "gprs_blocking_probability",
        "packet_loss_probability",
    ),
    tags=("network", "extension"),
    network=hotspot(7, hot_cell=0, arrival_multiplier=2.5),
))

register(ScenarioSpec(
    name="heterogeneous-radio",
    description="7-cell cluster with two CS-1 cells at 10% block errors "
    "amid CS-2 neighbours",
    traffic_model=3,
    gprs_fraction=0.05,
    reserved_pdch=2,
    metrics=(
        "packet_loss_probability",
        "queueing_delay",
        "throughput_per_user_kbit_s",
    ),
    tags=("network", "extension"),
    network=hexagonal_cluster(7, overrides={
        3: {"coding_scheme": "CS-1", "block_error_rate": 0.10},
        4: {"coding_scheme": "CS-1", "block_error_rate": 0.10},
    }),
))

register(ScenarioSpec(
    name="ring-16",
    description="16-cell ring: larger-scale homogeneous network sweep",
    traffic_model=3,
    gprs_fraction=0.05,
    reserved_pdch=2,
    metrics=(
        "carried_data_traffic",
        "voice_blocking_probability",
        "throughput_per_user_kbit_s",
    ),
    tags=("network", "extension"),
    network=ring(16),
))


# ---------------------------------------------------------------------- #
# Transient scenarios: non-stationary workloads solved over time
# ---------------------------------------------------------------------- #
register(ScenarioSpec(
    name="busy-hour-ramp",
    description="Morning busy hour: load staircases to 2x, holds, and falls back",
    traffic_model=3,
    gprs_fraction=0.05,
    reserved_pdch=2,
    metrics=(
        "packet_loss_probability",
        "queueing_delay",
        "throughput_per_user_kbit_s",
    ),
    tags=("transient", "extension"),
    transient=busy_hour_ramp(),
))

register(ScenarioSpec(
    name="flash-crowd",
    description="Flash crowd: an abrupt 3x arrival spike and the recovery after it",
    traffic_model=3,
    gprs_fraction=0.05,
    reserved_pdch=2,
    metrics=(
        "packet_loss_probability",
        "mean_queue_length",
        "carried_data_traffic",
    ),
    tags=("transient", "extension"),
    transient=flash_crowd(),
))

register(ScenarioSpec(
    name="outage-recovery",
    description="Partial outage: the cell drops to 12 of 20 channels, then recovers",
    traffic_model=3,
    gprs_fraction=0.05,
    reserved_pdch=2,
    metrics=(
        "voice_blocking_probability",
        "packet_loss_probability",
        "carried_data_traffic",
    ),
    tags=("transient", "extension"),
    transient=outage_recovery(outage_channels=12),
))

register(ScenarioSpec(
    name="diurnal-24h",
    description="Compressed 24-hour cycle: sinusoidal load, one segment per hour",
    traffic_model=3,
    gprs_fraction=0.05,
    reserved_pdch=2,
    metrics=(
        "carried_data_traffic",
        "packet_loss_probability",
        "voice_blocking_probability",
    ),
    tags=("transient", "extension"),
    transient=diurnal_cycle(),
))
