"""Deterministic fault injection for the execution runtime.

Every recovery path of :mod:`repro.runtime.resilience` -- retry on a crashed
worker, pool respawn after ``BrokenProcessPool``, deadline timeouts,
quarantine of corrupt cache entries -- is exercised by *injected* faults
rather than trusted: a :class:`FaultPlan` names exactly which task fails,
how, and how many times, and the chaos tests assert that the run still
produces the fault-free numbers.

Determinism is the whole point, so faults are resolved **in the parent
process at submission time**: the plan maps ``(site, task index, attempt)``
to the actions that fire on that attempt, and the resolved actions travel
inside the submitted call (:func:`run_with_faults`).  Worker processes never
consult the plan, so a fault can never re-fire "by accident" in a respawned
worker, and a retried attempt beyond a rule's ``times`` budget runs the
identical pure payload.

The spec grammar (the ``REPRO_FAULTS`` environment variable and the CLI's
``--inject-faults``) is a comma-separated list of rules::

    site@index=action[:arg][*times]

    chunk@1=kill                 kill the worker solving chunk 1 (SIGKILL)
    cell@2=timeout:5             cell task 2 sleeps 5 s (past any deadline)
    trajectory@0=raise*2         trajectory 0 raises on its first 2 attempts
    cache@0=corrupt              truncate the first cache entry written

Sites are the three execution seams (``chunk`` / ``cell`` / ``trajectory``,
indexed by task dispatch order) plus ``cache`` (indexed by
:meth:`~repro.runtime.cache.ResultCache.put` order).  A rule fires while
``attempt < times`` (default 1), so a retried task eventually escapes it.

Activation mirrors :mod:`repro.obs.trace`: a contextvar scoped by
:func:`inject_faults`, falling back to a lazily parsed ``REPRO_FAULTS``
environment plan.  When neither is set, :func:`current_fault_plan` is a
single contextvar read returning ``None`` -- the disabled path costs nothing
measurable (bounded alongside the tracer's <1% figure in ROADMAP.md).
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import signal
import time
from dataclasses import dataclass

__all__ = [
    "FAULTS_ENV",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "WorkerKilled",
    "current_fault_plan",
    "inject_faults",
    "parse_fault_spec",
    "run_with_faults",
]

#: Environment variable holding a fault spec for the whole process tree.
FAULTS_ENV = "REPRO_FAULTS"

#: The execution seams a rule may target.
SITES = ("chunk", "cell", "trajectory", "cache")

#: The failure modes a rule may inject.
ACTIONS = ("raise", "timeout", "kill", "corrupt")


class InjectedFault(OSError):
    """A deliberately injected failure (classified retryable, like any OSError)."""


class WorkerKilled(InjectedFault):
    """Serial stand-in for SIGKILL: in-process execution cannot kill a worker."""


@dataclass(frozen=True)
class FaultRule:
    """One parsed rule: fire ``action`` at ``(site, index)`` for ``times`` attempts."""

    site: str
    index: int
    action: str
    arg: float | None = None
    times: int = 1


def parse_fault_spec(spec: str) -> tuple[FaultRule, ...]:
    """Parse a comma-separated ``site@index=action[:arg][*times]`` spec."""
    rules = []
    for part in str(spec).split(","):
        part = part.strip()
        if not part:
            continue
        try:
            target, _, effect = part.partition("=")
            site, _, index_text = target.partition("@")
            effect, _, times_text = effect.partition("*")
            action, _, arg_text = effect.partition(":")
            site = site.strip()
            action = action.strip()
            if site not in SITES:
                raise ValueError(f"unknown site {site!r} (one of {', '.join(SITES)})")
            if action not in ACTIONS:
                raise ValueError(
                    f"unknown action {action!r} (one of {', '.join(ACTIONS)})"
                )
            rules.append(
                FaultRule(
                    site=site,
                    index=int(index_text),
                    action=action,
                    arg=float(arg_text) if arg_text else None,
                    times=int(times_text) if times_text else 1,
                )
            )
        except ValueError as error:
            raise ValueError(f"invalid fault rule {part!r}: {error}") from None
    return tuple(rules)


class FaultPlan:
    """An active set of fault rules, consulted by the parent at dispatch time."""

    def __init__(self, rules: tuple[FaultRule, ...]) -> None:
        self.rules = tuple(rules)
        # Ordinal of ResultCache.put calls seen under this plan; the ``cache``
        # site indexes by it.  Mutable parent-side state only -- task-site
        # rules are resolved purely from (site, index, attempt).
        self._cache_puts = 0

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        return cls(parse_fault_spec(spec))

    def actions_for(self, site: str, index: int, attempt: int) -> tuple:
        """The ``(action, arg)`` pairs firing at this task attempt."""
        return tuple(
            (rule.action, rule.arg)
            for rule in self.rules
            if rule.site == site
            and rule.index == index
            and attempt < rule.times
            and rule.action != "corrupt"
        )

    def take_cache_corruption(self) -> bool:
        """Consume one cache-put ordinal; True when a ``cache`` rule fires on it."""
        ordinal = self._cache_puts
        self._cache_puts += 1
        return any(
            rule.site == "cache" and rule.index == ordinal and rule.action == "corrupt"
            for rule in self.rules
        )


_ACTIVE_PLAN: contextvars.ContextVar[FaultPlan | None] = contextvars.ContextVar(
    "repro_runtime_fault_plan", default=None
)

# The REPRO_FAULTS fallback, parsed at most once per process.
_ENV_PLAN: FaultPlan | None = None
_ENV_CHECKED = False


def current_fault_plan() -> FaultPlan | None:
    """The active fault plan, or ``None`` (the common, zero-cost case)."""
    plan = _ACTIVE_PLAN.get()
    if plan is not None:
        return plan
    global _ENV_PLAN, _ENV_CHECKED
    if not _ENV_CHECKED:
        _ENV_CHECKED = True
        spec = os.environ.get(FAULTS_ENV)
        if spec:
            _ENV_PLAN = FaultPlan.parse(spec)
    return _ENV_PLAN


@contextlib.contextmanager
def inject_faults(spec: "str | FaultPlan"):
    """Scope a fault plan (CLI ``--inject-faults`` and the chaos tests)."""
    plan = spec if isinstance(spec, FaultPlan) else FaultPlan.parse(spec)
    token = _ACTIVE_PLAN.set(plan)
    try:
        yield plan
    finally:
        _ACTIVE_PLAN.reset(token)


def run_with_faults(actions: tuple, worker, job, in_worker: bool):
    """Apply pre-resolved fault actions, then run ``worker(job)``.

    Top level so a process pool can pickle it; the serial path calls the very
    same function with ``in_worker=False``.  ``kill`` delivers SIGKILL to the
    current (worker) process -- the parent observes ``BrokenProcessPool`` --
    or raises :class:`WorkerKilled` in-process, where suicide would kill the
    whole run.  ``timeout`` sleeps past the deadline and then *continues*:
    under a pool the parent has long since timed the task out; serially there
    is no deadline to miss, so the sleep is the whole fault.
    """
    for action, arg in actions:
        if action == "raise":
            raise InjectedFault("injected fault: raise")
        if action == "kill":
            if in_worker:
                os.kill(os.getpid(), signal.SIGKILL)
            raise WorkerKilled("injected fault: worker killed (serial stand-in)")
        if action == "timeout":
            time.sleep(arg if arg is not None else 60.0)
    return worker(job)
