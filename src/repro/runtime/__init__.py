"""Scenario runtime: declarative workloads, parallel sweeps, result caching.

This package is the execution layer above the analytical model and below the
CLI/benchmark harnesses.  It separates three concerns that the figure
functions used to interleave:

* **What to run** -- :class:`~repro.runtime.spec.ScenarioSpec`, a frozen,
  dict-serialisable description of one workload (traffic mix, radio and cell
  configuration, solver, sweep axis, metrics; optionally a multi-cell
  topology or a time-varying workload profile).  The registry in
  :mod:`repro.runtime.registry` ships the 11 paper figures plus extension
  workloads the paper never measured -- including multi-cell network
  scenarios and non-stationary transient scenarios; ``gprs-repro list``
  prints them.
* **How big to run it** -- an
  :class:`~repro.experiments.scale.ExperimentScale` preset (``smoke`` /
  ``default`` / ``paper``).  A scenario stores *paper-scale* sizes; the scale
  preset caps them at materialisation time, so the same spec serves smoke
  tests, CI benchmarks and full-fidelity reproduction, and each combination
  caches separately.
* **How to execute it** -- :func:`~repro.runtime.executor.run_sweep` groups
  the sweep points into chunks of adjacent arrival rates, shards the chunks
  across worker processes (``jobs=N``) with deterministic per-point seeds and
  reassembles results in sweep order, consulting a content-addressed
  :class:`~repro.runtime.cache.ResultCache` first.  Within a chunk each point
  reuses the chunk's generator template and warm-starts from its
  predecessors' solutions (disable with ``warm=False``); chunk boundaries
  never depend on ``jobs``, so parallel runs stay bitwise identical to
  serial ones.  Cache keys hash the *effective* parameters of each point
  plus a code-version tag (package version and a digest of the package
  sources), so warm reruns -- and any other scenario resolving to the same
  physics -- skip the solver entirely, while code edits invalidate
  everything at once.

Quickstart::

    from repro.runtime import ResultCache, default_cache_dir, run_sweep, scenario

    cache = ResultCache(default_cache_dir())
    result = run_sweep(scenario("heavy-gprs"), jobs=4, cache=cache)
    print(result.series("packet_loss_probability"))
"""

from repro.runtime.cache import (
    CODE_VERSION,
    CacheStats,
    ResultCache,
    default_cache_dir,
    result_key,
)
from repro.runtime.executor import (
    DEFAULT_CHUNK_SIZE,
    ExecutionOptions,
    ScenarioRunResult,
    SweepPoint,
    current_options,
    execution_options,
    run_sweep,
    sweep_measure_dicts,
)
from repro.runtime.faults import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    current_fault_plan,
    inject_faults,
    parse_fault_spec,
)
from repro.runtime.registry import SCENARIOS, list_scenarios, register, scenario
from repro.runtime.resilience import (
    DEFAULT_RETRY_POLICY,
    CancelToken,
    ResilientPool,
    RetryPolicy,
    SweepCheckpoint,
    SweepFailure,
    SweepFailureError,
    TaskCancelledError,
    cancel_scope,
    collect_failures,
    current_cancel_token,
    payload_digest,
)
from repro.runtime.spec import (
    DEFAULT_METRICS,
    ScenarioSpec,
    parameters_from_dict,
    parameters_to_dict,
)

__all__ = [
    "CODE_VERSION",
    "CacheStats",
    "CancelToken",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_METRICS",
    "DEFAULT_RETRY_POLICY",
    "ExecutionOptions",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "ResilientPool",
    "ResultCache",
    "RetryPolicy",
    "SCENARIOS",
    "ScenarioRunResult",
    "ScenarioSpec",
    "SweepCheckpoint",
    "SweepFailure",
    "SweepFailureError",
    "SweepPoint",
    "TaskCancelledError",
    "cancel_scope",
    "collect_failures",
    "current_cancel_token",
    "current_fault_plan",
    "current_options",
    "default_cache_dir",
    "execution_options",
    "inject_faults",
    "list_scenarios",
    "parameters_from_dict",
    "parameters_to_dict",
    "parse_fault_spec",
    "payload_digest",
    "register",
    "result_key",
    "run_sweep",
    "scenario",
    "sweep_measure_dicts",
]
