"""Fault-tolerant task execution: retries, deadlines, respawn, checkpoints.

The execution seams (:func:`repro.runtime.executor.sweep_measure_dicts`,
:func:`repro.runtime.executor.drive_pipelined`, the network and transient
sweeps) all reduce to the same shape: a list of *pure* task payloads whose
results are reassembled in order.  Purity is what makes resilience cheap --
a retried task re-runs the identical payload and produces the identical
bytes, so recovering from a crashed worker can never change numbers, only
wall time.  This module supplies that recovery:

* :class:`RetryPolicy` -- bounded attempts with exponential backoff and
  deterministic seeded jitter; classifies worker death
  (``BrokenProcessPool``), deadline timeouts and ``OSError`` as retryable,
  everything else (a ``ValueError``, a solver bug) as fatal, because a
  deterministic payload that failed "honestly" will fail identically again.
* :class:`ResilientPool` -- a retrying, deadline-enforcing wrapper around one
  ``ProcessPoolExecutor``.  A broken pool is respawned (every in-flight task
  counts one attempt -- the culprit is indistinguishable from its victims);
  after ``max_pool_respawns`` respawns the pool **degrades to in-process
  serial execution** and the sweep still finishes.  A task past its deadline
  (``ExecutionOptions.task_timeout``) cannot be cancelled mid-run, so the
  pool is recycled and the survivors resubmitted.
* :class:`SweepFailure` -- the structured record a task that exhausted its
  attempts leaves behind instead of aborting the sweep; ``strict`` restores
  fail-fast by raising :class:`SweepFailureError` at the first one.
  :func:`collect_failures` scopes an ambient sink the sweep entry points use
  to attach failures to their results.
* :class:`SweepCheckpoint` -- a JSONL journal of completed sweep points
  (cache key + payload digest, schema-versioned like the run ledger) so an
  interrupted invocation resumes by serving checkpointed points from the
  result cache and solving only the remainder; a digest mismatch (a corrupt
  cache entry) demotes the point back to a miss.

Injected faults (:mod:`repro.runtime.faults`) are resolved parent-side at
submission and shipped inside the submitted call, so every path above is
provable in tests; with no plan active, submission cost is one contextvar
read.

Worker processes are started through a **forkserver** context rather than
bare ``fork``.  The service tier (and ``drive_pipelined``) submit from a
multithreaded parent, and forking a multithreaded CPython process is
unsound: the child can deadlock inside ``threading._after_fork`` before it
ever reaches the executor's work loop -- an alive-but-wedged worker that
never raises ``BrokenProcessPool``, so its future pends forever.  The
forkserver is a single-threaded fork parent, which removes the race
entirely; preloading the solver modules into it keeps per-worker startup
as cheap as fork after the one-time server spawn.  Two fork behaviours do
not carry over: workers no longer inherit the parent's *current*
environment (each pool ships its repro env knobs through an initializer
instead) or its warm in-process caches (cross-process warmth flows
through the artifact store, which is the seam built for it).  Set
``REPRO_POOL_START_METHOD`` to override (e.g. ``fork`` to compare, or
``spawn`` where forkserver is unavailable).
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import json
import multiprocessing
import os
import sys
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.metrics import current_registry
from repro.runtime.faults import current_fault_plan, run_with_faults

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CHECKPOINT_SCHEMA_VERSION",
    "DEFAULT_RETRY_POLICY",
    "CancelToken",
    "ResilientPool",
    "RetryPolicy",
    "SweepCheckpoint",
    "SweepFailure",
    "SweepFailureError",
    "TaskCancelledError",
    "cancel_scope",
    "checkpointed_get",
    "collect_failures",
    "current_cancel_token",
    "payload_digest",
    "report_failure",
]


# ---------------------------------------------------------------------- #
# Fork-safe worker start method
# ---------------------------------------------------------------------- #
# Modules imported into the forkserver before it starts forking workers:
# every function a ResilientPool ever submits lives in one of these, so a
# forked worker starts with the whole solver stack (numpy, scipy, the
# generator/propagator machinery) already imported -- fork-cheap startup
# without fork's multithreaded-parent deadlock.
_PRELOAD_MODULES = (
    "repro.runtime.faults",
    "repro.runtime.executor",
    "repro.transient.sweep",
    "repro.network.model",
)

_mp_context = None
_mp_context_lock = threading.Lock()

# Workers fork from the forkserver's environment *snapshot*, taken when the
# server first starts -- not from the submitting process.  Anything exported
# for workers to inherit after that point (``--store-dir`` sets
# ``$REPRO_STORE_DIR`` exactly so pool workers resolve the same store) would
# silently read the snapshot value.  Each pool therefore ships the parent's
# current repro knobs through an initializer, restoring fork semantics.
_WORKER_ENV_PREFIXES = ("REPRO_", "GPRS_REPRO_")


def _worker_env_snapshot() -> dict:
    """The parent's current repro env knobs, captured at pool creation."""
    return {
        key: value
        for key, value in os.environ.items()
        if key.startswith(_WORKER_ENV_PREFIXES)
    }


def _init_worker_env(snapshot: dict) -> None:
    """Worker initializer: mirror the parent's repro env knobs exactly."""
    for key in list(os.environ):
        if key.startswith(_WORKER_ENV_PREFIXES) and key not in snapshot:
            del os.environ[key]
    os.environ.update(snapshot)


def _noop() -> None:
    """Target of the forkserver warm-up probe (must be module-level)."""


def _pool_mp_context():
    """The shared multiprocessing context worker pools start from.

    ``forkserver`` (the default here) forks workers from a dedicated
    single-threaded server process, so pool creation -- including respawns
    after a worker kill -- is safe no matter how many service/solver
    threads the submitting process runs.  Bare ``fork`` from a
    multithreaded parent can wedge the child in ``threading._after_fork``
    before it reaches the work loop: the worker stays alive but never
    executes, the future pends forever, and ``BrokenProcessPool`` never
    fires.  ``REPRO_POOL_START_METHOD`` overrides the method; an
    unsupported choice falls back to the platform default.
    """
    global _mp_context
    if _mp_context is None:
        with _mp_context_lock:
            if _mp_context is None:
                method = os.environ.get("REPRO_POOL_START_METHOD", "forkserver")
                try:
                    context = multiprocessing.get_context(method)
                except ValueError:
                    context = multiprocessing.get_context()
                if getattr(context, "_name", None) == "forkserver":
                    # Replaces the default ['__main__'] preload: entry
                    # scripts are not re-run inside the server, and worker
                    # forks inherit the whole solver stack instead.
                    preload = list(_PRELOAD_MODULES)
                    if "pytest" in sys.modules:
                        # Workers unpickle test-module functions, and test
                        # modules import pytest -- preload it so that cost
                        # is paid once in the server, not against the
                        # first task's deadline in every fresh worker.
                        preload.append("pytest")
                    context.set_forkserver_preload(preload)
                    # Warm the server (spawn + preload imports) *now*, so
                    # task deadlines armed at submission never race the
                    # one-time startup cost.
                    probe = context.Process(target=_noop, daemon=True)
                    probe.start()
                    probe.join()
                _mp_context = context
    return _mp_context


# ---------------------------------------------------------------------- #
# Pool-aware cancellation
# ---------------------------------------------------------------------- #
class CancelToken:
    """A one-shot, thread-safe cancellation flag shared across threads.

    The token is *pool-aware* through :class:`ResilientPool`: a pool that
    runs under :func:`cancel_scope` checks the ambient token before every
    submission and around every wait, and a set token makes it drop all
    pending work, recycle the worker pool (killing in-flight subprocess
    tasks) and raise :class:`TaskCancelledError`.  In-process (serial)
    execution cannot preempt a running solve, so serial tasks check the
    token only *between* tasks -- the documented best the GIL allows.
    """

    def __init__(self, reason: str = "") -> None:
        self._event = threading.Event()
        self._reason = reason

    def cancel(self, reason: str | None = None) -> None:
        """Trip the token (idempotent); later ``reason`` updates are kept."""
        if reason is not None:
            self._reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    @property
    def reason(self) -> str:
        return self._reason


class TaskCancelledError(RuntimeError):
    """Raised by :class:`ResilientPool` when the ambient token trips."""

    def __init__(self, token: CancelToken) -> None:
        reason = token.reason or "cancelled"
        super().__init__(f"task execution cancelled: {reason}")
        self.token = token


_CANCEL: contextvars.ContextVar[CancelToken | None] = contextvars.ContextVar(
    "repro_runtime_cancel_token", default=None
)


def current_cancel_token() -> CancelToken | None:
    """The innermost ambient cancellation token, or ``None``."""
    return _CANCEL.get()


@contextlib.contextmanager
def cancel_scope(token: CancelToken):
    """Make ``token`` the ambient cancellation token for a ``with`` block."""
    previous = _CANCEL.set(token)
    try:
        yield token
    finally:
        _CANCEL.reset(previous)


# ---------------------------------------------------------------------- #
# Retry policy and failure records
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class RetryPolicy:
    """How often, how patiently, and for which errors a task is retried."""

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    jitter_fraction: float = 0.25
    seed: int = 0
    max_pool_respawns: int = 2

    def is_retryable(self, error: BaseException) -> bool:
        """Worker death, deadline timeouts and OS-level errors are transient;
        everything else fails identically on a pure payload."""
        if isinstance(error, (KeyboardInterrupt, SystemExit)):
            return False
        return isinstance(error, (BrokenProcessPool, TimeoutError, OSError))

    def backoff_s(self, site: str, index: int, attempt: int) -> float:
        """Delay before ``attempt`` (1-based), with deterministic jitter.

        The jitter is a pure function of ``(seed, site, index, attempt)`` so
        two runs of the same failing sweep back off identically -- reproducing
        a flaky-looking run reproduces its timing too.
        """
        if attempt <= 0:
            return 0.0
        base = min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
        )
        token = f"{self.seed}:{site}:{index}:{attempt}".encode("utf-8")
        unit = int.from_bytes(hashlib.sha256(token).digest()[:8], "big") / 2.0**64
        return base * (1.0 + self.jitter_fraction * (2.0 * unit - 1.0))


DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass(frozen=True)
class SweepFailure:
    """One task that exhausted its retry budget (or failed fatally).

    ``points`` names the sweep-point indices the failed task covered (a chunk
    task covers several); the seam that knows the mapping fills it in before
    reporting.
    """

    site: str
    index: int
    error_type: str
    message: str
    attempts: int
    timed_out: bool = False
    points: tuple = ()

    def as_dict(self) -> dict:
        return {
            "site": self.site,
            "index": self.index,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "timed_out": self.timed_out,
            "points": list(self.points),
        }


class SweepFailureError(RuntimeError):
    """Raised instead of recording a :class:`SweepFailure` under ``strict``."""

    def __init__(self, failure: SweepFailure) -> None:
        super().__init__(
            f"{failure.site} task {failure.index} failed after "
            f"{failure.attempts} attempt(s): {failure.error_type}: {failure.message}"
        )
        self.failure = failure


_FAILURES: contextvars.ContextVar[list | None] = contextvars.ContextVar(
    "repro_runtime_sweep_failures", default=None
)


@contextlib.contextmanager
def collect_failures():
    """Scope an ambient failure sink; yields the list failures append to."""
    sink: list[SweepFailure] = []
    token = _FAILURES.set(sink)
    try:
        yield sink
    finally:
        _FAILURES.reset(token)


def report_failure(failure: SweepFailure) -> None:
    """Count a failure and deliver it to the innermost ambient sink (if any)."""
    current_registry().count("resilience.task_failures")
    sink = _FAILURES.get()
    if sink is not None:
        sink.append(failure)


# ---------------------------------------------------------------------- #
# The resilient pool
# ---------------------------------------------------------------------- #
@dataclass
class _Task:
    """Parent-side state of one submitted payload."""

    tag: object
    worker: object
    job: object
    site: str
    index: int
    attempt: int = 0
    deadline: float | None = None


class ResilientPool:
    """Retrying, deadline-enforcing executor over pure task payloads.

    ``submit``/``poll`` expose the streaming interface the pipelined
    scheduler needs; :meth:`run` is the ordered batch helper the chunk and
    trajectory seams use.  Outcomes are either the worker's return value or
    a :class:`SweepFailure`; under ``strict`` the first failure raises
    :class:`SweepFailureError` instead.

    ``jobs <= 1`` executes in-process (no pool is ever created), through the
    very same retry loop.  Deadlines are enforceable only under a pool --
    in-process execution cannot interrupt itself -- so ``task_timeout`` is
    ignored serially.  Parallel tasks that survive a pool recycle are
    resubmitted at their current attempt: payloads are pure, so re-running
    them is free of side effects and keeps ``jobs=N`` bitwise equal to
    serial.
    """

    def __init__(
        self,
        jobs: int,
        *,
        policy: RetryPolicy | None = None,
        task_timeout: float | None = None,
        strict: bool = False,
    ) -> None:
        self._jobs = max(1, int(jobs))
        self._policy = policy if policy is not None else DEFAULT_RETRY_POLICY
        self._timeout = task_timeout
        self._strict = strict
        self._pool: ProcessPoolExecutor | None = None
        self._respawns = 0
        self._degraded = False
        self._pending: dict[Future, _Task] = {}
        self._ready: list[tuple[object, object]] = []

    @property
    def degraded(self) -> bool:
        """True once repeated pool failures forced in-process execution."""
        return self._degraded

    @property
    def serial(self) -> bool:
        return self._jobs <= 1 or self._degraded

    # -- submission ----------------------------------------------------------

    def _check_cancelled(self) -> None:
        """Abort everything if the ambient cancellation token tripped.

        Pending outcomes are dropped and the worker pool is torn down with
        its in-flight futures cancelled -- a cancelled sweep must stop
        consuming CPU, not merely stop being waited for.  Does not count as
        a respawn: cancellation is a caller decision, not a pool failure.
        """
        token = current_cancel_token()
        if token is None or not token.cancelled:
            return
        self._pending.clear()
        self._ready.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        current_registry().count("resilience.cancelled")
        raise TaskCancelledError(token)

    def submit(self, worker, job, *, site: str, index: int, tag=None) -> None:
        """Queue one payload; its outcome arrives through :meth:`poll`."""
        self._check_cancelled()
        task = _Task(
            tag=tag if tag is not None else (site, index),
            worker=worker,
            job=job,
            site=site,
            index=index,
        )
        if self.serial:
            self._ready.append((task.tag, self._run_in_process(task)))
        else:
            self._submit_task(task)

    def _submit_task(self, task: _Task) -> None:
        registry = current_registry()
        plan = current_fault_plan()
        actions = (
            plan.actions_for(task.site, task.index, task.attempt)
            if plan is not None
            else ()
        )
        registry.count("resilience.attempts")
        if actions:
            registry.count("faults.injected", len(actions))
        while True:
            pool = self._ensure_pool()
            try:
                if actions:
                    future = pool.submit(
                        run_with_faults, actions, task.worker, task.job, True
                    )
                else:
                    future = pool.submit(task.worker, task.job)
            except BrokenProcessPool:
                # Broken before this task even entered it: recycle and retry
                # the submission (degradation falls back to in-process).
                self._recycle_pool()
                if self._degraded:
                    self._ready.append((task.tag, self._run_in_process(task)))
                    return
                continue
            if self._timeout is not None:
                task.deadline = time.monotonic() + self._timeout
            self._pending[future] = task
            return

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self._jobs,
                mp_context=_pool_mp_context(),
                initializer=_init_worker_env,
                initargs=(_worker_env_snapshot(),),
            )
            # Prime every worker before any deadline-bearing submission:
            # a deadline measures queue + run time, and must not be eaten
            # by worker startup (which can reach hundreds of ms right
            # after pool churn).  A pool too broken to run no-ops is left
            # for the real submission path, which recycles it.
            try:
                wait(
                    [self._pool.submit(_noop) for _ in range(self._jobs)],
                    timeout=60.0,
                )
            except BrokenProcessPool:
                pass
        return self._pool

    # -- in-process execution (serial mode and degraded mode) ----------------

    def _run_in_process(self, task: _Task):
        registry = current_registry()
        while True:
            self._check_cancelled()
            plan = current_fault_plan()
            actions = (
                plan.actions_for(task.site, task.index, task.attempt)
                if plan is not None
                else ()
            )
            registry.count("resilience.attempts")
            if actions:
                registry.count("faults.injected", len(actions))
            try:
                if actions:
                    return run_with_faults(actions, task.worker, task.job, False)
                return task.worker(task.job)
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as error:  # noqa: BLE001 - classified below
                failure = self._fail_or_retry(task, error)
                if failure is not None:
                    return failure

    # -- shared retry bookkeeping --------------------------------------------

    def _fail_or_retry(
        self, task: _Task, error: BaseException
    ) -> SweepFailure | None:
        """Either schedule another attempt (returns ``None``, after backing
        off) or mint the task's terminal :class:`SweepFailure`."""
        retryable = self._policy.is_retryable(error)
        if retryable and task.attempt + 1 < self._policy.max_attempts:
            task.attempt += 1
            task.deadline = None
            current_registry().count("resilience.retries")
            delay = self._policy.backoff_s(task.site, task.index, task.attempt)
            if delay > 0.0:
                time.sleep(delay)
            return None
        failure = SweepFailure(
            site=task.site,
            index=task.index,
            error_type=type(error).__name__,
            message=str(error),
            attempts=task.attempt + 1,
            timed_out=isinstance(error, TimeoutError),
        )
        if self._strict:
            raise SweepFailureError(failure) from error
        return failure

    # -- completion ----------------------------------------------------------

    def poll(self) -> list[tuple[object, object]]:
        """Drain ready ``(tag, outcome)`` pairs, blocking until at least one
        is available (or nothing is pending)."""
        self._check_cancelled()
        while not self._ready and self._pending:
            self._wait_once()
        drained, self._ready = self._ready, []
        return drained

    def _wait_once(self) -> None:
        self._check_cancelled()
        timeout = None
        if self._timeout is not None:
            deadlines = [
                task.deadline
                for task in self._pending.values()
                if task.deadline is not None
            ]
            if deadlines:
                timeout = max(0.0, min(deadlines) - time.monotonic())
        if current_cancel_token() is not None:
            # A token can trip from another thread mid-wait; bound the block
            # so cancellation is noticed promptly instead of after the next
            # task completes.
            timeout = min(timeout, 0.05) if timeout is not None else 0.05
        done, _ = wait(set(self._pending), timeout=timeout, return_when=FIRST_COMPLETED)

        broken = False
        orphans: list[_Task] = []
        for future in done:
            task = self._pending.pop(future)
            try:
                outcome = future.result()
            except BrokenProcessPool:
                broken = True
                orphans.append(task)
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as error:  # noqa: BLE001 - classified below
                failure = self._fail_or_retry(task, error)
                if failure is not None:
                    self._ready.append((task.tag, failure))
                elif broken or self._pool is None:
                    orphans.append(task)
                else:
                    self._submit_task(task)
            else:
                self._ready.append((task.tag, outcome))

        if broken:
            # The culprit is indistinguishable from its victims: every task
            # that was in flight counts one attempt against a BrokenProcessPool
            # (safe -- payloads are pure), then rides into the respawned pool.
            orphans.extend(self._pending.values())
            self._pending.clear()
            self._recycle_pool()
            for task in orphans:
                failure = self._fail_or_retry(task, BrokenProcessPool("worker died"))
                if failure is not None:
                    self._ready.append((task.tag, failure))
                elif self._degraded:
                    self._ready.append((task.tag, self._run_in_process(task)))
                else:
                    self._submit_task(task)
            return

        if self._timeout is not None and self._pending:
            now = time.monotonic()
            overdue = [
                task
                for task in self._pending.values()
                if task.deadline is not None and task.deadline <= now
            ]
            if overdue:
                # A running future cannot be cancelled, so enforcement means
                # recycling the whole pool; the punctual survivors resubmit at
                # their current attempt (they did nothing wrong).
                current_registry().count("resilience.timeouts", len(overdue))
                overdue_set = {id(task) for task in overdue}
                survivors = [
                    task
                    for task in self._pending.values()
                    if id(task) not in overdue_set
                ]
                self._pending.clear()
                self._recycle_pool()
                for task in overdue:
                    failure = self._fail_or_retry(
                        task,
                        TimeoutError(
                            f"{task.site} task {task.index} exceeded its "
                            f"{self._timeout:g}s deadline"
                        ),
                    )
                    if failure is not None:
                        self._ready.append((task.tag, failure))
                    elif self._degraded:
                        self._ready.append((task.tag, self._run_in_process(task)))
                    else:
                        self._submit_task(task)
                for task in survivors:
                    if self._degraded:
                        self._ready.append((task.tag, self._run_in_process(task)))
                    else:
                        self._submit_task(task)

    def _recycle_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self._respawns += 1
        registry = current_registry()
        registry.count("resilience.pool_respawns")
        if self._respawns > self._policy.max_pool_respawns and not self._degraded:
            self._degraded = True
            registry.count("resilience.degraded")

    # -- batch helper --------------------------------------------------------

    def run(self, worker, jobs_list, *, site: str, indices=None) -> list:
        """Run every payload and return outcomes in submission order."""
        jobs_list = list(jobs_list)
        indices = list(indices) if indices is not None else list(range(len(jobs_list)))
        if len(indices) != len(jobs_list):
            raise ValueError("indices must align with jobs_list")
        for position, (index, job) in enumerate(zip(indices, jobs_list)):
            self.submit(worker, job, site=site, index=index, tag=position)
        outcomes: dict[int, object] = {}
        while len(outcomes) < len(jobs_list):
            for tag, outcome in self.poll():
                outcomes[tag] = outcome
        return [outcomes[position] for position in range(len(jobs_list))]

    def shutdown(self, wait_: bool = True) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait_)
            self._pool = None

    def __enter__(self) -> "ResilientPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


# ---------------------------------------------------------------------- #
# Sweep checkpoints
# ---------------------------------------------------------------------- #
#: Identifies checkpoint files among arbitrary JSONL (ledger-style header).
CHECKPOINT_SCHEMA = "gprs-repro/sweep-checkpoint"

#: Bump on any backwards-incompatible entry change.
CHECKPOINT_SCHEMA_VERSION = 1


def payload_digest(payload: dict) -> str:
    """Content digest of one cached sweep-point payload (canonical JSON)."""
    rendering = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(rendering.encode("utf-8")).hexdigest()[:16]


class SweepCheckpoint:
    """JSONL journal of completed sweep points: ``{key, digest, site, index}``.

    The first line is a schema-versioned header (the run-ledger pattern);
    every later line records one completed point's cache key and payload
    digest.  :meth:`load` tolerates a missing file and a torn final line (an
    interrupted append), but refuses a future schema version outright --
    silently misreading a checkpoint would "resume" the wrong work.
    """

    def __init__(self, path, entries: dict | None = None) -> None:
        self.path = Path(path)
        self._entries: dict[str, str] = dict(entries or {})

    @classmethod
    def load(cls, path) -> "SweepCheckpoint":
        path = Path(path)
        entries: dict[str, str] = {}
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except FileNotFoundError:
            return cls(path)
        for number, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if number == len(lines) - 1:
                    continue  # torn final line from an interrupted append
                raise ValueError(f"{path}:{number + 1}: not JSON") from None
            if number == 0:
                if record.get("schema") != CHECKPOINT_SCHEMA:
                    raise ValueError(
                        f"{path}: not a {CHECKPOINT_SCHEMA} file "
                        f"(schema={record.get('schema')!r})"
                    )
                version = record.get("schema_version")
                if not isinstance(version, int) or version < 1:
                    raise ValueError(f"{path}: invalid schema_version {version!r}")
                if version > CHECKPOINT_SCHEMA_VERSION:
                    raise ValueError(
                        f"{path}: checkpoint schema_version {version} is newer "
                        f"than supported {CHECKPOINT_SCHEMA_VERSION}; refusing "
                        "to misread it"
                    )
                continue
            key = record.get("key")
            digest = record.get("digest")
            if isinstance(key, str) and isinstance(digest, str):
                entries[key] = digest
        return cls(path, entries)

    def __len__(self) -> int:
        return len(self._entries)

    def has(self, key: str) -> bool:
        return key in self._entries

    def matches(self, key: str, digest: str) -> bool:
        return self._entries.get(key) == digest

    def record(self, *, site: str, index: int, key: str, digest: str) -> None:
        """Journal one completed point (appended and flushed immediately)."""
        from repro.runtime.cache import CODE_VERSION

        new_file = not self.path.exists()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            if new_file:
                header = {
                    "schema": CHECKPOINT_SCHEMA,
                    "schema_version": CHECKPOINT_SCHEMA_VERSION,
                    "code_version": CODE_VERSION,
                }
                handle.write(json.dumps(header, sort_keys=True) + "\n")
            entry = {"key": key, "digest": digest, "site": site, "index": index}
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
        self._entries[key] = digest
        current_registry().count("resilience.checkpointed_points")


def checkpointed_get(cache, key, checkpoint: SweepCheckpoint | None):
    """Cache lookup verified against the checkpoint journal.

    A hit whose payload digest matches its checkpointed digest counts as a
    *resumed* point; a mismatch (someone corrupted or replaced the cached
    bytes since the checkpoint was written) demotes the hit to a miss so the
    point is re-solved rather than silently served wrong.
    """
    if cache is None or key is None:
        return None
    payload = cache.get(key)
    if payload is None:
        return None
    if checkpoint is not None and checkpoint.has(key):
        if checkpoint.matches(key, payload_digest(payload)):
            current_registry().count("resilience.resumed_points")
        else:
            current_registry().count("resilience.checkpoint_mismatches")
            return None
    return payload
