"""Declarative scenario specifications for the runtime subsystem.

A :class:`ScenarioSpec` is a frozen, JSON-serialisable description of one
complete workload: which Table 3 traffic model drives the GPRS users (plus
optional per-field overrides of the packet-session parameters), the cell and
radio configuration, the TCP threshold, the steady-state solver, the sweep
axis and the metrics of interest.  Specs are *declarative*: they contain no
behaviour beyond materialising :class:`~repro.core.parameters.GprsModelParameters`
for a given :class:`~repro.experiments.scale.ExperimentScale`, so they can be
stored, hashed, diffed and shipped to worker processes as plain dictionaries.

The companion helpers :func:`parameters_to_dict` / :func:`parameters_from_dict`
give the *effective* model parameters the same property; the result cache keys
on that effective form, so two scenarios that resolve to the same physics share
cache entries regardless of their names.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import TYPE_CHECKING

from repro.core.parameters import GprsModelParameters
from repro.traffic.presets import traffic_model
from repro.traffic.session import PacketSessionModel

if TYPE_CHECKING:  # imported lazily at runtime to keep runtime below experiments
    from repro.experiments.scale import ExperimentScale
    from repro.network.topology import CellTopology
    from repro.transient.schedule import WorkloadProfile

__all__ = [
    "DEFAULT_METRICS",
    "ScenarioSpec",
    "parameters_from_dict",
    "parameters_to_dict",
]

#: Metrics reported when a scenario does not name its own.
DEFAULT_METRICS: tuple[str, ...] = (
    "carried_data_traffic",
    "packet_loss_probability",
    "throughput_per_user_kbit_s",
)

#: Packet-session fields that a scenario may override on its traffic model.
_SESSION_OVERRIDE_FIELDS = frozenset(
    {
        "packet_calls_per_session",
        "reading_time_s",
        "packets_per_packet_call",
        "packet_interarrival_s",
    }
)


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one sweep workload.

    Parameters
    ----------
    name:
        Registry key, e.g. ``"figure12"`` or ``"heavy-gprs"``.
    description:
        One-line human-readable summary shown by ``gprs-repro list``.
    traffic_model:
        Table 3 traffic model number (1, 2 or 3) supplying the packet-session
        parameters and the default admission cap ``M``.
    traffic_overrides:
        Optional overrides of individual packet-session fields (e.g. a shorter
        ``reading_time_s`` for burstier sources); keys must be members of
        ``packet_calls_per_session``, ``reading_time_s``,
        ``packets_per_packet_call``, ``packet_interarrival_s``.
    gprs_fraction, reserved_pdch, number_of_channels, tcp_threshold,
    coding_scheme, block_error_rate:
        Cell and radio configuration, as in
        :class:`~repro.core.parameters.GprsModelParameters`.
    buffer_size:
        Paper-scale BSC buffer size ``K``; ``None`` means the Table 2 value of
        100.  The active :class:`~repro.experiments.scale.ExperimentScale`
        still caps it (see :meth:`parameters`).
    max_sessions:
        Paper-scale admission cap ``M``; ``None`` takes the traffic model's
        Table 3 value.  Also capped by the scale preset.
    solver:
        Steady-state solver passed to the analytical model.
    arrival_rates:
        Explicit sweep axis in calls/s; ``None`` uses the scale preset's axis.
    metrics:
        Metrics highlighted by reports for this scenario (the cache always
        stores the full measure set).
    seed:
        Base seed from which deterministic per-point seeds are derived (used
        by simulation-backed runs; recorded for analytical runs so that cache
        entries stay stable if a scenario later gains a simulation stage).
    tags:
        Free-form labels; the registry uses ``"paper"``, ``"extension"`` and
        ``"network"``.
    network:
        Optional :class:`~repro.network.topology.CellTopology`.  When set the
        scenario describes a whole multi-cell network: every sweep point is a
        joint :class:`~repro.network.model.NetworkModel` solve (the scenario's
        cell configuration becomes the *base* cell, per-cell overrides live
        in the topology) instead of a single-cell solve.
    transient:
        Optional :class:`~repro.transient.schedule.WorkloadProfile`.  When
        set the scenario describes a non-stationary workload: every sweep
        point is a full :class:`~repro.transient.model.TransientModel`
        trajectory at that base arrival rate (the scenario's cell
        configuration is the unperturbed base; per-segment multipliers and
        overrides live in the profile).  Mutually exclusive with ``network``.
    """

    name: str
    description: str
    traffic_model: int = 3
    traffic_overrides: dict[str, float] = field(default_factory=dict)
    gprs_fraction: float = 0.05
    reserved_pdch: int = 1
    number_of_channels: int = 20
    buffer_size: int | None = None
    max_sessions: int | None = None
    tcp_threshold: float = 0.7
    coding_scheme: str = "CS-2"
    block_error_rate: float = 0.0
    solver: str = "auto"
    arrival_rates: tuple[float, ...] | None = None
    metrics: tuple[str, ...] = DEFAULT_METRICS
    seed: int = 20020527
    tags: tuple[str, ...] = ()
    network: "CellTopology | None" = None
    transient: "WorkloadProfile | None" = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a non-empty name")
        if self.traffic_model not in (1, 2, 3):
            raise ValueError("traffic_model must be 1, 2 or 3 (Table 3)")
        unknown = set(self.traffic_overrides) - _SESSION_OVERRIDE_FIELDS
        if unknown:
            raise ValueError(
                f"unknown traffic override(s) {sorted(unknown)}; allowed: "
                f"{sorted(_SESSION_OVERRIDE_FIELDS)}"
            )
        if self.arrival_rates is not None and not self.arrival_rates:
            raise ValueError("arrival_rates must be None or non-empty")
        if not self.metrics:
            raise ValueError("at least one metric is required")
        if self.network is not None:
            from repro.network.topology import CellTopology

            if not isinstance(self.network, CellTopology):
                raise ValueError("network must be a CellTopology (or None)")
        if self.transient is not None:
            from repro.transient.schedule import WorkloadProfile

            if not isinstance(self.transient, WorkloadProfile):
                raise ValueError("transient must be a WorkloadProfile (or None)")
            if self.network is not None:
                raise ValueError(
                    "a scenario cannot be both transient and network-wide; "
                    "model one cell's schedule or one stationary topology"
                )

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Return the spec as a plain, JSON-serialisable dictionary."""
        return {
            "name": self.name,
            "description": self.description,
            "traffic_model": self.traffic_model,
            "traffic_overrides": dict(self.traffic_overrides),
            "gprs_fraction": self.gprs_fraction,
            "reserved_pdch": self.reserved_pdch,
            "number_of_channels": self.number_of_channels,
            "buffer_size": self.buffer_size,
            "max_sessions": self.max_sessions,
            "tcp_threshold": self.tcp_threshold,
            "coding_scheme": self.coding_scheme,
            "block_error_rate": self.block_error_rate,
            "solver": self.solver,
            "arrival_rates": (
                None if self.arrival_rates is None else list(self.arrival_rates)
            ),
            "metrics": list(self.metrics),
            "seed": self.seed,
            "tags": list(self.tags),
            "network": None if self.network is None else self.network.to_dict(),
            "transient": None if self.transient is None else self.transient.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (tuples restored)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown scenario field(s) {sorted(unknown)}")
        values = dict(data)
        if values.get("arrival_rates") is not None:
            values["arrival_rates"] = tuple(float(r) for r in values["arrival_rates"])
        if "metrics" in values:
            values["metrics"] = tuple(values["metrics"])
        if "tags" in values:
            values["tags"] = tuple(values["tags"])
        if "traffic_overrides" in values:
            values["traffic_overrides"] = dict(values["traffic_overrides"])
        if values.get("network") is not None and not hasattr(
            values["network"], "to_dict"
        ):
            from repro.network.topology import CellTopology

            values["network"] = CellTopology.from_dict(values["network"])
        if values.get("transient") is not None and not hasattr(
            values["transient"], "to_dict"
        ):
            from repro.transient.schedule import WorkloadProfile

            values["transient"] = WorkloadProfile.from_dict(values["transient"])
        return cls(**values)

    def replace(self, **overrides) -> "ScenarioSpec":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------ #
    # Materialisation
    # ------------------------------------------------------------------ #
    def parameters(self, scale: ExperimentScale) -> GprsModelParameters:
        """Materialise the effective model parameters under ``scale``.

        The scale preset caps the paper-scale buffer and session limits the
        same way the figure functions do, so ``smoke``/``default``/``paper``
        runs of the same scenario stay comparable.
        """
        preset = traffic_model(self.traffic_model)
        session: PacketSessionModel = preset.session
        if self.traffic_overrides:
            session = replace(session, **self.traffic_overrides)
        paper_buffer = self.buffer_size if self.buffer_size is not None else 100
        paper_sessions = (
            self.max_sessions
            if self.max_sessions is not None
            else preset.max_active_sessions
        )
        return GprsModelParameters(
            total_call_arrival_rate=self.sweep_rates(scale)[0],
            gprs_fraction=self.gprs_fraction,
            number_of_channels=self.number_of_channels,
            reserved_pdch=self.reserved_pdch,
            buffer_size=scale.effective_buffer_size(paper_buffer),
            max_gprs_sessions=scale.effective_max_sessions(paper_sessions),
            traffic=session,
            coding_scheme=self.coding_scheme,
            tcp_threshold=self.tcp_threshold,
            block_error_rate=self.block_error_rate,
        )

    def sweep_rates(self, scale: ExperimentScale) -> tuple[float, ...]:
        """Return the sweep axis: the spec's own rates or the scale preset's."""
        return self.arrival_rates if self.arrival_rates is not None else scale.arrival_rates

    def point_seed(self, index: int) -> int:
        """Deterministic seed of sweep point ``index`` (stable across runs)."""
        return (self.seed * 1_000_003 + index) % 2**31


# ---------------------------------------------------------------------- #
# Effective-parameter serialisation (cache keys and worker processes)
# ---------------------------------------------------------------------- #
def parameters_to_dict(params: GprsModelParameters) -> dict:
    """Return model parameters as a plain dictionary (nested traffic model)."""
    traffic = params.traffic
    return {
        "total_call_arrival_rate": params.total_call_arrival_rate,
        "gprs_fraction": params.gprs_fraction,
        "number_of_channels": params.number_of_channels,
        "reserved_pdch": params.reserved_pdch,
        "buffer_size": params.buffer_size,
        "max_gprs_sessions": params.max_gprs_sessions,
        "coding_scheme": params.coding_scheme,
        "mean_gsm_call_duration_s": params.mean_gsm_call_duration_s,
        "mean_gsm_dwell_time_s": params.mean_gsm_dwell_time_s,
        "mean_gprs_dwell_time_s": params.mean_gprs_dwell_time_s,
        "tcp_threshold": params.tcp_threshold,
        "block_error_rate": params.block_error_rate,
        "traffic": {
            "packet_calls_per_session": traffic.packet_calls_per_session,
            "reading_time_s": traffic.reading_time_s,
            "packets_per_packet_call": traffic.packets_per_packet_call,
            "packet_interarrival_s": traffic.packet_interarrival_s,
            "packet_size_bytes": traffic.packet_size_bytes,
            "name": traffic.name,
        },
    }


def parameters_from_dict(data: dict) -> GprsModelParameters:
    """Rebuild model parameters from :func:`parameters_to_dict` output."""
    values = dict(data)
    values["traffic"] = PacketSessionModel(**values["traffic"])
    return GprsModelParameters(**values)
