"""Long-lived scenario service: warm templates, store tier and worker pool.

``gprs-repro serve`` keeps a single :class:`ScenarioService` process alive
so that everything a cold CLI invocation rebuilds per run stays hot across
requests:

- the **artifact store memory tier** (propagator replay checkpoints,
  generator templates, coarse LU operand matrices) -- a repeated request
  replays instead of resolving;
- the **result cache**, answering repeat requests without touching a
  solver at all;
- per solver thread, a persistent
  :class:`~repro.runtime.resilience.ResilientPool` whose worker processes
  (and their per-process scaffold caches) survive across network-sweep
  requests.

The HTTP layer is stdlib only (:class:`http.server.ThreadingHTTPServer`),
speaks JSON, and exposes::

    GET  /healthz    liveness probe
    GET  /stats      request counters, admission state, store/cache, metrics
    POST /run        one scenario request  -> one response
    POST /batch      {"requests": [...]}   -> {"responses": [...]}
    POST /shutdown   acknowledge, drain in-flight work, then stop

Requests flow through an :class:`~repro.service.admission.AdmissionQueue`:
a bounded queue with ``workers`` solver threads, request coalescing on the
canonical request key, backpressure (HTTP 429 + ``Retry-After``),
per-request deadlines (HTTP 504), graceful drain (HTTP 503 for late
arrivals) and an optional crash-consistent request journal that replays
admitted-but-unanswered work on restart.  Each solve runs against its own
fresh metrics registry which is folded into the process-global one
afterwards, so per-request metric deltas stay exact under concurrency and
coalesced followers report an *empty* delta -- summing per-response metrics
never double-counts a shared solve.  Served answers remain bitwise
identical to the cold CLI path after provenance stripping -- see
:mod:`repro.service.protocol`.
"""

from __future__ import annotations

import json
import math
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.admission import (
    AdmissionQueue,
    Draining,
    Overloaded,
    RequestJournal,
    RequestTimeout,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    canonical_text,
    normalise_request,
)

__all__ = ["ScenarioService", "create_server", "serve"]


class ScenarioService:
    """Dispatches scenario requests against long-lived warm state.

    Parameters mirror the CLI runtime flags: ``jobs`` sizes the persistent
    worker pool of each solver thread (1 = serial, no pool), ``cache`` is a
    :class:`~repro.runtime.cache.ResultCache` or ``None``, ``store`` an
    :class:`~repro.store.ArtifactStore` or ``None`` (the serve CLI defaults
    the store ON -- it is the whole point of the warm service).

    The admission knobs: ``workers`` solver threads consume a queue of at
    most ``max_queue`` waiting entries (``max_inflight`` caps queued plus
    running; default ``workers + max_queue``); ``request_timeout`` bounds
    each waiter (and is wired through the executor's ``task_timeout`` seam
    so pool tasks cannot outlive the request that wants them);
    ``drain_timeout`` bounds the graceful-shutdown wait; ``journal_path``
    enables the crash-consistent request journal.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache=None,
        store=None,
        workers: int = 1,
        max_queue: int = 32,
        max_inflight: int | None = None,
        request_timeout: float | None = None,
        drain_timeout: float = 30.0,
        journal_path=None,
    ) -> None:
        self._jobs = max(1, int(jobs))
        self._cache = cache
        self._store = store
        self._request_timeout = (
            None if request_timeout is None else float(request_timeout)
        )
        self._drain_timeout = float(drain_timeout)
        self._started = time.monotonic()
        self._errors_lock = threading.Lock()
        self._bad_requests = 0
        self._local = threading.local()
        self._pools: list = []
        self._pools_lock = threading.Lock()
        journal = None if journal_path is None else RequestJournal(journal_path)
        self._admission = AdmissionQueue(
            self._solve_request,
            workers=workers,
            max_queue=max_queue,
            max_inflight=max_inflight,
            journal=journal,
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Start the admission workers and replay the journal (idempotent)."""
        self._admission.start()

    def drain(self, timeout: float | None = None) -> dict:
        """Stop admission and finish in-flight work, bounded by ``timeout``."""
        return self._admission.drain(
            self._drain_timeout if timeout is None else timeout
        )

    def close(self) -> None:
        """Stop the admission workers and worker pools (idempotent)."""
        self._admission.close()
        with self._pools_lock:
            pools, self._pools = self._pools, []
        for pool in pools:
            pool.shutdown()

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #
    def admit(self, body: dict) -> tuple[int, dict]:
        """Answer one ``/run`` body; returns ``(http_status, response)``.

        Maps admission outcomes onto HTTP semantics: 400 for malformed
        requests (checked *before* spending an admission slot), 429 with a
        ``retry_after_s`` hint when over budget, 503 while draining, 504
        when the per-request deadline expires, and the solve's own verdict
        otherwise.
        """
        from repro.runtime import scenario

        self.start()
        try:
            request = normalise_request(body)
            scenario(request["scenario"])
        except (KeyError, ValueError) as error:
            with self._errors_lock:
                self._bad_requests += 1
            return 400, {
                "ok": False,
                "protocol": PROTOCOL_VERSION,
                "error": str(error),
            }
        try:
            entry, coalesced = self._admission.submit(request)
        except Draining as error:
            return 503, {
                "ok": False,
                "protocol": PROTOCOL_VERSION,
                "error": str(error),
                "status": 503,
            }
        except Overloaded as error:
            return 429, {
                "ok": False,
                "protocol": PROTOCOL_VERSION,
                "error": str(error),
                "retry_after_s": error.retry_after_s,
                "status": 429,
            }
        try:
            response = self._admission.wait(entry, self._request_timeout)
        except RequestTimeout as error:
            return 504, {
                "ok": False,
                "protocol": PROTOCOL_VERSION,
                "error": str(error),
                "timed_out": True,
                "elapsed_s": error.elapsed_s,
                "status": 504,
            }
        if coalesced:
            # Followers share the leader's bytes but report an empty metrics
            # delta: the solve's work must be attributed exactly once.
            response = dict(response, metrics={}, coalesced=True)
        status = 200 if response.get("ok") else int(response.get("status", 400))
        return status, response

    def handle(self, request: dict) -> dict:
        """Answer one ``/run`` request; raises ``ValueError`` on bad input."""
        status, response = self.admit(request)
        if status == 400 and not response.get("ok"):
            raise ValueError(response.get("error", "bad request"))
        return response

    def safe_handle(self, request: dict) -> dict:
        """:meth:`admit` that renders every outcome as a response dict."""
        return self.admit(request)[1]

    # ------------------------------------------------------------------ #
    # Solving (runs on admission worker threads)
    # ------------------------------------------------------------------ #
    def _solve_request(self, request: dict) -> dict:
        """Solve one admitted request under its own metrics registry.

        Raises :class:`~repro.runtime.resilience.TaskCancelledError` through
        (the admission queue abandons the entry for journal replay); every
        other failure renders as an error response.
        """
        from repro.obs.metrics import MetricsRegistry, activate_registry, global_registry
        from repro.runtime import TaskCancelledError, scenario
        from repro.store import store_context

        registry = MetricsRegistry()
        start = time.perf_counter()
        try:
            with activate_registry(registry):
                spec = scenario(request["scenario"])
                with store_context(self._store):
                    result, output = self._dispatch(spec, request)
        except TaskCancelledError:
            raise
        except ValueError as error:
            return {"ok": False, "protocol": PROTOCOL_VERSION, "error": str(error)}
        except Exception as error:  # noqa: BLE001 -- a request must not kill a worker
            return {
                "ok": False,
                "protocol": PROTOCOL_VERSION,
                "error": f"{type(error).__name__}: {error}",
            }
        finally:
            # Per-request metrics fold into the process totals exactly once,
            # so N concurrent requests account like N serial ones.
            global_registry().merge(registry.snapshot())
        elapsed = time.perf_counter() - start

        payload = result.as_dict()
        return {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "command": request["command"],
            "scenario": request["scenario"],
            "preset": request["preset"],
            "cache": dict(payload.get("cache", {})),
            "failures": len(result.failures),
            "elapsed_s": elapsed,
            "metrics": registry.delta_since({}),
            "payload": payload,
            "canonical": canonical_text(payload),
            "output": output,
        }

    def _thread_pool(self):
        """This solver thread's persistent pool (``jobs > 1`` only)."""
        if self._jobs <= 1:
            return None
        pool = getattr(self._local, "pool", None)
        if pool is None:
            from repro.runtime.resilience import ResilientPool

            pool = ResilientPool(self._jobs)
            self._local.pool = pool
            with self._pools_lock:
                self._pools.append(pool)
        return pool

    def _dispatch(self, spec, request: dict):
        """Run one request; returns ``(result, formatted_text)``."""
        from repro.experiments.reporting import (
            format_network_result,
            format_scenario_result,
            format_transient_result,
        )
        from repro.experiments.scale import ExperimentScale
        from repro.network.sweep import run_network_sweep
        from repro.runtime import run_sweep
        from repro.transient.sweep import run_transient_sweep

        command = request["command"]
        scale = ExperimentScale.from_name(request["preset"])
        cache = self._cache if request["cache"] else None
        timeout = self._request_timeout
        if command == "network":
            if spec.network is None:
                raise ValueError(f"scenario {spec.name!r} is not a network scenario")
            result = run_network_sweep(
                spec,
                scale,
                jobs=self._jobs,
                cache=cache,
                warm=True,
                pipelined=request["pipelined"],
                pool=self._thread_pool(),
                task_timeout=timeout,
            )
            return result, format_network_result(result)
        if command == "transient":
            if spec.transient is None:
                raise ValueError(f"scenario {spec.name!r} is not transient")
            rate = request["rate"]
            result = run_transient_sweep(
                spec,
                scale,
                jobs=self._jobs,
                cache=cache,
                warm=True,
                rates=None if rate is None else (rate,),
                task_timeout=timeout,
            )
            return result, format_transient_result(result)
        result = run_sweep(
            spec,
            scale,
            jobs=self._jobs,
            cache=cache,
            warm=True,
            task_timeout=timeout,
        )
        return result, format_scenario_result(result)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Service state for ``GET /stats`` (admission, tiers, metrics)."""
        from repro.obs.metrics import current_registry

        store = None
        if self._store is not None:
            store = {
                "dir": str(self._store.root),
                "entries": len(self._store),
                "disk_bytes": self._store.disk_bytes,
                **self._store.stats.as_dict(),
            }
        cache = None
        if self._cache is not None:
            cache = {"dir": str(self._cache.root), **self._cache.stats.as_dict()}
        admission = self._admission.stats()
        requests = (
            admission["accepted"] + admission["coalesced"] + admission["rejected"]
        )
        return {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "requests": requests,
            "errors": self._bad_requests + admission["errors"],
            "jobs": self._jobs,
            "uptime_s": time.monotonic() - self._started,
            "admission": admission,
            "store": store,
            "cache": cache,
            "metrics": current_registry().snapshot(),
        }


class _Handler(BaseHTTPRequestHandler):
    """JSON-over-HTTP front of one :class:`ScenarioService`."""

    service: ScenarioService  # bound by create_server()
    server_version = "gprs-repro-serve"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 -- stdlib signature
        pass  # request logging is the metrics registry's job

    def _send(self, code: int, payload: dict, headers: dict | None = None) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length > 0 else b""
        if not raw:
            return {}
        parsed = json.loads(raw.decode("utf-8"))
        if not isinstance(parsed, dict):
            raise ValueError("request body must be a JSON object")
        return parsed

    def _send_admitted(self, status: int, response: dict) -> None:
        headers = None
        if status == 429:
            headers = {
                "Retry-After": str(
                    int(math.ceil(response.get("retry_after_s", 1.0)))
                )
            }
        self._send(status, response, headers)

    def do_GET(self) -> None:  # noqa: N802 -- stdlib naming
        if self.path in ("/healthz", "/health"):
            self._send(
                200, {"ok": True, "status": "ready", "protocol": PROTOCOL_VERSION}
            )
        elif self.path == "/stats":
            self._send(200, self.service.stats())
        else:
            self._send(404, {"ok": False, "error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 -- stdlib naming
        try:
            body = self._read_json()
        except (ValueError, json.JSONDecodeError):
            self._send(400, {"ok": False, "error": "invalid JSON request body"})
            return
        if self.path == "/run":
            status, response = self.service.admit(body)
            self._send_admitted(status, response)
        elif self.path == "/batch":
            requests = body.get("requests")
            if not isinstance(requests, list):
                self._send(
                    400, {"ok": False, "error": "batch body needs a 'requests' list"}
                )
                return
            responses = [self.service.safe_handle(item) for item in requests]
            self._send(
                200,
                {
                    "ok": all(item["ok"] for item in responses),
                    "protocol": PROTOCOL_VERSION,
                    "responses": responses,
                },
            )
        elif self.path == "/shutdown":
            admission = self.service.stats()["admission"]
            self._send(
                200,
                {
                    "ok": True,
                    "stopping": True,
                    "draining": admission["queued"] + admission["running"],
                },
            )
            # Respond first, then drain, then stop: shutdown() blocks until
            # the serve loop exits, so both must run off this handler thread
            # -- and the drain must finish in-flight solves *before* the
            # server (and its pools) are torn down under them.
            threading.Thread(
                target=_drain_then_shutdown,
                args=(self.service, self.server),
                daemon=True,
            ).start()
        else:
            self._send(404, {"ok": False, "error": f"unknown path {self.path!r}"})


def _drain_then_shutdown(service: ScenarioService, server) -> None:
    """Graceful-stop sequence shared by ``POST /shutdown`` and SIGTERM."""
    try:
        service.drain()
    finally:
        server.shutdown()


def create_server(
    service: ScenarioService, host: str = "127.0.0.1", port: int = 8754
) -> ThreadingHTTPServer:
    """Bind a threading HTTP server for ``service`` (port 0 = ephemeral)."""
    service.start()
    handler = type("BoundHandler", (_Handler,), {"service": service})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def serve(
    service: ScenarioService, host: str = "127.0.0.1", port: int = 8754
) -> int:
    """Run the service until ``POST /shutdown``, SIGTERM or SIGINT.

    SIGTERM triggers the same graceful drain as ``POST /shutdown``: stop
    admitting, finish in-flight solves bounded by the service's drain
    timeout, journal whatever could not finish, then exit 0.
    """
    server = create_server(service, host, port)
    bound_host, bound_port = server.server_address[:2]
    print(
        f"gprs-repro serve: listening on http://{bound_host}:{bound_port} "
        f"(jobs={service._jobs}, store="
        f"{'on' if service._store is not None else 'off'}, cache="
        f"{'on' if service._cache is not None else 'off'})",
        file=sys.stderr,
        flush=True,
    )
    _install_sigterm_handler(service, server)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        service.drain()
    finally:
        server.server_close()
        service.close()
    return 0


def _install_sigterm_handler(service: ScenarioService, server) -> None:
    """Route SIGTERM into the graceful drain (main thread only; no-op else)."""
    import signal

    if threading.current_thread() is not threading.main_thread():
        return

    def _on_sigterm(signum, frame):  # noqa: ARG001 -- stdlib signature
        # Signal handlers must not block: drain on a helper thread.
        threading.Thread(
            target=_drain_then_shutdown, args=(service, server), daemon=True
        ).start()

    signal.signal(signal.SIGTERM, _on_sigterm)
