"""Long-lived scenario service: warm templates, store tier and worker pool.

``gprs-repro serve`` keeps a single :class:`ScenarioService` process alive
so that everything a cold CLI invocation rebuilds per run stays hot across
requests:

- the **artifact store memory tier** (propagator replay checkpoints,
  generator templates, coarse LU operand matrices) -- a repeated request
  replays instead of resolving;
- the **result cache**, answering repeat requests without touching a
  solver at all;
- a persistent :class:`~repro.runtime.resilience.ResilientPool` whose
  worker processes (and their per-process scaffold caches) survive across
  network-sweep requests.

The HTTP layer is stdlib only (:class:`http.server.ThreadingHTTPServer`),
speaks JSON, and exposes::

    GET  /healthz    liveness probe
    GET  /stats      request counters, store/cache state, metrics snapshot
    POST /run        one scenario request  -> one response
    POST /batch      {"requests": [...]}   -> {"responses": [...]}
    POST /shutdown   acknowledge, then stop the server

Solves are serialised under one lock: the service exists to keep state
warm, not to multiplex CPU-bound sweeps, and serialising keeps the
warm-tier bookkeeping (metrics deltas per request) exact.  Served answers
are bitwise identical to the cold CLI path after provenance stripping --
see :mod:`repro.service.protocol`.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.protocol import (
    PROTOCOL_VERSION,
    canonical_text,
    normalise_request,
)

__all__ = ["ScenarioService", "create_server", "serve"]


class ScenarioService:
    """Dispatches scenario requests against long-lived warm state.

    Parameters mirror the CLI runtime flags: ``jobs`` sizes the persistent
    worker pool (1 = serial, no pool), ``cache`` is a
    :class:`~repro.runtime.cache.ResultCache` or ``None``, ``store`` an
    :class:`~repro.store.ArtifactStore` or ``None`` (the serve CLI defaults
    the store ON -- it is the whole point of the warm service).
    """

    def __init__(self, *, jobs: int = 1, cache=None, store=None) -> None:
        self._jobs = max(1, int(jobs))
        self._cache = cache
        self._store = store
        self._lock = threading.Lock()
        self._pool = None
        self._requests = 0
        self._errors = 0
        self._started = time.monotonic()
        if self._jobs > 1:
            from repro.runtime.resilience import ResilientPool

            self._pool = ResilientPool(self._jobs)

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def handle(self, request: dict) -> dict:
        """Answer one ``/run`` request; raises ``ValueError`` on bad input."""
        from repro.obs.metrics import current_registry
        from repro.runtime import scenario
        from repro.store import store_context

        request = normalise_request(request)
        try:
            spec = scenario(request["scenario"])
        except (KeyError, ValueError) as error:
            raise ValueError(str(error)) from error

        registry = current_registry()
        start = time.perf_counter()
        with self._lock:
            self._requests += 1
            baseline = registry.snapshot()
            with store_context(self._store):
                result, output = self._dispatch(spec, request)
            metrics = registry.delta_since(baseline)
        elapsed = time.perf_counter() - start

        payload = result.as_dict()
        return {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "command": request["command"],
            "scenario": request["scenario"],
            "preset": request["preset"],
            "cache": dict(payload.get("cache", {})),
            "failures": len(result.failures),
            "elapsed_s": elapsed,
            "metrics": metrics,
            "payload": payload,
            "canonical": canonical_text(payload),
            "output": output,
        }

    def _dispatch(self, spec, request: dict):
        """Run one request; returns ``(result, formatted_text)``."""
        from repro.experiments.reporting import (
            format_network_result,
            format_scenario_result,
            format_transient_result,
        )
        from repro.experiments.scale import ExperimentScale
        from repro.network.sweep import run_network_sweep
        from repro.runtime import run_sweep
        from repro.transient.sweep import run_transient_sweep

        command = request["command"]
        scale = ExperimentScale.from_name(request["preset"])
        cache = self._cache if request["cache"] else None
        if command == "network":
            if spec.network is None:
                raise ValueError(f"scenario {spec.name!r} is not a network scenario")
            result = run_network_sweep(
                spec,
                scale,
                jobs=self._jobs,
                cache=cache,
                warm=True,
                pipelined=request["pipelined"],
                pool=self._pool,
            )
            return result, format_network_result(result)
        if command == "transient":
            if spec.transient is None:
                raise ValueError(f"scenario {spec.name!r} is not transient")
            rate = request["rate"]
            result = run_transient_sweep(
                spec,
                scale,
                jobs=self._jobs,
                cache=cache,
                warm=True,
                rates=None if rate is None else (rate,),
            )
            return result, format_transient_result(result)
        result = run_sweep(spec, scale, jobs=self._jobs, cache=cache, warm=True)
        return result, format_scenario_result(result)

    def safe_handle(self, request: dict) -> dict:
        """:meth:`handle` that renders failures as error responses."""
        try:
            return self.handle(request)
        except ValueError as error:
            self._errors += 1
            return {"ok": False, "protocol": PROTOCOL_VERSION, "error": str(error)}
        except Exception as error:  # noqa: BLE001 -- a request must not kill the server
            self._errors += 1
            return {
                "ok": False,
                "protocol": PROTOCOL_VERSION,
                "error": f"{type(error).__name__}: {error}",
            }

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Service state for ``GET /stats`` (store/cache tiers, metrics)."""
        from repro.obs.metrics import current_registry

        store = None
        if self._store is not None:
            store = {
                "dir": str(self._store.root),
                "entries": len(self._store),
                "disk_bytes": self._store.disk_bytes,
                **self._store.stats.as_dict(),
            }
        cache = None
        if self._cache is not None:
            cache = {"dir": str(self._cache.root), **self._cache.stats.as_dict()}
        return {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "requests": self._requests,
            "errors": self._errors,
            "jobs": self._jobs,
            "uptime_s": time.monotonic() - self._started,
            "store": store,
            "cache": cache,
            "metrics": current_registry().snapshot(),
        }

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


class _Handler(BaseHTTPRequestHandler):
    """JSON-over-HTTP front of one :class:`ScenarioService`."""

    service: ScenarioService  # bound by create_server()
    server_version = "gprs-repro-serve"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 -- stdlib signature
        pass  # request logging is the metrics registry's job

    def _send(self, code: int, payload: dict) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length > 0 else b""
        if not raw:
            return {}
        parsed = json.loads(raw.decode("utf-8"))
        if not isinstance(parsed, dict):
            raise ValueError("request body must be a JSON object")
        return parsed

    def do_GET(self) -> None:  # noqa: N802 -- stdlib naming
        if self.path in ("/healthz", "/health"):
            self._send(
                200, {"ok": True, "status": "ready", "protocol": PROTOCOL_VERSION}
            )
        elif self.path == "/stats":
            self._send(200, self.service.stats())
        else:
            self._send(404, {"ok": False, "error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 -- stdlib naming
        try:
            body = self._read_json()
        except (ValueError, json.JSONDecodeError):
            self._send(400, {"ok": False, "error": "invalid JSON request body"})
            return
        if self.path == "/run":
            response = self.service.safe_handle(body)
            self._send(200 if response["ok"] else 400, response)
        elif self.path == "/batch":
            requests = body.get("requests")
            if not isinstance(requests, list):
                self._send(
                    400, {"ok": False, "error": "batch body needs a 'requests' list"}
                )
                return
            responses = [self.service.safe_handle(item) for item in requests]
            self._send(
                200,
                {
                    "ok": all(item["ok"] for item in responses),
                    "protocol": PROTOCOL_VERSION,
                    "responses": responses,
                },
            )
        elif self.path == "/shutdown":
            self._send(200, {"ok": True, "stopping": True})
            # Respond first, then stop: shutdown() blocks until the serve
            # loop exits, so it must run outside this handler thread.
            threading.Thread(target=self.server.shutdown, daemon=True).start()
        else:
            self._send(404, {"ok": False, "error": f"unknown path {self.path!r}"})


def create_server(
    service: ScenarioService, host: str = "127.0.0.1", port: int = 8754
) -> ThreadingHTTPServer:
    """Bind a threading HTTP server for ``service`` (port 0 = ephemeral)."""
    handler = type("BoundHandler", (_Handler,), {"service": service})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def serve(
    service: ScenarioService, host: str = "127.0.0.1", port: int = 8754
) -> int:
    """Run the service until ``POST /shutdown`` or SIGINT; returns exit code."""
    server = create_server(service, host, port)
    bound_host, bound_port = server.server_address[:2]
    print(
        f"gprs-repro serve: listening on http://{bound_host}:{bound_port} "
        f"(jobs={service._jobs}, store="
        f"{'on' if service._store is not None else 'off'}, cache="
        f"{'on' if service._cache is not None else 'off'})",
        file=sys.stderr,
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
    return 0
