"""Warm scenario service: a long-lived process answering scenario requests.

The service (``gprs-repro serve``) keeps the expensive per-process state of
a scenario solve -- generator templates, the artifact store's memory tier,
the result cache and persistent worker pools -- alive across requests, so
repeat and near-repeat requests replay instead of resolving.  Requests pass
through a hardened admission layer (:mod:`repro.service.admission`):
bounded concurrency, request coalescing, backpressure, per-request
deadlines, graceful drain and a crash-consistent request journal.  The
client (``gprs-repro client``) and protocol helpers live here too.

Served answers are bitwise identical to the cold CLI path after stripping
run provenance; :func:`~repro.service.protocol.canonical_text` defines
exactly that comparison.
"""

from repro.service.admission import (
    AdmissionQueue,
    Draining,
    Overloaded,
    RequestJournal,
    RequestTimeout,
)
from repro.service.client import DEFAULT_URL, ServiceClient, ServiceError
from repro.service.protocol import (
    PROTOCOL_VERSION,
    canonical_payload,
    canonical_text,
    normalise_request,
    request_key,
)
from repro.service.server import ScenarioService, create_server, serve

__all__ = [
    "AdmissionQueue",
    "DEFAULT_URL",
    "Draining",
    "Overloaded",
    "PROTOCOL_VERSION",
    "RequestJournal",
    "RequestTimeout",
    "ScenarioService",
    "ServiceClient",
    "ServiceError",
    "canonical_payload",
    "canonical_text",
    "create_server",
    "normalise_request",
    "request_key",
    "serve",
]
