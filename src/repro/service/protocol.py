"""Request/response protocol of the warm scenario service.

The service answers scenario requests with the very same payloads the CLI
prints under ``--json`` -- but a served answer may come from the result
cache or recompute through the warm artifact store, while the comparison
baseline is a cold CLI run.  Provenance fields (cache hit flags, replay
counters, scheduling counters) legitimately differ between those paths even
though every *numeric* field is bitwise identical.

:func:`canonical_payload` strips exactly that provenance, so two runs of
the same scenario through any execution path -- cold CLI, warm CLI,
served, store-warm across processes -- render to byte-identical
:func:`canonical_text`.  The stripping is structure-aware, not recursive
key-matching: a transient payload's ``segments`` *trace list* is
provenance (replay flags, per-segment matvec counts) and is dropped, while
the scalar ``segments`` count inside the ``profile`` sub-dict is part of
the workload description and survives.
"""

from __future__ import annotations

import json

__all__ = [
    "PROTOCOL_VERSION",
    "canonical_payload",
    "canonical_text",
    "normalise_request",
    "request_key",
]

#: Bumped whenever request or response shapes change incompatibly.
PROTOCOL_VERSION = 1

#: Commands a service request may dispatch (mirrors the CLI subcommands).
COMMANDS = ("sweep", "network", "transient")

# Result-level provenance: cache bookkeeping of the run itself.
_RESULT_STRIP = ("cache",)
# Point-level provenance: whether this point was served from the cache.
_POINT_STRIP = ("from_cache",)
# Transient-trajectory provenance: replay/build counters that depend on
# which caches were warm, not on the trajectory itself.
_TRANSIENT_STRIP = (
    "matvecs",
    "templates_built",
    "early_stopped_segments",
    "propagator_hits",
)
# Network-solve provenance: how the per-cell solves were scheduled and
# warm-started.  The answers (aggregates, cells, iteration traces) stay.
_NETWORK_STRIP = (
    "solver_calls",
    "cold_solves",
    "frozen_solves",
    "pipelined_jobs",
)


def _strip_payload(payload: dict) -> dict:
    """Drop provenance keys from one result payload (point or whole run)."""
    drop = set(_TRANSIENT_STRIP) | set(_NETWORK_STRIP)
    out = {key: value for key, value in payload.items() if key not in drop}
    # The transient trace list -- NOT the profile's scalar segment count,
    # which lives one level down inside the "profile" sub-dict.
    if isinstance(out.get("segments"), list):
        del out["segments"]
    return out


def canonical_payload(payload: dict) -> dict:
    """The provenance-free rendering of one ``as_dict()`` result payload.

    Accepts sweep, network-sweep, transient-sweep and single-trajectory
    payloads; unknown keys pass through untouched, so the function is safe
    to apply to future result shapes.
    """
    out = {
        key: value for key, value in payload.items() if key not in _RESULT_STRIP
    }
    out = _strip_payload(out)
    points = out.get("points")
    if isinstance(points, list):
        out["points"] = [
            _strip_payload(
                {k: v for k, v in point.items() if k not in _POINT_STRIP}
            )
            if isinstance(point, dict)
            else point
            for point in points
        ]
    return out


def canonical_text(payload: dict) -> str:
    """Deterministic JSON text of :func:`canonical_payload` (no trailing \\n).

    This is the byte string the acceptance checks compare: CLI
    ``--canonical`` output and served responses both print exactly this.
    """
    return json.dumps(canonical_payload(payload), indent=2, sort_keys=True)


def normalise_request(request: dict) -> dict:
    """Validate one ``/run`` request and fill in its defaults.

    Raises ``ValueError`` with a message suitable for a 400 response.
    """
    if not isinstance(request, dict):
        raise ValueError("request must be a JSON object")
    command = request.get("command")
    if command not in COMMANDS:
        raise ValueError(
            f"unknown command {command!r}; expected one of {', '.join(COMMANDS)}"
        )
    scenario = request.get("scenario")
    if not isinstance(scenario, str) or not scenario:
        raise ValueError("request needs a non-empty 'scenario' name")
    preset = request.get("preset", "default")
    if preset not in ("smoke", "default", "paper"):
        raise ValueError(f"unknown preset {preset!r}")
    rate = request.get("rate")
    if rate is not None:
        rate = float(rate)
        if command != "transient":
            raise ValueError("'rate' applies only to transient requests")
    pipelined = bool(request.get("pipelined", False))
    if pipelined and command != "network":
        raise ValueError("'pipelined' applies only to network requests")
    return {
        "command": command,
        "scenario": scenario,
        "preset": preset,
        "rate": rate,
        "pipelined": pipelined,
        "cache": bool(request.get("cache", True)),
    }


def request_key(request: dict) -> str:
    """The canonical identity of one *normalised* request.

    Two requests with the same key ask for byte-identical work: the key is
    the deterministic JSON rendering of every field of
    :func:`normalise_request`'s output, so it distinguishes ``cache: false``
    re-solve requests from cacheable ones and a rate-pinned transient
    request from the full sweep.  The admission queue coalesces in-flight
    requests on this key, and the request journal uses it to pair accepted
    entries with their completions across a crash.
    """
    return json.dumps(request, sort_keys=True, separators=(",", ":"))
