"""Thin stdlib HTTP client of the warm scenario service.

Used by ``gprs-repro client`` and by the tests/CI smoke job; speaks the
JSON protocol of :mod:`repro.service.server` over ``urllib`` (no new
dependencies).  The client never interprets results -- it hands back the
server's response dictionaries verbatim, and the CLI decides whether to
print the human-formatted ``output``, the provenance-free ``canonical``
text (byte-identical to CLI ``--canonical``), or the raw response JSON.

Transient failures can be retried (``retries=N``): connection errors, HTTP
429 (over-budget admission -- the server's ``Retry-After`` hint is
honoured) and HTTP 503 (draining) back off deterministically through
:class:`~repro.runtime.resilience.RetryPolicy`, so a flaky-looking client
run reproduces its timing exactly.  ``POST /shutdown`` is never retried:
it is not idempotent, and a lost acknowledgement must not stop a second
server.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.runtime.resilience import RetryPolicy

__all__ = ["ServiceClient", "ServiceError"]

DEFAULT_URL = "http://127.0.0.1:8754"

#: Cap on how long a server-provided ``Retry-After`` hint is honoured.
_MAX_RETRY_AFTER_S = 30.0

#: Backoff shape for client retries (attempts come from ``retries``).
_CLIENT_RETRY_POLICY = RetryPolicy(
    backoff_base_s=0.2, backoff_factor=2.0, backoff_max_s=5.0
)


class ServiceError(RuntimeError):
    """A transport failure or an error response from the service."""


class _Retryable(Exception):
    """One retryable failure: holds the would-be result and backoff hint."""

    def __init__(
        self,
        message: str,
        *,
        response: dict | None = None,
        retry_after_s: float | None = None,
        cause: BaseException | None = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.response = response
        self.retry_after_s = retry_after_s
        self.cause = cause


class ServiceClient:
    """Client of one ``gprs-repro serve`` endpoint.

    ``timeout`` bounds each HTTP call; solves can legitimately take a
    while, so the default is generous.  ``retries`` allows that many
    *additional* attempts after a retryable failure (connection refused,
    429, 503) on idempotent calls.  All methods raise
    :class:`ServiceError` on connection failures and non-JSON replies --
    *protocol*-level errors (unknown scenario, bad request) come back as
    ``{"ok": false, "error": ...}`` responses instead, mirroring the
    server's own behaviour.
    """

    def __init__(
        self,
        url: str = DEFAULT_URL,
        *,
        timeout: float = 600.0,
        retries: int = 0,
    ) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, int(retries))

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _request(
        self, path: str, payload: dict | None = None, *, idempotent: bool = True
    ) -> dict:
        attempts = 1 + (self.retries if idempotent else 0)
        last: _Retryable | None = None
        for attempt in range(attempts):
            if attempt:
                time.sleep(self._delay_s(path, attempt, last))
            try:
                return self._request_once(path, payload)
            except _Retryable as failure:
                last = failure
        # Retry budget exhausted: surface the structured error body when the
        # server sent one (429/503), else fail like a plain transport error.
        if last is not None and last.response is not None:
            return last.response
        raise ServiceError(last.message) from last.cause

    def _delay_s(self, path: str, attempt: int, last: _Retryable | None) -> float:
        if last is not None and last.retry_after_s is not None:
            return min(_MAX_RETRY_AFTER_S, max(0.0, last.retry_after_s))
        return _CLIENT_RETRY_POLICY.backoff_s(f"client:{path}", 0, attempt)

    def _request_once(self, path: str, payload: dict | None) -> dict:
        url = self.url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                raw = reply.read()
        except urllib.error.HTTPError as error:
            # 4xx replies still carry a JSON error body worth surfacing.
            raw = error.read()
            try:
                body = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                body = None
            if error.code in (429, 503):
                retry_after = None
                header = error.headers.get("Retry-After")
                if header is not None:
                    try:
                        retry_after = float(header)
                    except ValueError:
                        retry_after = None
                elif isinstance(body, dict):
                    value = body.get("retry_after_s")
                    if isinstance(value, (int, float)):
                        retry_after = float(value)
                raise _Retryable(
                    f"{url}: HTTP {error.code}",
                    response=body if isinstance(body, dict) else None,
                    retry_after_s=retry_after,
                    cause=error,
                ) from error
            if isinstance(body, dict):
                return body
            raise ServiceError(f"{url}: HTTP {error.code}") from error
        except (urllib.error.URLError, OSError, TimeoutError) as error:
            raise _Retryable(f"{url}: {error}", cause=error) from error
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise ServiceError(f"{url}: non-JSON response") from error

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        """``GET /healthz``."""
        return self._request("/healthz")

    def stats(self) -> dict:
        """``GET /stats``."""
        return self._request("/stats")

    def run(self, request: dict) -> dict:
        """``POST /run`` one scenario request."""
        return self._request("/run", request)

    def batch(self, requests: list[dict]) -> dict:
        """``POST /batch`` a list of scenario requests (answered in order)."""
        return self._request("/batch", {"requests": list(requests)})

    def shutdown(self) -> dict:
        """``POST /shutdown``; the server acknowledges, then stops.

        Never retried: a lost acknowledgement must not shut down whatever
        next binds the port.
        """
        return self._request("/shutdown", {}, idempotent=False)

    def wait_ready(self, *, attempts: int = 50, delay_s: float = 0.1) -> bool:
        """Poll ``/healthz`` until the server answers (startup helper)."""
        for _ in range(attempts):
            try:
                if self.health().get("ok"):
                    return True
            except ServiceError:
                pass
            time.sleep(delay_s)
        return False
