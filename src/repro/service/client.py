"""Thin stdlib HTTP client of the warm scenario service.

Used by ``gprs-repro client`` and by the tests/CI smoke job; speaks the
JSON protocol of :mod:`repro.service.server` over ``urllib`` (no new
dependencies).  The client never interprets results -- it hands back the
server's response dictionaries verbatim, and the CLI decides whether to
print the human-formatted ``output``, the provenance-free ``canonical``
text (byte-identical to CLI ``--canonical``), or the raw response JSON.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

__all__ = ["ServiceClient", "ServiceError"]

DEFAULT_URL = "http://127.0.0.1:8754"


class ServiceError(RuntimeError):
    """A transport failure or an error response from the service."""


class ServiceClient:
    """Client of one ``gprs-repro serve`` endpoint.

    ``timeout`` bounds each HTTP call; solves can legitimately take a
    while, so the default is generous.  All methods raise
    :class:`ServiceError` on connection failures and non-JSON replies --
    *protocol*-level errors (unknown scenario, bad request) come back as
    ``{"ok": false, "error": ...}`` responses instead, mirroring the
    server's own behaviour.
    """

    def __init__(self, url: str = DEFAULT_URL, *, timeout: float = 600.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _request(self, path: str, payload: dict | None = None) -> dict:
        url = self.url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                raw = reply.read()
        except urllib.error.HTTPError as error:
            # 4xx replies still carry a JSON error body worth surfacing.
            raw = error.read()
            try:
                return json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                raise ServiceError(f"{url}: HTTP {error.code}") from error
        except (urllib.error.URLError, OSError, TimeoutError) as error:
            raise ServiceError(f"{url}: {error}") from error
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise ServiceError(f"{url}: non-JSON response") from error

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        """``GET /healthz``."""
        return self._request("/healthz")

    def stats(self) -> dict:
        """``GET /stats``."""
        return self._request("/stats")

    def run(self, request: dict) -> dict:
        """``POST /run`` one scenario request."""
        return self._request("/run", request)

    def batch(self, requests: list[dict]) -> dict:
        """``POST /batch`` a list of scenario requests (answered in order)."""
        return self._request("/batch", {"requests": list(requests)})

    def shutdown(self) -> dict:
        """``POST /shutdown``; the server acknowledges, then stops."""
        return self._request("/shutdown", {})

    def wait_ready(self, *, attempts: int = 50, delay_s: float = 0.1) -> bool:
        """Poll ``/healthz`` until the server answers (startup helper)."""
        import time

        for _ in range(attempts):
            try:
                if self.health().get("ok"):
                    return True
            except ServiceError:
                pass
            time.sleep(delay_s)
        return False
