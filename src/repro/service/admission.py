"""Admission-controlled solve queue: coalescing, backpressure, drain, journal.

PR 8's service serialised every solve behind one lock -- correct, but
single-tenant.  This module supplies the concurrent admission layer the
server hands requests to:

* **Bounded queue + worker threads.**  ``workers`` solver threads consume a
  queue of at most ``max_queue`` waiting entries; at most ``max_inflight``
  requests (queued + running) are admitted at once.  Over-budget work is
  rejected *immediately* with :class:`Overloaded` (HTTP 429 +
  ``Retry-After``) instead of queueing unboundedly -- under overload the
  service stays responsive and honest rather than slow and doomed.
* **Request coalescing.**  Entries are keyed on
  :func:`repro.service.protocol.request_key`, the canonical rendering of
  the normalised request.  An arrival identical to an in-flight entry
  attaches to it as a *follower*: one solve runs, every waiter receives the
  result, and the followers' responses carry an empty metrics delta so
  per-request metrics never double-count a shared solve.
* **Per-request deadlines.**  A waiter gives up after its deadline with
  :class:`RequestTimeout` (HTTP 504).  A deadline-expired entry that is
  still *queued* with no remaining waiters is cancelled outright; one that
  is already *running* is allowed to finish into the result cache -- the
  work is not wasted, the next identical request is a cache hit.
* **Graceful drain.**  :meth:`AdmissionQueue.drain` stops admission
  (:class:`Draining` -> HTTP 503), waits for in-flight entries bounded by a
  timeout, then trips a :class:`~repro.runtime.resilience.CancelToken` so
  pool-backed solves abort instead of running arbitrarily long.  Entries
  that could not finish stay *accepted* in the journal and are re-solved on
  the next start.
* **Crash-consistent request journal.**  A JSONL file with the same
  digest-verified, schema-versioned header pattern as
  :class:`~repro.runtime.resilience.SweepCheckpoint`: an ``accept`` line is
  flushed and fsynced *before* a solve may start, a ``finish`` line records
  the outcome.  On startup, accepted-but-unfinished requests are replayed
  into the cache, so a crashed or killed service loses no admitted work.

Everything lands in ``service.*`` counters of the ambient metrics registry,
mirrored by the queue's own stats block for torn-free ``/stats`` reads.
"""

from __future__ import annotations

import collections
import hashlib
import json
import os
import threading
import time
from pathlib import Path

from repro.obs.metrics import current_registry
from repro.runtime.resilience import CancelToken, TaskCancelledError, cancel_scope
from repro.service.protocol import request_key

__all__ = [
    "JOURNAL_SCHEMA",
    "JOURNAL_SCHEMA_VERSION",
    "AdmissionQueue",
    "Draining",
    "Overloaded",
    "RequestJournal",
    "RequestTimeout",
]


# ---------------------------------------------------------------------- #
# Admission outcomes
# ---------------------------------------------------------------------- #
class Overloaded(RuntimeError):
    """The queue is at capacity; retry after ``retry_after_s`` seconds."""

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.retry_after_s = max(1.0, float(retry_after_s))


class Draining(RuntimeError):
    """The service is draining: no new work is admitted."""


class RequestTimeout(RuntimeError):
    """A waiter's deadline expired before its solve finished."""

    def __init__(self, message: str, elapsed_s: float) -> None:
        super().__init__(message)
        self.elapsed_s = elapsed_s


# ---------------------------------------------------------------------- #
# The request journal
# ---------------------------------------------------------------------- #
#: Identifies journal files among arbitrary JSONL (the ledger header pattern).
JOURNAL_SCHEMA = "gprs-repro/request-journal"

#: Bump on any backwards-incompatible entry change.
JOURNAL_SCHEMA_VERSION = 1


def _request_digest(rendering: str) -> str:
    """Integrity digest of one journalled request rendering."""
    return hashlib.sha256(rendering.encode("utf-8")).hexdigest()[:16]


class RequestJournal:
    """Append-only JSONL journal of accepted and finished service requests.

    Lines after the schema header are either::

        {"event": "accept", "id": N, "key": ..., "request": {...}, "digest": ...}
        {"event": "finish", "id": N, "status": "done"|"error"|"cancelled"}

    ``digest`` covers the canonical request rendering, so a flipped bit in a
    journalled request is detected on load and the line is dropped (counted
    under ``service.journal_corrupt``) instead of replaying garbage.  The
    final line may be torn (an interrupted append) and is skipped; a future
    schema version is refused outright.  ``accept`` lines are flushed *and*
    fsynced before :meth:`accept` returns -- the crash-consistency contract
    is that any request the server acknowledged as admitted is durable.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._next_id = 1
        self._pending: "collections.OrderedDict[int, dict]" = (
            collections.OrderedDict()
        )
        self._header_written = False
        self._load()

    # -- loading ----------------------------------------------------------

    def _load(self) -> None:
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except FileNotFoundError:
            return
        registry = current_registry()
        accepted: "collections.OrderedDict[int, dict]" = collections.OrderedDict()
        finished: set[int] = set()
        max_id = 0
        for number, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if number == len(lines) - 1:
                    continue  # torn final line from an interrupted append
                raise ValueError(f"{self.path}:{number + 1}: not JSON") from None
            if number == 0:
                if record.get("schema") != JOURNAL_SCHEMA:
                    raise ValueError(
                        f"{self.path}: not a {JOURNAL_SCHEMA} file "
                        f"(schema={record.get('schema')!r})"
                    )
                version = record.get("schema_version")
                if not isinstance(version, int) or version < 1:
                    raise ValueError(
                        f"{self.path}: invalid schema_version {version!r}"
                    )
                if version > JOURNAL_SCHEMA_VERSION:
                    raise ValueError(
                        f"{self.path}: journal schema_version {version} is newer "
                        f"than supported {JOURNAL_SCHEMA_VERSION}; refusing to "
                        "misread it"
                    )
                self._header_written = True
                continue
            event = record.get("event")
            entry_id = record.get("id")
            if not isinstance(entry_id, int):
                continue
            max_id = max(max_id, entry_id)
            if event == "accept":
                request = record.get("request")
                digest = record.get("digest")
                if not isinstance(request, dict) or not isinstance(digest, str):
                    continue
                if _request_digest(request_key(request)) != digest:
                    registry.count("service.journal_corrupt")
                    continue
                accepted[entry_id] = request
            elif event == "finish":
                finished.add(entry_id)
        for entry_id, request in accepted.items():
            if entry_id not in finished:
                self._pending[entry_id] = request
        self._next_id = max_id + 1

    def pending(self) -> list[tuple[int, dict]]:
        """Accepted-but-unfinished ``(id, request)`` pairs, in accept order."""
        with self._lock:
            return list(self._pending.items())

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)

    # -- appending --------------------------------------------------------

    def _append(self, record: dict, *, fsync: bool) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            if not self._header_written:
                header = {
                    "schema": JOURNAL_SCHEMA,
                    "schema_version": JOURNAL_SCHEMA_VERSION,
                }
                handle.write(json.dumps(header, sort_keys=True) + "\n")
                self._header_written = True
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())

    def accept(self, request: dict) -> int:
        """Durably journal one admitted request; returns its journal id."""
        rendering = request_key(request)
        with self._lock:
            entry_id = self._next_id
            self._next_id += 1
            self._append(
                {
                    "event": "accept",
                    "id": entry_id,
                    "key": rendering,
                    "request": request,
                    "digest": _request_digest(rendering),
                },
                fsync=True,
            )
            self._pending[entry_id] = request
        return entry_id

    def finish(self, entry_id: int, status: str = "done") -> None:
        """Journal the outcome of one accepted request."""
        with self._lock:
            self._append(
                {"event": "finish", "id": entry_id, "status": status}, fsync=False
            )
            self._pending.pop(entry_id, None)


# ---------------------------------------------------------------------- #
# The admission queue
# ---------------------------------------------------------------------- #
_QUEUED = "queued"
_RUNNING = "running"
_DONE = "done"
_CANCELLED = "cancelled"
_ABANDONED = "abandoned"


class _Entry:
    """One distinct admitted request and every waiter attached to it."""

    __slots__ = (
        "key",
        "request",
        "state",
        "response",
        "event",
        "waiters",
        "journal_ids",
        "enqueued_at",
        "started_at",
    )

    def __init__(self, key: str, request: dict) -> None:
        self.key = key
        self.request = request
        self.state = _QUEUED
        self.response: dict | None = None
        self.event = threading.Event()
        self.waiters = 0
        self.journal_ids: list[int] = []
        self.enqueued_at = time.monotonic()
        self.started_at: float | None = None


class AdmissionQueue:
    """Bounded, coalescing work queue in front of ``solve``.

    ``solve`` is called from the queue's worker threads with one normalised
    request and must return a JSON-ready response dict (it is expected to
    render its own failures as error responses); it may raise
    :class:`~repro.runtime.resilience.TaskCancelledError` when the drain
    token trips, which abandons the entry without journalling a finish so a
    restarted service replays it.
    """

    def __init__(
        self,
        solve,
        *,
        workers: int = 1,
        max_queue: int = 32,
        max_inflight: int | None = None,
        journal: RequestJournal | None = None,
    ) -> None:
        self._solve = solve
        self._worker_count = max(1, int(workers))
        self._max_queue = max(1, int(max_queue))
        self._max_inflight = (
            int(max_inflight)
            if max_inflight is not None
            else self._worker_count + self._max_queue
        )
        self._journal = journal
        self.drain_token = CancelToken()
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._queue: "collections.deque[_Entry]" = collections.deque()
        self._by_key: dict[str, _Entry] = {}
        self._running = 0
        self._draining = False
        self._stopping = False
        self._started = False
        self._threads: list[threading.Thread] = []
        self._solve_ewma_s = 1.0
        self.counters = {
            "accepted": 0,
            "coalesced": 0,
            "rejected": 0,
            "timed_out": 0,
            "cancelled": 0,
            "completed": 0,
            "errors": 0,
            "drained": 0,
            "abandoned": 0,
            "replayed": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spin up the worker threads and replay any journalled backlog."""
        with self._lock:
            if self._started:
                return
            self._started = True
            for number in range(self._worker_count):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"admission-worker-{number}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()
        self._replay_journal()

    def _replay_journal(self) -> None:
        if self._journal is None:
            return
        registry = current_registry()
        for entry_id, request in self._journal.pending():
            with self._cv:
                entry = self._by_key.get(request_key(request))
                if entry is not None and entry.state in (_QUEUED, _RUNNING):
                    entry.journal_ids.append(entry_id)
                else:
                    # Replays bypass backpressure: the work was admitted (and
                    # acknowledged) by a previous incarnation of the service.
                    entry = _Entry(request_key(request), request)
                    entry.journal_ids.append(entry_id)
                    self._by_key[entry.key] = entry
                    self._queue.append(entry)
                    self._cv.notify()
                self.counters["replayed"] += 1
            registry.count("service.replayed")

    def close(self, *, join_timeout_s: float = 5.0) -> None:
        """Stop the worker threads (idempotent; queued work is left as-is)."""
        with self._cv:
            self._stopping = True
            self._cv.notify_all()
        for thread in self._threads:
            thread.join(timeout=join_timeout_s)
        self._threads.clear()

    # -- admission ---------------------------------------------------------

    def submit(self, request: dict) -> tuple[_Entry, bool]:
        """Admit one normalised request; returns ``(entry, coalesced)``.

        Raises :class:`Draining` once drain has begun and :class:`Overloaded`
        when the queue or the in-flight budget is full.  A coalesced arrival
        journals its own ``accept`` (it *was* admitted) but attaches to the
        in-flight entry instead of queueing a second solve.
        """
        registry = current_registry()
        key = request_key(request)
        with self._cv:
            if self._draining or self._stopping:
                registry.count("service.rejected")
                self.counters["rejected"] += 1
                raise Draining("service is draining; no new work is admitted")
            entry = self._by_key.get(key)
            if entry is not None and entry.state in (_QUEUED, _RUNNING):
                entry.waiters += 1
                if self._journal is not None:
                    entry.journal_ids.append(self._journal.accept(request))
                self.counters["coalesced"] += 1
                registry.count("service.coalesced")
                registry.count("service.requests")
                return entry, True
            queued = len(self._queue)
            inflight = queued + self._running
            if queued >= self._max_queue or inflight >= self._max_inflight:
                retry_after = self._retry_after_locked(inflight)
                self.counters["rejected"] += 1
                registry.count("service.rejected")
                registry.count("service.requests")
                raise Overloaded(
                    f"service over budget: {queued} queued of {self._max_queue}, "
                    f"{inflight} in flight of {self._max_inflight}",
                    retry_after,
                )
            entry = _Entry(key, request)
            entry.waiters = 1
            if self._journal is not None:
                entry.journal_ids.append(self._journal.accept(request))
            self._by_key[key] = entry
            self._queue.append(entry)
            self.counters["accepted"] += 1
            registry.count("service.accepted")
            registry.count("service.requests")
            self._cv.notify()
            return entry, False

    def _retry_after_locked(self, inflight: int) -> float:
        """Honest backoff hint: expected seconds until a slot frees up."""
        backlog = max(1, inflight - self._worker_count + 1)
        estimate = self._solve_ewma_s * backlog / self._worker_count
        return min(120.0, max(1.0, estimate))

    def wait(self, entry: _Entry, timeout: float | None = None) -> dict:
        """Block until ``entry`` resolves; returns the response dict.

        Raises :class:`RequestTimeout` when ``timeout`` expires first.  The
        expired waiter detaches; if it was the last waiter on an entry that
        has not started yet, the entry is cancelled (journal status
        ``cancelled``) -- a running solve is left to finish into the cache.
        """
        started = time.monotonic()
        if not entry.event.wait(timeout):
            registry = current_registry()
            elapsed = time.monotonic() - started
            with self._cv:
                entry.waiters = max(0, entry.waiters - 1)
                self.counters["timed_out"] += 1
                registry.count("service.timed_out")
                if entry.state == _QUEUED and entry.waiters == 0:
                    entry.state = _CANCELLED
                    self._by_key.pop(entry.key, None)
                    self._finish_journal(entry, "cancelled")
                    self.counters["cancelled"] += 1
                    registry.count("service.cancelled")
            raise RequestTimeout(
                f"request exceeded its {timeout:g}s deadline", elapsed
            )
        return entry.response

    # -- draining ----------------------------------------------------------

    def drain(self, timeout: float | None = 30.0) -> dict:
        """Stop admission, wait (bounded) for in-flight work, cancel the rest.

        Returns a summary dict.  Entries that finish while draining count as
        ``drained``; entries that cannot finish inside the timeout are
        *abandoned*: queued ones are answered with a 503-style error response
        immediately, running ones abort as soon as the tripped
        :class:`~repro.runtime.resilience.CancelToken` reaches their pool
        (serial in-process solves finish on their own time).  Abandoned
        entries keep their ``accept`` journal lines, so the next service
        start replays them.
        """
        registry = current_registry()
        deadline = None if timeout is None else time.monotonic() + float(timeout)
        with self._cv:
            self._draining = True
            while self._inflight_locked() > 0:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    break
                self._cv.wait(0.1 if remaining is None else min(0.1, remaining))
            leftover = self._inflight_locked()
        if leftover:
            # Out of patience: abort pool-backed solves and fail the queue.
            self.drain_token.cancel("service draining")
            with self._cv:
                while self._queue:
                    entry = self._queue.popleft()
                    if entry.state != _QUEUED:
                        continue
                    self._abandon_locked(entry, registry)
                grace = time.monotonic() + 2.0
                while self._running > 0 and time.monotonic() < grace:
                    self._cv.wait(0.1)
        with self._cv:
            summary = {
                "drained": self.counters["drained"],
                "abandoned": self.counters["abandoned"],
                "still_running": self._running,
            }
        return summary

    def _abandon_locked(self, entry: _Entry, registry) -> None:
        entry.state = _ABANDONED
        entry.response = {
            "ok": False,
            "error": "service draining; request journalled for replay",
            "status": 503,
        }
        self._by_key.pop(entry.key, None)
        self.counters["abandoned"] += 1
        registry.count("service.abandoned")
        entry.event.set()

    # -- worker loop -------------------------------------------------------

    def _worker_loop(self) -> None:
        registry = current_registry()
        while True:
            with self._cv:
                while not self._queue and not self._stopping:
                    self._cv.wait(0.2)
                if self._stopping and not self._queue:
                    return
                if not self._queue:
                    continue
                entry = self._queue.popleft()
                if entry.state != _QUEUED:
                    continue  # cancelled while waiting
                entry.state = _RUNNING
                entry.started_at = time.monotonic()
                self._running += 1
            try:
                response = self._run_entry(entry)
            except TaskCancelledError:
                with self._cv:
                    self._running -= 1
                    self._abandon_locked(entry, registry)
                    self._cv.notify_all()
                continue
            except BaseException as error:  # noqa: BLE001 -- a worker must survive
                response = {
                    "ok": False,
                    "error": f"{type(error).__name__}: {error}",
                }
            with self._cv:
                self._running -= 1
                entry.state = _DONE
                entry.response = response
                self._by_key.pop(entry.key, None)
                elapsed = time.monotonic() - entry.started_at
                self._solve_ewma_s += 0.3 * (elapsed - self._solve_ewma_s)
                ok = bool(response.get("ok"))
                self._finish_journal(entry, "done" if ok else "error")
                self.counters["completed"] += 1
                registry.count("service.completed")
                if not ok:
                    self.counters["errors"] += 1
                    registry.count("service.errors")
                if self._draining:
                    self.counters["drained"] += 1
                    registry.count("service.drained")
                entry.event.set()
                self._cv.notify_all()

    def _run_entry(self, entry: _Entry) -> dict:
        with cancel_scope(self.drain_token):
            return self._solve(entry.request)

    def _finish_journal(self, entry: _Entry, status: str) -> None:
        if self._journal is None:
            return
        for entry_id in entry.journal_ids:
            self._journal.finish(entry_id, status)

    # -- introspection -----------------------------------------------------

    def _inflight_locked(self) -> int:
        return len(self._queue) + self._running

    def stats(self) -> dict:
        """A consistent snapshot of queue state and counters (never torn)."""
        with self._cv:
            return {
                "workers": self._worker_count,
                "max_queue": self._max_queue,
                "max_inflight": self._max_inflight,
                "queued": len(self._queue),
                "running": self._running,
                "draining": self._draining,
                "journal": (
                    None
                    if self._journal is None
                    else {
                        "path": str(self._journal.path),
                        "pending": len(self._journal),
                    }
                ),
                **dict(self.counters),
            }

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining
