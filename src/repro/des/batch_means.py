"""Confidence intervals via the batch-means method.

The paper reports 95% confidence intervals for all simulation curves computed
with batch means: a long steady-state run is cut into a moderate number of
batches, the per-batch averages are treated as (approximately) independent
normal samples, and a Student-t interval is formed around their grand mean.

:class:`BatchMeansEstimator` supports both usage styles:

* feed individual observations and let the estimator cut them into a fixed
  number of batches (used for packet-delay tallies), or
* feed pre-computed batch means directly (used for time-weighted measures
  where the simulator aggregates each batch itself).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats

__all__ = ["ConfidenceInterval", "BatchMeansEstimator"]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric confidence interval ``mean +/- half_width``."""

    mean: float
    half_width: float
    confidence_level: float
    batches: int

    @property
    def lower(self) -> float:
        return self.mean - self.half_width

    @property
    def upper(self) -> float:
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """Return whether ``value`` lies inside the interval."""
        return self.lower <= value <= self.upper

    @property
    def relative_half_width(self) -> float:
        """Half width divided by the absolute mean (``inf`` for a zero mean)."""
        if self.mean == 0:
            return math.inf
        return self.half_width / abs(self.mean)


class BatchMeansEstimator:
    """Collects batch means and produces Student-t confidence intervals.

    Parameters
    ----------
    confidence_level:
        Coverage of the interval, e.g. ``0.95`` as in the paper.
    """

    def __init__(self, confidence_level: float = 0.95) -> None:
        if not 0.0 < confidence_level < 1.0:
            raise ValueError("confidence level must be strictly between 0 and 1")
        self._confidence_level = confidence_level
        self._batch_means: list[float] = []

    # ------------------------------------------------------------------ #
    # Feeding data
    # ------------------------------------------------------------------ #
    def add_batch_mean(self, value: float) -> None:
        """Add one pre-computed batch mean."""
        self._batch_means.append(float(value))

    def add_observations(self, observations, batches: int = 10) -> None:
        """Cut raw observations into ``batches`` equal batches and add their means.

        Observations that do not fill the last batch are dropped, mirroring the
        standard batch-means procedure.
        """
        values = [float(v) for v in observations]
        if batches < 2:
            raise ValueError("at least two batches are required")
        batch_size = len(values) // batches
        if batch_size == 0:
            raise ValueError(
                f"not enough observations ({len(values)}) for {batches} batches"
            )
        for index in range(batches):
            chunk = values[index * batch_size : (index + 1) * batch_size]
            self.add_batch_mean(sum(chunk) / len(chunk))

    @property
    def batch_count(self) -> int:
        return len(self._batch_means)

    @property
    def batch_means(self) -> list[float]:
        return list(self._batch_means)

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def mean(self) -> float:
        """Return the grand mean of all batch means."""
        if not self._batch_means:
            raise ValueError("no batch means recorded")
        return sum(self._batch_means) / len(self._batch_means)

    def confidence_interval(self) -> ConfidenceInterval:
        """Return the Student-t confidence interval around the grand mean.

        With fewer than two batches the half width is infinite (the interval is
        uninformative but well defined), so callers never have to special-case
        short runs.
        """
        if not self._batch_means:
            raise ValueError("no batch means recorded")
        n = len(self._batch_means)
        grand_mean = self.mean()
        if n < 2:
            return ConfidenceInterval(
                mean=grand_mean,
                half_width=math.inf,
                confidence_level=self._confidence_level,
                batches=n,
            )
        variance = sum((value - grand_mean) ** 2 for value in self._batch_means) / (n - 1)
        standard_error = math.sqrt(variance / n)
        quantile = stats.t.ppf(0.5 + self._confidence_level / 2.0, df=n - 1)
        return ConfidenceInterval(
            mean=grand_mean,
            half_width=float(quantile) * standard_error,
            confidence_level=self._confidence_level,
            batches=n,
        )

    def reset(self) -> None:
        """Discard all recorded batch means."""
        self._batch_means.clear()
