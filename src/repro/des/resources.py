"""Resources shared by simulation processes: counting resources and finite buffers.

Two primitives cover everything the GPRS simulator needs:

* :class:`Resource` -- a pool of identical units (physical radio channels).
  Processes request a unit and receive an event that triggers once one is
  available; requests are served first-come first-served.  Requests can also
  be made non-blocking (``try_acquire``) which is how on-demand PDCH
  allocation and voice-call blocking are modelled.
* :class:`Buffer` -- a finite FIFO buffer of items (the BSC packet queue).
  ``put`` either stores the item or reports overflow (packet loss); ``get``
  returns an event that delivers the next item once one is available.
"""

from __future__ import annotations

from collections import deque

from repro.des.engine import Event, SimulationEngine, SimulationError

__all__ = ["Resource", "Buffer", "BufferOverflow"]


class BufferOverflow(Exception):
    """Raised by :meth:`Buffer.put` when the buffer is full and ``raise_on_full`` is set."""


class Resource:
    """A pool of ``capacity`` identical resource units with FIFO queueing.

    Parameters
    ----------
    engine:
        The simulation engine.
    capacity:
        Number of units in the pool; must be positive.
    name:
        Optional name for debugging.
    """

    def __init__(self, engine: SimulationEngine, capacity: int, name: str | None = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._engine = engine
        self._capacity = capacity
        self._in_use = 0
        self._waiting: deque[Event] = deque()
        self.name = name or "resource"

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def in_use(self) -> int:
        """Number of units currently held by processes."""
        return self._in_use

    @property
    def available(self) -> int:
        """Number of free units."""
        return self._capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Number of pending (unsatisfied) requests."""
        return len(self._waiting)

    # ------------------------------------------------------------------ #
    # Acquisition / release
    # ------------------------------------------------------------------ #
    def request(self) -> Event:
        """Return an event that triggers once a unit has been allocated to the caller."""
        event = self._engine.event(name=f"{self.name}.request")
        if self._in_use < self._capacity and not self._waiting:
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiting.append(event)
        return event

    def try_acquire(self) -> bool:
        """Immediately acquire a unit if one is free; return whether it succeeded."""
        if self._in_use < self._capacity and not self._waiting:
            self._in_use += 1
            return True
        return False

    def release(self) -> None:
        """Return one unit to the pool, waking the oldest waiting request if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release of {self.name} without a matching acquisition")
        self._in_use -= 1
        if self._waiting and self._in_use < self._capacity:
            self._in_use += 1
            self._waiting.popleft().succeed(self)

    def resize(self, capacity: int) -> None:
        """Change the pool size (used for on-demand channel reallocation).

        Shrinking below the number of units in use is allowed: no unit is
        revoked, but no new unit is granted until usage drops below the new
        capacity.
        """
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._capacity = capacity
        while self._waiting and self._in_use < self._capacity:
            self._in_use += 1
            self._waiting.popleft().succeed(self)


class Buffer:
    """A finite FIFO buffer of items with blocking ``get`` and lossy ``put``.

    Parameters
    ----------
    engine:
        The simulation engine.
    capacity:
        Maximum number of items stored; further ``put`` calls are rejected.
    name:
        Optional name for debugging.
    """

    def __init__(self, engine: SimulationEngine, capacity: int, name: str | None = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._engine = engine
        self._capacity = capacity
        self._items: deque = deque()
        self._getters: deque[Event] = deque()
        self._lost = 0
        self._accepted = 0
        self.name = name or "buffer"

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def level(self) -> int:
        """Number of items currently stored."""
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self._capacity

    @property
    def lost_items(self) -> int:
        """Number of items rejected because the buffer was full."""
        return self._lost

    @property
    def accepted_items(self) -> int:
        """Number of items successfully stored since creation."""
        return self._accepted

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #
    def put(self, item, *, raise_on_full: bool = False) -> bool:
        """Store ``item``; return ``True`` on success, ``False`` if it was lost.

        When a process is already waiting in :meth:`get`, the item is handed
        over directly without occupying buffer space.
        """
        if self._getters:
            self._accepted += 1
            self._getters.popleft().succeed(item)
            return True
        if len(self._items) >= self._capacity:
            self._lost += 1
            if raise_on_full:
                raise BufferOverflow(f"{self.name} is full (capacity {self._capacity})")
            return False
        self._accepted += 1
        self._items.append(item)
        return True

    def get(self) -> Event:
        """Return an event delivering the oldest item once one is available."""
        event = self._engine.event(name=f"{self.name}.get")
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def peek(self):
        """Return the oldest stored item without removing it (``None`` if empty)."""
        return self._items[0] if self._items else None

    def clear(self) -> int:
        """Discard all stored items; return how many were discarded."""
        discarded = len(self._items)
        self._items.clear()
        return discarded
