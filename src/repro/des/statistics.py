"""Statistics collectors for discrete-event simulations.

Three collectors cover the measurements of the GPRS simulator:

* :class:`Tally` -- sample statistics of observations (packet delays,
  per-session throughput) using Welford's online algorithm.
* :class:`TimeWeightedStatistic` -- time averages of piecewise-constant
  signals (buffer occupancy, channels in use, active sessions).
* :class:`Counter` -- plain event counters (generated / lost / served packets)
  with rate helpers.
"""

from __future__ import annotations

import math

__all__ = ["Tally", "TimeWeightedStatistic", "Counter"]


class Tally:
    """Online sample statistics (count, mean, variance, extrema) of observations."""

    def __init__(self, name: str | None = None) -> None:
        self.name = name or "tally"
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._minimum = math.inf
        self._maximum = -math.inf

    def record(self, value: float) -> None:
        """Add one observation."""
        value = float(value)
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._minimum = min(self._minimum, value)
        self._maximum = max(self._maximum, value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when no observations were recorded)."""
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 for fewer than two observations)."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def standard_deviation(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if self._count == 0:
            raise ValueError("no observations recorded")
        return self._minimum

    @property
    def maximum(self) -> float:
        if self._count == 0:
            raise ValueError("no observations recorded")
        return self._maximum

    def reset(self) -> None:
        """Discard all recorded observations."""
        self.__init__(self.name)


class TimeWeightedStatistic:
    """Time average of a piecewise-constant signal.

    The collector is updated whenever the signal changes value; between
    updates the signal is assumed constant.  The time average over the
    observation window ``[start, last update or query time]`` is exposed via
    :meth:`time_average`.
    """

    def __init__(self, initial_value: float = 0.0, start_time: float = 0.0,
                 name: str | None = None) -> None:
        self.name = name or "time-weighted"
        self._value = float(initial_value)
        self._start_time = float(start_time)
        self._last_time = float(start_time)
        self._weighted_sum = 0.0
        self._maximum = float(initial_value)

    @property
    def current_value(self) -> float:
        return self._value

    @property
    def maximum(self) -> float:
        """Largest value the signal has taken so far."""
        return self._maximum

    def update(self, value: float, time: float) -> None:
        """Record that the signal changed to ``value`` at simulation ``time``."""
        if time < self._last_time:
            raise ValueError(
                f"updates must be non-decreasing in time ({time} < {self._last_time})"
            )
        self._weighted_sum += self._value * (time - self._last_time)
        self._value = float(value)
        self._last_time = time
        self._maximum = max(self._maximum, self._value)

    def time_average(self, time: float | None = None) -> float:
        """Return the time average up to ``time`` (defaults to the last update time)."""
        end = self._last_time if time is None else float(time)
        if end < self._last_time:
            raise ValueError("query time lies before the last recorded update")
        window = end - self._start_time
        if window <= 0:
            return self._value
        return (self._weighted_sum + self._value * (end - self._last_time)) / window

    def reset(self, time: float, value: float | None = None) -> None:
        """Restart the observation window at ``time`` (used to discard warm-up)."""
        if value is not None:
            self._value = float(value)
        self._start_time = time
        self._last_time = time
        self._weighted_sum = 0.0
        self._maximum = self._value


class Counter:
    """A named integer counter with a rate helper."""

    def __init__(self, name: str | None = None) -> None:
        self.name = name or "counter"
        self._count = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("cannot increment by a negative amount")
        self._count += amount

    @property
    def count(self) -> int:
        return self._count

    def rate(self, elapsed_time: float) -> float:
        """Return the count divided by an elapsed time (0.0 for a zero window)."""
        if elapsed_time < 0:
            raise ValueError("elapsed time must be non-negative")
        if elapsed_time == 0:
            return 0.0
        return self._count / elapsed_time

    def reset(self) -> None:
        self._count = 0
