"""Process-oriented discrete-event simulation kernel.

The validation simulator of the paper was written with the proprietary CSIM
library; this subpackage is the from-scratch substitute.  It provides the same
modelling primitives:

* :class:`~repro.des.engine.SimulationEngine` -- event calendar and clock,
* :class:`~repro.des.process.Process` -- generator-based simulation processes
  that ``yield`` timeouts, events and resource requests,
* :class:`~repro.des.resources.Resource` / :class:`~repro.des.resources.Buffer`
  -- counting resources (channel pools) and finite FIFO buffers,
* :mod:`~repro.des.random_variates` -- seeded random-variate streams
  (exponential, geometric, uniform, deterministic, hyperexponential),
* :mod:`~repro.des.statistics` -- tallies, time-weighted statistics and
  counters,
* :mod:`~repro.des.batch_means` -- confidence intervals via the batch-means
  method used for the simulation curves in the paper.
"""

from repro.des.batch_means import BatchMeansEstimator, ConfidenceInterval
from repro.des.engine import SimulationEngine, SimulationError, Event
from repro.des.process import Process, ProcessInterrupt, Timeout, WaitEvent
from repro.des.random_variates import RandomVariateStream
from repro.des.resources import Buffer, BufferOverflow, Resource
from repro.des.statistics import Counter, Tally, TimeWeightedStatistic

__all__ = [
    "BatchMeansEstimator",
    "Buffer",
    "BufferOverflow",
    "ConfidenceInterval",
    "Counter",
    "Event",
    "Process",
    "ProcessInterrupt",
    "RandomVariateStream",
    "Resource",
    "SimulationEngine",
    "SimulationError",
    "Tally",
    "TimeWeightedStatistic",
    "Timeout",
    "WaitEvent",
]
