"""Generator-based simulation processes.

A simulation *process* is an ordinary Python generator driven by the
simulation engine.  The generator models the lifetime of an entity (a GSM
call, a GPRS session, a packet transmission) and suspends itself by yielding
one of:

* :class:`Timeout` -- resume after a simulated delay,
* an :class:`~repro.des.engine.Event` (or :class:`WaitEvent` wrapper) -- resume
  when the event triggers; the event's value is returned by the ``yield``,
* another :class:`Process` -- resume when that process finishes; its return
  value is returned by the ``yield``.

Processes may be interrupted (e.g. a GPRS transfer preempted by a voice call)
with :meth:`Process.interrupt`, which raises :class:`ProcessInterrupt` inside
the generator at its current suspension point.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass

from repro.des.engine import Event, SimulationEngine, SimulationError

__all__ = ["Process", "ProcessInterrupt", "Timeout", "WaitEvent"]


class ProcessInterrupt(Exception):
    """Raised inside a process generator when the process is interrupted."""

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


@dataclass(frozen=True)
class Timeout:
    """Yielded by a process to suspend itself for ``delay`` simulated time units."""

    delay: float
    value: object = None

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError("timeout delay must be non-negative")


@dataclass(frozen=True)
class WaitEvent:
    """Explicit wrapper for waiting on an event (yielding the bare event also works)."""

    event: Event


class Process:
    """A running simulation process wrapping a generator.

    Parameters
    ----------
    engine:
        The simulation engine driving this process.
    generator:
        The generator function's generator object.
    name:
        Optional name used in error messages and debugging output.

    The process starts at the current simulation time (scheduled with zero
    delay).  Its completion is itself an event: other processes may ``yield``
    a process to wait for it, and :attr:`completion` exposes the event
    directly.  The generator's ``return`` value becomes the completion value.
    """

    def __init__(
        self, engine: SimulationEngine, generator: Generator, name: str | None = None
    ) -> None:
        if not isinstance(generator, Generator):
            raise SimulationError(
                "Process requires a generator object; did you forget to call the "
                "generator function?"
            )
        self._engine = engine
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._completion = engine.event(name=f"{self.name}.completion")
        self._waiting_on: Event | None = None
        self._interrupt_pending: ProcessInterrupt | None = None
        engine.schedule(0.0, self._resume, None)

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def completion(self) -> Event:
        """Event triggered when the process finishes (value = generator return value)."""
        return self._completion

    @property
    def finished(self) -> bool:
        return self._completion.triggered

    @property
    def result(self) -> object:
        """Return value of the generator; only valid once :attr:`finished` is true."""
        if not self.finished:
            raise SimulationError(f"process {self.name} has not finished yet")
        return self._completion.value

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        state = "finished" if self.finished else "running"
        return f"Process({self.name}, {state})"

    # ------------------------------------------------------------------ #
    # Control
    # ------------------------------------------------------------------ #
    def interrupt(self, cause: object = None) -> None:
        """Interrupt the process at its current suspension point.

        The interruption is delivered the next time the engine resumes the
        process (scheduled with zero delay), raising :class:`ProcessInterrupt`
        inside the generator.  Interrupting a finished process is a no-op.
        """
        if self.finished:
            return
        self._interrupt_pending = ProcessInterrupt(cause)
        self._engine.schedule(0.0, self._deliver_interrupt)

    def _deliver_interrupt(self) -> None:
        if self.finished or self._interrupt_pending is None:
            return
        interrupt = self._interrupt_pending
        self._interrupt_pending = None
        # Detach from whatever the process was waiting on; the stale callback
        # is ignored because _waiting_on no longer matches.
        self._waiting_on = None
        self._advance(interrupt, throw=True)

    # ------------------------------------------------------------------ #
    # Generator driving
    # ------------------------------------------------------------------ #
    def _resume(self, value: object, source: Event | None = None) -> None:
        if self.finished:
            return
        if source is not None and source is not self._waiting_on:
            # A stale wake-up (e.g. the process was interrupted while waiting).
            return
        self._waiting_on = None
        self._advance(value, throw=False)

    def _advance(self, value: object, *, throw: bool) -> None:
        try:
            if throw:
                command = self._generator.throw(value)
            else:
                command = self._generator.send(value)
        except StopIteration as stop:
            self._completion.succeed(stop.value)
            return
        except ProcessInterrupt:
            # The generator chose not to handle the interrupt: terminate quietly.
            self._completion.succeed(None)
            return
        self._dispatch(command)

    def _dispatch(self, command: object) -> None:
        if isinstance(command, Timeout):
            event = self._engine.timeout(command.delay, command.value)
        elif isinstance(command, WaitEvent):
            event = command.event
        elif isinstance(command, Event):
            event = command
        elif isinstance(command, Process):
            event = command.completion
        else:
            raise SimulationError(
                f"process {self.name} yielded an unsupported value: {command!r}; "
                "yield a Timeout, Event, WaitEvent or Process"
            )
        self._waiting_on = event
        event.add_callback(lambda value, source=event: self._resume(value, source))
