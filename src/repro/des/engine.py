"""Event calendar and simulation clock.

The engine keeps a binary heap of scheduled callbacks ordered by simulation
time (ties broken by insertion order, so the execution order is deterministic)
and exposes the primitives the rest of the kernel is built on:

* :meth:`SimulationEngine.schedule` -- run a callback after a delay,
* :class:`Event` -- a one-shot occurrence processes can wait for,
* :meth:`SimulationEngine.run` -- advance the clock until a time limit or
  until no events remain.

Processes (generator-based coroutines) are layered on top in
:mod:`repro.des.process`.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable

__all__ = ["Event", "SimulationEngine", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation kernel."""


class Event:
    """A one-shot event that callbacks (and processes) can wait on.

    An event starts *pending*; calling :meth:`succeed` marks it triggered,
    stores an optional value and schedules all registered callbacks to run at
    the current simulation time.  Callbacks added after the event triggered are
    scheduled immediately.
    """

    __slots__ = ("_engine", "_callbacks", "_triggered", "_value", "name")

    def __init__(self, engine: "SimulationEngine", name: str | None = None) -> None:
        self._engine = engine
        self._callbacks: list[Callable[[object], None]] = []
        self._triggered = False
        self._value: object = None
        self.name = name

    @property
    def triggered(self) -> bool:
        """Whether :meth:`succeed` has been called."""
        return self._triggered

    @property
    def value(self) -> object:
        """The value passed to :meth:`succeed` (``None`` while pending)."""
        return self._value

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event, delivering ``value`` to all waiting callbacks."""
        if self._triggered:
            raise SimulationError(f"event {self.name or id(self)} has already been triggered")
        self._triggered = True
        self._value = value
        for callback in self._callbacks:
            self._engine.schedule(0.0, callback, value)
        self._callbacks.clear()
        return self

    def add_callback(self, callback: Callable[[object], None]) -> None:
        """Register ``callback(value)`` to run when the event triggers."""
        if self._triggered:
            self._engine.schedule(0.0, callback, self._value)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        state = "triggered" if self._triggered else "pending"
        return f"Event({self.name or hex(id(self))}, {state})"


class SimulationEngine:
    """Discrete-event simulation clock and calendar.

    Example
    -------
    >>> engine = SimulationEngine()
    >>> times = []
    >>> engine.schedule(2.0, lambda: times.append(engine.now))
    >>> engine.schedule(1.0, lambda: times.append(engine.now))
    >>> engine.run()
    >>> times
    [1.0, 2.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[tuple[float, int, Callable, tuple]] = []
        self._sequence = 0
        self._processed_events = 0

    # ------------------------------------------------------------------ #
    # Clock
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of scheduled callbacks not yet executed."""
        return len(self._queue)

    @property
    def processed_events(self) -> int:
        """Number of callbacks executed since the engine was created."""
        return self._processed_events

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, delay: float, callback: Callable, *args) -> None:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        self._sequence += 1
        heapq.heappush(self._queue, (self._now + delay, self._sequence, callback, args))

    def schedule_at(self, time: float, callback: Callable, *args) -> None:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        self.schedule(time - self._now, callback, *args)

    def event(self, name: str | None = None) -> Event:
        """Create a new pending :class:`Event` bound to this engine."""
        return Event(self, name)

    def timeout(self, delay: float, value: object = None) -> Event:
        """Return an event that triggers automatically after ``delay`` time units."""
        event = self.event(name=f"timeout({delay})")
        self.schedule(delay, event.succeed, value)
        return event

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Execute the next scheduled callback; return ``False`` if none remain."""
        if not self._queue:
            return False
        time, _, callback, args = heapq.heappop(self._queue)
        if time < self._now:
            raise SimulationError("event calendar corrupted: time went backwards")
        self._now = time
        self._processed_events += 1
        callback(*args)
        return True

    def peek(self) -> float:
        """Return the time of the next scheduled callback (``inf`` when idle)."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (the clock is then set to
            exactly ``until``).  When omitted the simulation runs until the
            calendar is empty.
        max_events:
            Optional safety limit on the number of callbacks executed.

        Returns
        -------
        float
            The simulation time when the run stopped.
        """
        executed = 0
        while self._queue:
            if until is not None and self.peek() > until:
                self._now = until
                return self._now
            if max_events is not None and executed >= max_events:
                return self._now
            self.step()
            executed += 1
        if until is not None and self._now < until:
            self._now = until
        return self._now
