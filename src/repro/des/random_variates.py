"""Seeded random-variate streams for discrete-event simulation.

A :class:`RandomVariateStream` wraps a ``numpy.random.Generator`` and exposes
the distributions the GPRS simulator needs (exponential holding times,
geometric packet counts, uniform routing choices).  Streams can be *spawned*
into statistically independent child streams so that, for example, the voice
traffic of every cell uses its own stream and results stay reproducible when
one part of the model changes.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["RandomVariateStream"]


class RandomVariateStream:
    """Reproducible stream of random variates.

    Parameters
    ----------
    seed:
        Seed for the underlying PCG64 generator, or an existing
        ``numpy.random.SeedSequence`` / ``Generator``.
    """

    def __init__(self, seed: int | np.random.SeedSequence | np.random.Generator | None = None):
        if isinstance(seed, np.random.Generator):
            self._rng = seed
            self._seed_sequence = None
        else:
            self._seed_sequence = (
                seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
            )
            self._rng = np.random.default_rng(self._seed_sequence)

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator (for distributions not wrapped here)."""
        return self._rng

    def spawn(self, count: int) -> list["RandomVariateStream"]:
        """Return ``count`` statistically independent child streams."""
        if count < 1:
            raise ValueError("count must be at least 1")
        if self._seed_sequence is None:
            # Fall back to jumping the generator's bit stream.
            return [RandomVariateStream(np.random.default_rng(self._rng.integers(2**63)))
                    for _ in range(count)]
        return [RandomVariateStream(child) for child in self._seed_sequence.spawn(count)]

    # ------------------------------------------------------------------ #
    # Distributions
    # ------------------------------------------------------------------ #
    def exponential(self, mean: float) -> float:
        """Exponential variate with the given mean."""
        if mean < 0:
            raise ValueError("mean must be non-negative")
        if mean == 0:
            return 0.0
        return float(self._rng.exponential(mean))

    def exponential_rate(self, rate: float) -> float:
        """Exponential variate with the given *rate* (mean ``1 / rate``)."""
        if rate <= 0:
            raise ValueError("rate must be positive")
        return float(self._rng.exponential(1.0 / rate))

    def geometric(self, mean: float) -> int:
        """Geometric variate with support ``{1, 2, ...}`` and the given mean."""
        if mean < 1:
            raise ValueError("mean of a geometric variate on {1, 2, ...} must be >= 1")
        if mean == 1:
            return 1
        return int(self._rng.geometric(1.0 / mean))

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Uniform variate on ``[low, high)``."""
        if high < low:
            raise ValueError("high must be at least low")
        return float(self._rng.uniform(low, high))

    def integer(self, low: int, high: int) -> int:
        """Uniform integer on ``[low, high]`` inclusive."""
        if high < low:
            raise ValueError("high must be at least low")
        return int(self._rng.integers(low, high + 1))

    def choice(self, options: Sequence):
        """Return a uniformly chosen element of ``options``."""
        if len(options) == 0:
            raise ValueError("options must not be empty")
        return options[int(self._rng.integers(len(options)))]

    def bernoulli(self, probability: float) -> bool:
        """Return ``True`` with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be between 0 and 1")
        return bool(self._rng.random() < probability)

    def hyperexponential(self, means: Sequence[float], probabilities: Sequence[float]) -> float:
        """Hyperexponential variate: exponential with mean chosen by a discrete mixture."""
        if len(means) != len(probabilities) or not means:
            raise ValueError("means and probabilities must be non-empty and equally long")
        total = float(np.sum(probabilities))
        if abs(total - 1.0) > 1e-9:
            raise ValueError("probabilities must sum to one")
        index = int(self._rng.choice(len(means), p=np.asarray(probabilities) / total))
        return self.exponential(means[index])

    def erlang(self, shape: int, mean: float) -> float:
        """Erlang-``shape`` variate with the given overall mean."""
        if shape < 1:
            raise ValueError("shape must be at least 1")
        if mean <= 0:
            raise ValueError("mean must be positive")
        return float(self._rng.gamma(shape, mean / shape))
