"""Command-line interface of the GPRS reproduction.

Usage (installed as ``gprs-repro`` or via ``python -m repro``)::

    gprs-repro list                      # tables/figures and runtime scenarios
    gprs-repro list --kind network       # only the multi-cell scenarios
    gprs-repro run figure12              # regenerate figure 12 (scaled preset)
    gprs-repro run figure7 --preset paper --jobs 4
    gprs-repro sweep heavy-gprs --jobs 4 # parallel scenario sweep (cached)
    gprs-repro sweep figure12 --preset paper --json
    gprs-repro network hotspot-cluster --jobs 4   # per-cell network sweep
    gprs-repro transient busy-hour-ramp --rate 0.5  # QoS trajectory over time
    gprs-repro solve --arrival-rate 0.5 --gprs-fraction 0.05 --reserved-pdch 2
    gprs-repro simulate --arrival-rate 0.5 --time 5000

``run`` reproduces a table or figure of the paper, ``sweep`` executes a
registered runtime scenario through the parallel, cache-aware executor
(network scenarios report network-mean measures, transient scenarios their
time-averaged measures), ``network`` sweeps a multi-cell scenario with
per-cell detail (the analytic handover-coupled network model of
:mod:`repro.network`), ``transient`` solves a non-stationary scenario's
QoS trajectory over time (:mod:`repro.transient`), ``solve`` evaluates the
analytical model for a single configuration and ``simulate`` runs the
discrete-event simulator for one configuration.

``run``, ``sweep``, ``network`` and ``transient`` consult a
content-addressed result cache (default
``~/.cache/gprs-repro``; override with ``--cache-dir`` or the
``GPRS_REPRO_CACHE_DIR`` environment variable, disable with ``--no-cache``),
so repeated and incremental runs skip already-solved sweep points.  Sweeps
are solved incrementally in chunks of adjacent arrival rates that share one
generator template and warm-start each other (``--chunk-size`` sets the
chunk length; ``--cold`` disables warm-starting for A/B timing).  Network
sweeps can additionally pipeline points x cells through one shared job pool
(``network <name> --pipelined --jobs N``), and transient trajectories serve
repeated identical segments from the in-process propagator cache (reported
as "propagator replay(s)").

Observability (:mod:`repro.obs`): ``run``, ``sweep``, ``network``,
``transient`` and ``solve`` accept ``--trace`` (print hierarchical span
totals), ``--metrics`` (print the run's counter/gauge/histogram deltas) and
``--ledger PATH`` (append one schema-versioned JSONL record to PATH);
``gprs-repro report PATH`` renders a ledger record (top spans plus
counters) and ``report PATH --compare OTHER`` diffs the latest records of
two ledgers.  Instrumentation never changes numbers: results are bitwise
identical with and without these flags.

Fault tolerance (:mod:`repro.runtime.resilience`): parallel tasks are
retried with backoff on worker death and OS errors (``--max-attempts``),
bounded by per-task deadlines (``--task-timeout``); a task that exhausts
its budget becomes a per-point failure warning and exit code 3 (``--strict``
restores fail-fast).  ``--checkpoint PATH`` journals completed points so an
interrupted sweep resumes from cache, and ``--inject-faults SPEC`` (or
``$REPRO_FAULTS``) deterministically injects worker kills, timeouts, raised
errors and cache corruption for testing the recovery paths.

Artifact store and service mode (:mod:`repro.store`, :mod:`repro.service`):
binary intermediates (propagator replay checkpoints, generator templates,
coarse solver operators) persist across *processes* in a content-addressed
store (``--store-dir`` or ``$REPRO_STORE_DIR``; off by default for one-shot
commands, ``--no-store`` forces it off).  ``gprs-repro serve`` keeps the
store's memory tier, the result cache and a worker pool hot in one
long-lived process and answers JSON scenario requests over HTTP;
``gprs-repro client`` talks to it.  ``--canonical`` prints the
provenance-free rendering of a result -- byte-identical across cold, warm
and served runs -- and ``--warm-seeds`` opts into store-seeded solver
starts (tolerance-level, not bitwise, hence opt-in).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.core.model import GprsMarkovModel
from repro.core.parameters import GprsModelParameters
from repro.experiments.reporting import (
    format_network_result,
    format_scenario_result,
    format_table,
    format_transient_result,
)
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.experiments.scale import ExperimentScale
from repro.network.sweep import run_network_sweep
from repro.transient.sweep import run_transient_sweep
from repro.runtime import ResultCache, default_cache_dir, list_scenarios, run_sweep, scenario
from repro.simulator.config import SimulationConfig, TcpConfig
from repro.simulator.simulation import GprsNetworkSimulator
from repro.traffic.presets import traffic_model

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser of the ``gprs-repro`` command."""
    parser = argparse.ArgumentParser(
        prog="gprs-repro",
        description="Reproduction of 'Performance Analysis of the General Packet "
        "Radio Service' (Lindemann & Thuemmler).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list all regenerable tables/figures and runtime scenarios"
    )
    list_parser.add_argument(
        "--kind",
        choices=("figures", "scenarios", "network", "transient"),
        default=None,
        help="restrict the listing: paper tables/figures, single-cell "
        "scenarios, multi-cell network scenarios, or non-stationary "
        "transient scenarios",
    )

    run_parser = subparsers.add_parser("run", help="regenerate a table or figure")
    run_parser.add_argument("experiment", help="experiment name, e.g. figure12 or table2")
    run_parser.add_argument(
        "--preset",
        choices=("smoke", "default", "paper"),
        default="default",
        help="experiment scale (paper = full Table 2/3 sizes)",
    )
    _add_runtime_arguments(run_parser)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a registered runtime scenario (parallel, cached)"
    )
    sweep_parser.add_argument(
        "scenario", help="scenario name, e.g. figure12 or heavy-gprs (see 'list')"
    )
    sweep_parser.add_argument(
        "--preset",
        choices=("smoke", "default", "paper"),
        default="default",
        help="experiment scale applied to the scenario",
    )
    sweep_parser.add_argument(
        "--json", action="store_true", help="emit the full result as JSON"
    )
    sweep_parser.add_argument(
        "--canonical", action="store_true",
        help="emit the provenance-free canonical JSON (byte-identical "
        "across cold, warm and served runs)",
    )
    _add_runtime_arguments(sweep_parser)

    network_parser = subparsers.add_parser(
        "network",
        help="sweep a multi-cell network scenario (per-cell detail)",
    )
    network_parser.add_argument(
        "scenario",
        help="network scenario name, e.g. hotspot-cluster (see 'list --kind network')",
    )
    network_parser.add_argument(
        "--preset",
        choices=("smoke", "default", "paper"),
        default="default",
        help="experiment scale applied to the base cell",
    )
    network_parser.add_argument(
        "--json", action="store_true", help="emit the full result as JSON"
    )
    network_parser.add_argument(
        "--canonical", action="store_true",
        help="emit the provenance-free canonical JSON (byte-identical "
        "across cold, warm and served runs)",
    )
    network_parser.add_argument(
        "--pipelined", action="store_true",
        help="schedule points x cells through one shared job pool (points "
        "solved independently; bitwise identical for any --jobs)",
    )
    # Network sweeps have no point-chunking (cells parallelise within a
    # point), so the --chunk-size knob would be a silent no-op here.
    _add_runtime_arguments(network_parser, chunking=False)

    transient_parser = subparsers.add_parser(
        "transient",
        help="solve a non-stationary scenario's QoS trajectory over time",
    )
    transient_parser.add_argument(
        "scenario",
        help="transient scenario name, e.g. busy-hour-ramp "
        "(see 'list --kind transient')",
    )
    transient_parser.add_argument(
        "--preset",
        choices=("smoke", "default", "paper"),
        default="default",
        help="experiment scale applied to the base cell",
    )
    transient_parser.add_argument(
        "--rate",
        type=float,
        default=None,
        help="solve only this base arrival rate (calls/s) instead of the "
        "preset's whole sweep axis",
    )
    transient_parser.add_argument(
        "--json", action="store_true", help="emit the full result as JSON"
    )
    transient_parser.add_argument(
        "--canonical", action="store_true",
        help="emit the provenance-free canonical JSON (byte-identical "
        "across cold, warm and served runs)",
    )
    # Transient sweeps have no point-chunking (whole trajectories
    # parallelise); --cold maps to per-segment template rebuilds (a pure
    # construction-cost A/B -- trajectories are bitwise identical).
    _add_runtime_arguments(transient_parser, chunking=False)

    solve_parser = subparsers.add_parser(
        "solve", help="solve the analytical model for one configuration"
    )
    _add_model_arguments(solve_parser)
    solve_parser.add_argument(
        "--solver", default="auto", help="steady-state solver (auto, structured, direct, ...)"
    )
    _add_obs_arguments(solve_parser)

    report_parser = subparsers.add_parser(
        "report", help="render a run-ledger record (top spans and counters)"
    )
    report_parser.add_argument("ledger", type=Path, help="run-ledger JSONL file")
    report_parser.add_argument(
        "--index", type=int, default=-1,
        help="record to render (default -1 = the latest)",
    )
    report_parser.add_argument(
        "--top", type=int, default=10, help="span names to show (default 10)"
    )
    report_parser.add_argument(
        "--compare", type=Path, default=None,
        help="second ledger: diff its latest record against this one's",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the long-lived scenario service (warm store, cache and "
        "worker pool; JSON over HTTP)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address (default 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=8754,
                              help="TCP port (default 8754; 0 = ephemeral)")
    serve_parser.add_argument("--jobs", type=int, default=1,
                              help="persistent worker processes shared by "
                              "network-sweep requests (1 = serial)")
    serve_parser.add_argument("--no-cache", action="store_true",
                              help="serve without the result cache")
    serve_parser.add_argument("--cache-dir", type=Path, default=None,
                              help="result cache directory (default: "
                              "~/.cache/gprs-repro or $GPRS_REPRO_CACHE_DIR/"
                              "$REPRO_CACHE_DIR)")
    serve_parser.add_argument("--store-dir", type=Path, default=None,
                              help="artifact store directory (default: "
                              "<cache-dir>/store or $REPRO_STORE_DIR)")
    serve_parser.add_argument("--no-store", action="store_true",
                              help="serve without the artifact store "
                              "(result cache only)")
    serve_parser.add_argument("--service-workers", type=int, default=1,
                              help="concurrent solver threads consuming the "
                              "admission queue (default 1)")
    serve_parser.add_argument("--max-queue", type=int, default=32,
                              help="waiting requests admitted before the "
                              "service answers 429 (default 32)")
    serve_parser.add_argument("--max-inflight", type=int, default=None,
                              help="cap on queued + running requests "
                              "(default: workers + max-queue)")
    serve_parser.add_argument("--request-timeout", type=float, default=None,
                              help="per-request deadline in seconds; expired "
                              "waiters get 504 (also bounds pool task time)")
    serve_parser.add_argument("--drain-timeout", type=float, default=30.0,
                              help="seconds graceful shutdown waits for "
                              "in-flight solves (default 30)")
    serve_parser.add_argument("--journal", type=Path, default=None,
                              help="crash-consistent request journal (JSONL); "
                              "admitted-but-unanswered requests are replayed "
                              "into the cache on restart")

    client_parser = subparsers.add_parser(
        "client", help="talk to a running 'gprs-repro serve' instance"
    )
    client_parser.add_argument(
        "action", choices=("run", "batch", "stats", "health", "shutdown"),
        help="run one request, post a batch file, or inspect/stop the server",
    )
    client_parser.add_argument(
        "kind", nargs="?", choices=("sweep", "network", "transient"),
        help="for 'run': which sweep kind to request",
    )
    client_parser.add_argument(
        "scenario", nargs="?", help="for 'run': the scenario name"
    )
    client_parser.add_argument("--url", default=None,
                               help="service URL (overrides --host/--port)")
    client_parser.add_argument("--host", default="127.0.0.1",
                               help="service host (default 127.0.0.1)")
    client_parser.add_argument("--port", type=int, default=8754,
                               help="service port (default 8754)")
    client_parser.add_argument("--preset",
                               choices=("smoke", "default", "paper"),
                               default="default",
                               help="experiment scale of the request")
    client_parser.add_argument("--rate", type=float, default=None,
                               help="transient requests: solve only this "
                               "base arrival rate")
    client_parser.add_argument("--pipelined", action="store_true",
                               help="network requests: schedule points x "
                               "cells through the shared pool")
    client_parser.add_argument("--no-request-cache", action="store_true",
                               help="ask the server to bypass its result "
                               "cache for this request (the warm artifact "
                               "store still applies)")
    client_parser.add_argument("--canonical", action="store_true",
                               help="print the provenance-free canonical "
                               "JSON (byte-identical to CLI --canonical)")
    client_parser.add_argument("--json", action="store_true",
                               help="print the server's full JSON response "
                               "(payload, metrics delta, timing)")
    client_parser.add_argument("--batch-file", type=Path, default=None,
                               help="for 'batch': JSON file holding the "
                               "request list ('-' = stdin)")
    client_parser.add_argument("--timeout", type=float, default=600.0,
                               help="per-request HTTP timeout in seconds")
    client_parser.add_argument("--retries", type=int, default=0,
                               help="extra attempts after a retryable "
                               "failure (connection error, 429 honouring "
                               "Retry-After, 503); shutdown is never "
                               "retried")

    simulate_parser = subparsers.add_parser(
        "simulate", help="run the network-level simulator for one configuration"
    )
    _add_model_arguments(simulate_parser)
    simulate_parser.add_argument("--time", type=float, default=5000.0,
                                 help="measured simulation time in seconds")
    simulate_parser.add_argument("--warmup", type=float, default=500.0,
                                 help="warm-up time in seconds")
    simulate_parser.add_argument("--cells", type=int, default=7, help="cells in the cluster")
    simulate_parser.add_argument("--batches", type=int, default=5,
                                 help="batches for confidence intervals")
    simulate_parser.add_argument("--seed", type=int, default=20020527, help="random seed")
    simulate_parser.add_argument("--no-tcp", action="store_true",
                                 help="disable TCP flow control")
    return parser


def _add_runtime_arguments(
    parser: argparse.ArgumentParser, *, chunking: bool = True
) -> None:
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache for this invocation")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="result cache directory (default: ~/.cache/gprs-repro "
                        "or $GPRS_REPRO_CACHE_DIR)")
    parser.add_argument("--cold", action="store_true",
                        help="disable sweep-aware warm-starting (solver and "
                        "handover continuation) for A/B timing")
    parser.add_argument("--store-dir", type=Path, default=None,
                        help="enable the cross-process artifact store at this "
                        "directory (also via $REPRO_STORE_DIR)")
    parser.add_argument("--no-store", action="store_true",
                        help="disable the artifact store even if "
                        "$REPRO_STORE_DIR is set")
    if chunking:
        parser.add_argument("--chunk-size", type=int, default=None,
                            help="adjacent sweep points per warm-started chunk "
                            "(also the parallel scheduling unit; default 8)")
        parser.add_argument("--warm-seeds", action="store_true",
                            help="seed each chunk's first solve from the "
                            "store's persisted distribution stack (opt-in: "
                            "tolerance-level, not bitwise)")
    parser.add_argument("--max-attempts", type=int, default=None,
                        help="attempts per task before it is recorded as a "
                        "failure (default 3; retried tasks re-run the "
                        "identical payload)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        help="per-task deadline in seconds (parallel runs "
                        "only); timed-out tasks are retried, then recorded "
                        "as failures")
    parser.add_argument("--strict", action="store_true",
                        help="fail fast: abort on the first task that "
                        "exhausts its retries instead of recording a "
                        "per-point failure")
    parser.add_argument("--checkpoint", type=Path, default=None,
                        help="JSONL sweep checkpoint: completed points are "
                        "journaled so an interrupted run resumes from cache "
                        "(requires the result cache)")
    parser.add_argument("--inject-faults", default=None, metavar="SPEC",
                        help="deterministic fault injection, e.g. "
                        "'chunk@1=kill,cell@2=timeout:5,cache@0=corrupt' "
                        "(testing; also via $REPRO_FAULTS)")
    _add_obs_arguments(parser)


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", action="store_true",
                        help="collect hierarchical spans and print their "
                        "per-name totals after the run (results are bitwise "
                        "identical with or without tracing)")
    parser.add_argument("--metrics", action="store_true",
                        help="print the run's counter/gauge/histogram deltas")
    parser.add_argument("--ledger", type=Path, default=None,
                        help="append one schema-versioned JSONL run record "
                        "(spans, metrics, spec digest, environment) to this file")


def _cache_from_args(args: argparse.Namespace) -> ResultCache | None:
    if args.no_cache:
        return None
    return ResultCache(args.cache_dir if args.cache_dir is not None else default_cache_dir())


def _store_from_args(args: argparse.Namespace):
    """Resolve the artifact store of one runtime command.

    ``--no-store`` wins, then ``--store-dir`` (exported to
    ``$REPRO_STORE_DIR`` so worker processes inherit it), then the ambient
    environment-derived store.  One-shot commands default to *no* store --
    the cross-process tier is opt-in outside ``serve``.
    """
    from repro.store import STORE_DIR_ENV, ArtifactStore, current_store

    if getattr(args, "no_store", False):
        return None
    if getattr(args, "store_dir", None) is not None:
        os.environ[STORE_DIR_ENV] = str(args.store_dir)
        return ArtifactStore(Path(args.store_dir))
    return current_store()


def _resilience_from_args(args: argparse.Namespace) -> dict:
    """The retry/timeout/strict/checkpoint kwargs of one runtime command."""
    from repro.runtime.resilience import RetryPolicy, SweepCheckpoint

    retry = None
    if getattr(args, "max_attempts", None) is not None:
        if args.max_attempts < 1:
            raise ValueError("--max-attempts must be at least 1")
        retry = RetryPolicy(max_attempts=args.max_attempts)
    checkpoint = None
    if getattr(args, "checkpoint", None) is not None:
        if args.no_cache:
            raise ValueError(
                "--checkpoint needs the result cache (drop --no-cache): "
                "resumption serves checkpointed points from cache"
            )
        checkpoint = SweepCheckpoint.load(args.checkpoint)
    return {
        "retry": retry,
        "task_timeout": getattr(args, "task_timeout", None),
        "strict": bool(getattr(args, "strict", False)),
        "checkpoint": checkpoint,
    }


def _report_failures(failures) -> int:
    """Print per-point failure warnings; exit code 3 marks a partial result."""
    for failure in failures:
        points = (
            f" (sweep point(s) {', '.join(str(p) for p in failure.points)})"
            if failure.points
            else ""
        )
        print(
            f"warning: {failure.site} task {failure.index} failed after "
            f"{failure.attempts} attempt(s): {failure.error_type}: "
            f"{failure.message}{points}",
            file=sys.stderr,
        )
    return 3 if failures else 0


def _add_model_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--arrival-rate", type=float, required=True,
                        help="total GSM/GPRS call arrival rate in calls per second")
    parser.add_argument("--traffic-model", type=int, choices=(1, 2, 3), default=3,
                        help="traffic model of Table 3")
    parser.add_argument("--gprs-fraction", type=float, default=0.05,
                        help="fraction of arriving calls that are GPRS sessions")
    parser.add_argument("--reserved-pdch", type=int, default=1,
                        help="number of PDCHs permanently reserved for GPRS")
    parser.add_argument("--buffer-size", type=int, default=None,
                        help="BSC buffer size K (defaults to the paper value of 100)")
    parser.add_argument("--max-sessions", type=int, default=None,
                        help="admission cap M (defaults to the traffic model value)")
    parser.add_argument("--eta", type=float, default=0.7, help="TCP threshold eta")


def _parameters_from_args(args: argparse.Namespace) -> GprsModelParameters:
    overrides = {
        "gprs_fraction": args.gprs_fraction,
        "reserved_pdch": args.reserved_pdch,
        "tcp_threshold": args.eta,
    }
    if args.buffer_size is not None:
        overrides["buffer_size"] = args.buffer_size
    if args.max_sessions is not None:
        overrides["max_gprs_sessions"] = args.max_sessions
    return GprsModelParameters.from_traffic_model(
        traffic_model(args.traffic_model), args.arrival_rate, **overrides
    )


def _serve_command(args: argparse.Namespace) -> int:
    """Start the long-lived scenario service (``gprs-repro serve``)."""
    from repro.service import ScenarioService, serve
    from repro.store import STORE_DIR_ENV, ArtifactStore, default_store_dir

    cache = _cache_from_args(args)
    store = None
    if not args.no_store:
        # The store is the point of serve mode, so it defaults ON here
        # (one-shot commands default OFF).  Exporting the directory lets
        # pool workers read and write the same store.
        store_dir = args.store_dir if args.store_dir is not None else default_store_dir()
        os.environ[STORE_DIR_ENV] = str(store_dir)
        store = ArtifactStore(Path(store_dir))
    service = ScenarioService(
        jobs=args.jobs,
        cache=cache,
        store=store,
        workers=args.service_workers,
        max_queue=args.max_queue,
        max_inflight=args.max_inflight,
        request_timeout=args.request_timeout,
        drain_timeout=args.drain_timeout,
        journal_path=args.journal,
    )
    return serve(service, args.host, args.port)


def _print_client_response(args: argparse.Namespace, response: dict) -> int:
    """Render one /run response the way the flags ask; returns exit code."""
    if not response.get("ok"):
        print(f"error: {response.get('error', 'request failed')}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(response, indent=2, sort_keys=True))
    elif args.canonical:
        print(response["canonical"])
    else:
        print(response["output"])
    return 3 if response.get("failures") else 0


def _client_command(args: argparse.Namespace) -> int:
    """Talk to a running service (``gprs-repro client``)."""
    from repro.service import ServiceClient, ServiceError

    url = args.url if args.url is not None else f"http://{args.host}:{args.port}"
    client = ServiceClient(url, timeout=args.timeout, retries=args.retries)
    try:
        if args.action == "health":
            print(json.dumps(client.health(), indent=2, sort_keys=True))
            return 0
        if args.action == "stats":
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if args.action == "shutdown":
            print(json.dumps(client.shutdown(), indent=2, sort_keys=True))
            return 0
        if args.action == "run":
            if args.kind is None or args.scenario is None:
                print(
                    "error: 'client run' needs a kind and a scenario, e.g. "
                    "'client run transient diurnal-24h'",
                    file=sys.stderr,
                )
                return 2
            response = client.run(
                {
                    "command": args.kind,
                    "scenario": args.scenario,
                    "preset": args.preset,
                    "rate": args.rate,
                    "pipelined": args.pipelined,
                    "cache": not args.no_request_cache,
                }
            )
            return _print_client_response(args, response)
        # batch
        if args.batch_file is None:
            print("error: 'client batch' needs --batch-file", file=sys.stderr)
            return 2
        text = (
            sys.stdin.read()
            if str(args.batch_file) == "-"
            else args.batch_file.read_text(encoding="utf-8")
        )
        requests = json.loads(text)
        if not isinstance(requests, list):
            print("error: batch file must hold a JSON list", file=sys.stderr)
            return 2
        reply = client.batch(requests)
        if args.json:
            print(json.dumps(reply, indent=2, sort_keys=True))
            return 0 if reply.get("ok") else 2
        code = 0
        for response in reply.get("responses", ()):
            code = max(code, _print_client_response(args, response))
        return code
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _report_command(args: argparse.Namespace) -> int:
    """Render (or diff) run-ledger records for ``gprs-repro report``."""
    from repro import obs

    try:
        if args.compare is not None:
            diff = obs.compare(str(args.ledger), str(args.compare))
            print(obs.render_compare(diff, top=args.top))
            return 0
        records = obs.read_ledger(str(args.ledger))
        if not records:
            print(f"error: {args.ledger}: ledger holds no records", file=sys.stderr)
            return 2
        try:
            record = records[args.index]
        except IndexError:
            print(
                f"error: {args.ledger}: no record at index {args.index} "
                f"({len(records)} available)",
                file=sys.stderr,
            )
            return 2
        print(obs.render_report(record, top=args.top))
        return 0
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _spec_payload(args: argparse.Namespace):
    """The resolved spec a ledger record's digest is computed over."""
    if args.command in ("sweep", "network", "transient"):
        try:
            return scenario(args.scenario).to_dict()
        except (KeyError, ValueError):
            return {"scenario": args.scenario}
    if args.command == "run":
        return {"experiment": args.experiment, "preset": args.preset}
    if args.command == "solve":
        from repro.runtime.spec import parameters_to_dict

        return parameters_to_dict(_parameters_from_args(args))
    return None


def _obs_args_summary(args: argparse.Namespace) -> dict:
    """The invocation knobs worth persisting in a ledger record."""
    summary = {}
    for name in ("jobs", "cold", "chunk_size", "pipelined", "rate", "solver",
                 "no_cache", "json", "canonical", "max_attempts",
                 "task_timeout", "strict", "checkpoint", "inject_faults",
                 "store_dir", "no_store", "warm_seeds"):
        value = getattr(args, name, None)
        if value not in (None, False):
            summary[name] = value if not isinstance(value, Path) else str(value)
    return summary


def _execute_with_obs(args: argparse.Namespace) -> int:
    """Run one command inside an observability session.

    Installs a live tracer with a root ``cli.<command>`` span (so span
    totals account for the whole command's wall time), snapshots the metrics
    registry around the run, then prints and/or persists what the flags
    asked for.  The solve itself is the very same :func:`_execute` path an
    uninstrumented invocation takes -- tracing changes no numbers.
    """
    import time

    from repro import obs

    tracer = obs.Tracer()
    registry = obs.current_registry()
    baseline = registry.snapshot()
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    with obs.activate_tracer(tracer):
        with tracer.span(f"cli.{args.command}"):
            code = _execute(args)
    wall_s = time.perf_counter() - wall_start
    cpu_s = time.process_time() - cpu_start

    record = obs.make_record(
        command=args.command,
        target=getattr(args, "scenario", None) or getattr(args, "experiment", None),
        preset=getattr(args, "preset", None),
        args=_obs_args_summary(args),
        spec=_spec_payload(args),
        wall_s=wall_s,
        cpu_s=cpu_s,
        span_totals=tracer.span_totals(),
        metrics=registry.delta_since(baseline),
    )
    if args.trace:
        totals = sorted(
            record["spans"].items(), key=lambda item: item[1]["wall_s"], reverse=True
        )
        print()
        print(f"spans (wall {wall_s:.3f} s):")
        width = max(len(name) for name, _ in totals) if totals else 0
        for name, entry in totals:
            share = 100.0 * entry["wall_s"] / wall_s if wall_s else 0.0
            print(
                f"  {name:<{width}}  {entry['wall_s']:>9.3f} s  "
                f"{share:>5.1f}%  x{entry['count']}"
            )
    if args.metrics:
        print()
        print("metrics:")
        counters = record["metrics"].get("counters", {})
        gauges = record["metrics"].get("gauges", {})
        names = sorted(counters) + sorted(gauges)
        width = max(len(name) for name in names) if names else 0
        for name in sorted(counters):
            print(f"  {name:<{width}}  {counters[name]}")
        for name in sorted(gauges):
            print(f"  {name:<{width}}  {gauges[name]:g}")
    if args.ledger is not None:
        obs.append_record(str(args.ledger), record)
        print(f"\nledger: appended 1 record to {args.ledger}", file=sys.stderr)
    return code


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``gprs-repro`` command; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "report":
        return _report_command(args)
    if args.command == "serve":
        return _serve_command(args)
    if args.command == "client":
        return _client_command(args)
    instrumented = getattr(args, "trace", False) or getattr(
        args, "metrics", False
    ) or (getattr(args, "ledger", None) is not None)
    runner = _execute_with_obs if instrumented else _execute
    plan = None
    fault_spec = getattr(args, "inject_faults", None)
    if fault_spec:
        from repro.runtime.faults import FaultPlan

        try:
            plan = FaultPlan.parse(fault_spec)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    def invoke() -> int:
        if plan is not None:
            from repro.runtime.faults import inject_faults

            with inject_faults(plan):
                return runner(args)
        return runner(args)

    if hasattr(args, "no_store"):
        from repro.store import store_context

        with store_context(_store_from_args(args)):
            return invoke()
    return invoke()


def _execute(args: argparse.Namespace) -> int:
    """Dispatch one parsed command (shared by plain and instrumented runs)."""
    if args.command == "list":
        sections = []
        if args.kind in (None, "figures"):
            sections.append(
                "experiments (gprs-repro run <name>):\n"
                + "\n".join(f"  {name}" for name in sorted(EXPERIMENTS))
            )
        if args.kind in (None, "scenarios"):
            lines = ["scenarios (gprs-repro sweep <name>):"]
            for spec in list_scenarios(kind="cell"):
                tags = f" [{', '.join(spec.tags)}]" if spec.tags else ""
                lines.append(f"  {spec.name:<16} {spec.description}{tags}")
            sections.append("\n".join(lines))
        if args.kind in (None, "network"):
            lines = ["network scenarios (gprs-repro network <name>):"]
            for spec in list_scenarios(kind="network"):
                cells = spec.network.number_of_cells
                lines.append(
                    f"  {spec.name:<16} {spec.description} "
                    f"[{spec.network.name}, {cells} cells]"
                )
            sections.append("\n".join(lines))
        if args.kind in (None, "transient"):
            lines = ["transient scenarios (gprs-repro transient <name>):"]
            for spec in list_scenarios(kind="transient"):
                profile = spec.transient
                lines.append(
                    f"  {spec.name:<16} {spec.description} "
                    f"[{profile.name}, {profile.schedule.number_of_segments} "
                    f"segments, {profile.total_duration_s:g}s]"
                )
            sections.append("\n".join(lines))
        print("\n\n".join(sections))
        return 0

    if args.command == "run":
        from repro.runtime import execution_options
        from repro.runtime.resilience import SweepFailureError

        try:
            # run_experiment passes every knob explicitly except the
            # warm-seed opt-in, which flows through the ambient options.
            with execution_options(seed_from_store=bool(args.warm_seeds)):
                report = run_experiment(
                    args.experiment,
                    ExperimentScale.from_name(args.preset),
                    jobs=args.jobs,
                    cache=_cache_from_args(args),
                    warm=not args.cold,
                    chunk_size=args.chunk_size,
                    **_resilience_from_args(args),
                )
        except SweepFailureError as error:
            print(f"error: {error}", file=sys.stderr)
            return 3
        except (RuntimeError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(report)
        return 0

    if args.command == "sweep":
        from repro.runtime.resilience import SweepFailureError

        try:
            result = run_sweep(
                scenario(args.scenario),
                ExperimentScale.from_name(args.preset),
                jobs=args.jobs,
                cache=_cache_from_args(args),
                warm=not args.cold,
                chunk_size=args.chunk_size,
                seed_from_store=bool(args.warm_seeds),
                **_resilience_from_args(args),
            )
        except SweepFailureError as error:
            print(f"error: {error}", file=sys.stderr)
            return 3
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if args.canonical:
            from repro.service.protocol import canonical_text

            print(canonical_text(result.as_dict()))
        elif args.json:
            print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
        else:
            print(format_scenario_result(result))
        return _report_failures(result.failures)

    if args.command == "network":
        from repro.runtime.resilience import SweepFailureError

        try:
            spec = scenario(args.scenario)
            if spec.network is None:
                raise ValueError(
                    f"scenario {args.scenario!r} is single-cell; pick one from "
                    "'gprs-repro list --kind network' (or use 'sweep')"
                )
            result = run_network_sweep(
                spec,
                ExperimentScale.from_name(args.preset),
                jobs=args.jobs,
                cache=_cache_from_args(args),
                warm=not args.cold,
                pipelined=args.pipelined,
                **_resilience_from_args(args),
            )
        except SweepFailureError as error:
            print(f"error: {error}", file=sys.stderr)
            return 3
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if args.canonical:
            from repro.service.protocol import canonical_text

            print(canonical_text(result.as_dict()))
        elif args.json:
            print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
        else:
            print(format_network_result(result))
        return _report_failures(result.failures)

    if args.command == "transient":
        from repro.runtime.resilience import SweepFailureError

        try:
            spec = scenario(args.scenario)
            if spec.transient is None:
                raise ValueError(
                    f"scenario {args.scenario!r} is stationary; pick one from "
                    "'gprs-repro list --kind transient' (or use 'sweep')"
                )
            result = run_transient_sweep(
                spec,
                ExperimentScale.from_name(args.preset),
                jobs=args.jobs,
                cache=_cache_from_args(args),
                warm=not args.cold,
                rates=None if args.rate is None else (args.rate,),
                **_resilience_from_args(args),
            )
        except SweepFailureError as error:
            print(f"error: {error}", file=sys.stderr)
            return 3
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if args.canonical:
            from repro.service.protocol import canonical_text

            print(canonical_text(result.as_dict()))
        elif args.json:
            print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
        else:
            print(format_transient_result(result))
        return _report_failures(result.failures)

    if args.command == "solve":
        params = _parameters_from_args(args)
        solution = GprsMarkovModel(params, solver_method=args.solver).solve()
        rows = solution.measures.as_dict()
        rows["states"] = solution.parameters.state_space_size
        rows["solver"] = solution.steady_state.method
        rows["solver iterations"] = solution.steady_state.iterations
        if solution.steady_state.coarse_corrections:
            rows["coarse corrections"] = solution.steady_state.coarse_corrections
        print(format_table("Analytical model solution", rows))
        return 0

    if args.command == "simulate":
        params = _parameters_from_args(args)
        config = SimulationConfig(
            cell_parameters=params,
            number_of_cells=args.cells,
            simulation_time_s=args.time,
            warmup_time_s=args.warmup,
            batches=args.batches,
            seed=args.seed,
            tcp=TcpConfig(enabled=not args.no_tcp),
        )
        results = GprsNetworkSimulator(config).run()
        rows: dict[str, float | str] = {}
        for metric in results.available_metrics():
            interval = results.interval(metric)
            rows[metric] = f"{interval.mean:.6g} +/- {interval.half_width:.2g}"
        rows["events processed"] = results.events_processed
        print(format_table("Simulation results (mid cell, 95% confidence)", rows))
        return 0

    raise ValueError(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
