"""The paper's primary contribution: the CTMC model of the GPRS radio interface.

The model represents a single cell of an integrated GSM/GPRS network in which
``N`` physical channels are shared between circuit-switched GSM voice calls
and packet-switched GPRS sessions.  ``N_GPRS`` channels are permanently
reserved as packet data channels (PDCH); the remaining ``N_GSM = N - N_GPRS``
channels are used by GSM calls with priority and as on-demand PDCHs otherwise.

A state is the tuple ``(n, k, m, r)``:

* ``n`` -- active GSM calls (0 .. N_GSM),
* ``k`` -- data packets queued in the BSC buffer (0 .. K),
* ``m`` -- active GPRS sessions (0 .. M),
* ``r`` -- sessions whose on--off traffic source is currently *off* (0 .. m).

Transition rates follow Table 1 of the paper; user mobility enters through the
handover-balancing fixed point (Eqs. (4)-(5)) and TCP flow control through the
buffer threshold ``eta`` that caps the packet arrival rate once the buffer is
more than ``eta * K`` full.  Performance measures (Eqs. (6)-(11)) are computed
from the stationary distribution.

Public entry point: :class:`~repro.core.model.GprsMarkovModel`.
"""

from repro.core.handover import HandoverBalance, balance_handover_rates
from repro.core.measures import GprsPerformanceMeasures, compute_measures
from repro.core.model import GprsMarkovModel
from repro.core.parameters import GprsModelParameters
from repro.core.state_space import GprsStateSpace
from repro.core.template import GeneratorTemplate
from repro.core.transitions import TransitionBatch, enumerate_transitions

__all__ = [
    "GeneratorTemplate",
    "GprsMarkovModel",
    "GprsModelParameters",
    "GprsPerformanceMeasures",
    "GprsStateSpace",
    "HandoverBalance",
    "TransitionBatch",
    "balance_handover_rates",
    "compute_measures",
    "enumerate_transitions",
]
