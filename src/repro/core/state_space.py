"""State space of the aggregated GPRS Markov model.

A state is the tuple ``(n, k, m, r)`` with

* ``n`` in ``0 .. N_GSM``  -- active GSM calls,
* ``k`` in ``0 .. K``      -- packets in the BSC buffer,
* ``m`` in ``0 .. M``      -- active GPRS sessions,
* ``r`` in ``0 .. m``      -- sessions whose on--off source is *off*.

The constraint ``r <= m`` makes the ``(m, r)`` component triangular, so the
states are enumerated through a flat *pair index* ``p(m, r) = m(m+1)/2 + r``
with ``P = (M+1)(M+2)/2`` values.  The overall state index is

    index(n, k, m, r) = (n * (K + 1) + k) * P + p(m, r)

giving exactly the ``(M+1)(M+2)(N_GSM+1)(K+1)/2`` states quoted in the paper.
All encode/decode operations are vectorised so the sparse generator for
hundreds of thousands of states can be assembled without Python-level loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GprsStateSpace", "StateArrays"]


@dataclass(frozen=True)
class StateArrays:
    """Vectorised view of every state in the chain (one entry per state index)."""

    gsm_calls: np.ndarray  # n
    buffered_packets: np.ndarray  # k
    gprs_sessions: np.ndarray  # m
    sessions_off: np.ndarray  # r

    def __len__(self) -> int:
        return self.gsm_calls.shape[0]

    @property
    def sessions_on(self) -> np.ndarray:
        """Number of sessions currently in a packet call, ``m - r``."""
        return self.gprs_sessions - self.sessions_off


class GprsStateSpace:
    """Enumeration of the ``(n, k, m, r)`` state space with vectorised indexing.

    Parameters
    ----------
    gsm_channels:
        ``N_GSM``, the number of channels GSM calls may occupy.
    buffer_size:
        ``K``, the BSC buffer capacity in packets.
    max_sessions:
        ``M``, the admission cap on concurrent GPRS sessions.
    """

    def __init__(self, gsm_channels: int, buffer_size: int, max_sessions: int) -> None:
        if gsm_channels < 0:
            raise ValueError("gsm_channels must be non-negative")
        if buffer_size < 0:
            raise ValueError("buffer_size must be non-negative")
        if max_sessions < 0:
            raise ValueError("max_sessions must be non-negative")
        self._gsm_channels = gsm_channels
        self._buffer_size = buffer_size
        self._max_sessions = max_sessions

        self._pair_count = (max_sessions + 1) * (max_sessions + 2) // 2
        # Lookup tables pair index -> (m, r).
        pair_m = np.empty(self._pair_count, dtype=np.int64)
        pair_r = np.empty(self._pair_count, dtype=np.int64)
        position = 0
        for m in range(max_sessions + 1):
            count = m + 1
            pair_m[position : position + count] = m
            pair_r[position : position + count] = np.arange(count)
            position += count
        self._pair_m = pair_m
        self._pair_r = pair_r
        # Base offset of each m block: offset[m] = m(m+1)/2.
        self._pair_offset = (
            np.arange(max_sessions + 1, dtype=np.int64)
            * np.arange(1, max_sessions + 2, dtype=np.int64)
            // 2
        )
        self._size = (gsm_channels + 1) * (buffer_size + 1) * self._pair_count
        self._all_states: StateArrays | None = None

    # ------------------------------------------------------------------ #
    # Sizes
    # ------------------------------------------------------------------ #
    @property
    def gsm_channels(self) -> int:
        return self._gsm_channels

    @property
    def buffer_size(self) -> int:
        return self._buffer_size

    @property
    def max_sessions(self) -> int:
        return self._max_sessions

    @property
    def size(self) -> int:
        """Total number of states."""
        return self._size

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"GprsStateSpace(N_GSM={self._gsm_channels}, K={self._buffer_size}, "
            f"M={self._max_sessions}, states={self._size})"
        )

    # ------------------------------------------------------------------ #
    # Encoding / decoding
    # ------------------------------------------------------------------ #
    def pair_index(self, sessions, sessions_off):
        """Return the flat index of the ``(m, r)`` component (vectorised)."""
        m = np.asarray(sessions, dtype=np.int64)
        r = np.asarray(sessions_off, dtype=np.int64)
        return self._pair_offset[m] + r

    def index(self, gsm_calls, buffered_packets, sessions, sessions_off):
        """Return the flat state index of ``(n, k, m, r)`` (vectorised).

        All arguments may be scalars or numpy arrays of equal shape.  Inputs
        are validated against the state-space bounds.
        """
        n = np.asarray(gsm_calls, dtype=np.int64)
        k = np.asarray(buffered_packets, dtype=np.int64)
        m = np.asarray(sessions, dtype=np.int64)
        r = np.asarray(sessions_off, dtype=np.int64)
        if np.any((n < 0) | (n > self._gsm_channels)):
            raise ValueError("GSM call count out of range")
        if np.any((k < 0) | (k > self._buffer_size)):
            raise ValueError("buffer occupancy out of range")
        if np.any((m < 0) | (m > self._max_sessions)):
            raise ValueError("GPRS session count out of range")
        if np.any((r < 0) | (r > m)):
            raise ValueError("off-session count out of range (needs 0 <= r <= m)")
        flat = (n * (self._buffer_size + 1) + k) * self._pair_count + self.pair_index(m, r)
        if flat.ndim == 0:
            return int(flat)
        return flat

    def decode(self, indices) -> StateArrays:
        """Return the ``(n, k, m, r)`` components of flat state indices (vectorised)."""
        idx = np.asarray(indices, dtype=np.int64)
        if np.any((idx < 0) | (idx >= self._size)):
            raise ValueError("state index out of range")
        pair = idx % self._pair_count
        rest = idx // self._pair_count
        k = rest % (self._buffer_size + 1)
        n = rest // (self._buffer_size + 1)
        return StateArrays(
            gsm_calls=n,
            buffered_packets=k,
            gprs_sessions=self._pair_m[pair],
            sessions_off=self._pair_r[pair],
        )

    def all_states(self) -> StateArrays:
        """Return the components of every state, indexed by flat state index.

        The arrays are computed once and cached: sweeps share one state space
        across many solves, and every generator build and measure evaluation
        starts from this decomposition.
        """
        if self._all_states is None:
            self._all_states = self.decode(np.arange(self._size, dtype=np.int64))
        return self._all_states

    def state_tuple(self, index: int) -> tuple[int, int, int, int]:
        """Return a single state as a plain ``(n, k, m, r)`` tuple."""
        arrays = self.decode(np.array([index]))
        return (
            int(arrays.gsm_calls[0]),
            int(arrays.buffered_packets[0]),
            int(arrays.gprs_sessions[0]),
            int(arrays.sessions_off[0]),
        )

    def iter_states(self):
        """Yield every state as ``(index, n, k, m, r)`` (intended for tests/small spaces)."""
        arrays = self.all_states()
        for index in range(self._size):
            yield (
                index,
                int(arrays.gsm_calls[index]),
                int(arrays.buffered_packets[index]),
                int(arrays.gprs_sessions[index]),
                int(arrays.sessions_off[index]),
            )
