"""Assembly of the sparse infinitesimal generator matrix of the GPRS chain.

The generator ``Q`` is built from the vectorised transition batches of
:mod:`repro.core.transitions`: all (source, target, rate) triples are collected
into one sparse COO matrix, duplicate entries are summed, and the diagonal is
set to the negative row sum so that each row of ``Q`` sums to zero.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np
import scipy.sparse as sp

from repro.core.parameters import GprsModelParameters
from repro.core.state_space import GprsStateSpace
from repro.core.transitions import TransitionBatch, enumerate_transitions

__all__ = ["assemble_generator", "build_generator", "transition_rate_summary"]


def assemble_generator(
    batches: Iterable[TransitionBatch], number_of_states: int
) -> sp.csr_matrix:
    """Assemble a CTMC generator from transition batches.

    Parameters
    ----------
    batches:
        Iterable of :class:`~repro.core.transitions.TransitionBatch`.
    number_of_states:
        Dimension of the (square) generator.

    Returns
    -------
    scipy.sparse.csr_matrix
        The generator ``Q`` with zero row sums.
    """
    sources = []
    targets = []
    rates = []
    for batch in batches:
        if len(batch) == 0:
            continue
        if np.any(batch.source == batch.target):
            raise ValueError(f"batch {batch.event!r} contains self-loop transitions")
        sources.append(batch.source)
        targets.append(batch.target)
        rates.append(batch.rate)

    if sources:
        row = np.concatenate(sources)
        col = np.concatenate(targets)
        data = np.concatenate(rates)
    else:
        row = np.empty(0, dtype=np.int64)
        col = np.empty(0, dtype=np.int64)
        data = np.empty(0, dtype=float)

    off_diagonal = sp.coo_matrix(
        (data, (row, col)), shape=(number_of_states, number_of_states)
    ).tocsr()
    off_diagonal.sum_duplicates()
    exit_rates = np.asarray(off_diagonal.sum(axis=1)).ravel()
    return (off_diagonal - sp.diags(exit_rates)).tocsr()


def build_generator(
    params: GprsModelParameters,
    space: GprsStateSpace | None = None,
    *,
    gsm_handover_arrival_rate: float,
    gprs_handover_arrival_rate: float,
) -> tuple[sp.csr_matrix, GprsStateSpace]:
    """Build the generator matrix of the GPRS model for the given parameters.

    Returns the sparse generator and the state space used to index it.
    """
    if space is None:
        space = GprsStateSpace(
            gsm_channels=params.gsm_channels,
            buffer_size=params.buffer_size,
            max_sessions=params.max_gprs_sessions,
        )
    batches = enumerate_transitions(
        params,
        space,
        gsm_handover_arrival_rate=gsm_handover_arrival_rate,
        gprs_handover_arrival_rate=gprs_handover_arrival_rate,
    )
    return assemble_generator(batches, space.size), space


def transition_rate_summary(batches: Iterable[TransitionBatch]) -> dict[str, dict[str, float]]:
    """Return per-event-class statistics of a transition-batch collection.

    Useful for debugging and for the ablation benchmarks: reports, for every
    event class, the number of transitions and the minimum / maximum rate.
    """
    summary: dict[str, dict[str, float]] = {}
    for batch in batches:
        if len(batch) == 0:
            summary[batch.event] = {"count": 0, "min_rate": 0.0, "max_rate": 0.0}
            continue
        summary[batch.event] = {
            "count": float(len(batch)),
            "min_rate": float(batch.rate.min()),
            "max_rate": float(batch.rate.max()),
        }
    return summary
