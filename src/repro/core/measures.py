"""Performance measures of the GPRS model (Eqs. (6)-(11) of the paper).

Two families of measures are computed:

* **Erlang-loss measures** that only depend on the closed-form M/M/c/c
  solutions: carried voice traffic (CVT), GSM voice blocking probability,
  average number of GPRS sessions (AGS) and GPRS session blocking probability.
* **CTMC measures** that require the stationary distribution of the full
  ``(n, k, m, r)`` chain: carried data traffic (CDT, the mean number of PDCHs
  in use), mean queue length (MQL), packet loss probability (PLP), queueing
  delay (QD) and average throughput per user (ATU).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.handover import HandoverBalance
from repro.core.parameters import GprsModelParameters
from repro.core.state_space import GprsStateSpace
from repro.core.transitions import offered_packet_rate, pdch_in_use
from repro.queueing.erlang import ErlangLossSystem
from repro.queueing.littles_law import mean_waiting_time
from repro.traffic.units import packets_per_s_to_kbit_per_s

__all__ = ["GprsPerformanceMeasures", "compute_measures", "erlang_measures"]


@dataclass(frozen=True)
class GprsPerformanceMeasures:
    """All performance measures reported by the paper for one configuration.

    Rates are expressed in packets per second unless the attribute name says
    otherwise; conversions to kbit/s use the 480-byte packet size of the
    traffic model.
    """

    #: Total GSM/GPRS call arrival rate of the configuration (calls per second).
    total_call_arrival_rate: float
    #: Carried data traffic: mean number of PDCHs in use (Eq. (8)).
    carried_data_traffic: float
    #: Mean number of packets in the BSC buffer.
    mean_queue_length: float
    #: Mean packet arrival rate offered by the TCP-controlled sources (packets/s).
    offered_packet_rate: float
    #: Carried packet throughput ``CDT * mu_service`` (packets/s).
    packet_throughput: float
    #: Packet loss probability (Eq. (9)).
    packet_loss_probability: float
    #: Mean queueing delay of data packets in the BSC buffer (Eq. (10), seconds).
    queueing_delay: float
    #: Average throughput per GPRS user (Eq. (11), packets/s).
    throughput_per_user: float
    #: Average throughput per GPRS user in kbit/s.
    throughput_per_user_kbit_s: float
    #: Carried voice traffic: mean number of busy GSM channels (Eq. (6)).
    carried_voice_traffic: float
    #: GSM voice call blocking probability.
    voice_blocking_probability: float
    #: Average number of active GPRS sessions in the cell (Eq. (7)).
    average_gprs_sessions: float
    #: GPRS session blocking probability (admission cap ``M`` reached).
    gprs_blocking_probability: float
    #: Balanced incoming handover rate of GSM calls.
    gsm_handover_arrival_rate: float
    #: Balanced incoming handover rate of GPRS sessions.
    gprs_handover_arrival_rate: float

    def as_dict(self) -> dict[str, float]:
        """Return the measures as a plain dictionary (for tables and CSV export)."""
        return {
            "total_call_arrival_rate": self.total_call_arrival_rate,
            "carried_data_traffic": self.carried_data_traffic,
            "mean_queue_length": self.mean_queue_length,
            "offered_packet_rate": self.offered_packet_rate,
            "packet_throughput": self.packet_throughput,
            "packet_loss_probability": self.packet_loss_probability,
            "queueing_delay": self.queueing_delay,
            "throughput_per_user": self.throughput_per_user,
            "throughput_per_user_kbit_s": self.throughput_per_user_kbit_s,
            "carried_voice_traffic": self.carried_voice_traffic,
            "voice_blocking_probability": self.voice_blocking_probability,
            "average_gprs_sessions": self.average_gprs_sessions,
            "gprs_blocking_probability": self.gprs_blocking_probability,
            "gsm_handover_arrival_rate": self.gsm_handover_arrival_rate,
            "gprs_handover_arrival_rate": self.gprs_handover_arrival_rate,
        }


def erlang_measures(
    params: GprsModelParameters, handover: HandoverBalance
) -> tuple[float, float, float, float]:
    """Return (CVT, voice blocking, AGS, GPRS blocking) from the Erlang-loss systems.

    GSM calls occupy an M/M/c/c system with ``c = N_GSM`` servers; GPRS
    sessions one with ``c = M`` servers.  Arrival rates include the balanced
    handover flows and service rates include the handover departure rates.
    """
    carried_voice = 0.0
    voice_blocking = 0.0
    if params.gsm_arrival_rate + handover.gsm_handover_arrival_rate > 0:
        gsm_system = ErlangLossSystem(
            arrival_rate=params.gsm_arrival_rate + handover.gsm_handover_arrival_rate,
            service_rate=params.gsm_completion_rate + params.gsm_handover_departure_rate,
            servers=max(params.gsm_channels, 1),
        )
        carried_voice = gsm_system.carried_traffic()
        voice_blocking = gsm_system.blocking_probability()

    average_sessions = 0.0
    gprs_blocking = 0.0
    if params.gprs_arrival_rate + handover.gprs_handover_arrival_rate > 0:
        gprs_system = ErlangLossSystem(
            arrival_rate=params.gprs_arrival_rate + handover.gprs_handover_arrival_rate,
            service_rate=params.gprs_completion_rate + params.gprs_handover_departure_rate,
            servers=params.max_gprs_sessions,
        )
        average_sessions = gprs_system.mean_number_in_system()
        gprs_blocking = gprs_system.blocking_probability()

    return carried_voice, voice_blocking, average_sessions, gprs_blocking


def compute_measures(
    params: GprsModelParameters,
    space: GprsStateSpace,
    distribution: np.ndarray,
    handover: HandoverBalance,
) -> GprsPerformanceMeasures:
    """Compute every performance measure from the stationary distribution.

    Parameters
    ----------
    params:
        Model parameters.
    space:
        State space used to build the generator.
    distribution:
        Stationary probability vector of the chain (length ``space.size``).
    handover:
        Balanced handover rates (needed for the Erlang-loss measures).
    """
    pi = np.asarray(distribution, dtype=float)
    if pi.shape[0] != space.size:
        raise ValueError(
            f"distribution has {pi.shape[0]} entries but the state space has {space.size}"
        )

    states = space.all_states()
    channels_in_use = pdch_in_use(params, states.gsm_calls, states.buffered_packets)
    carried_data_traffic = float(np.dot(pi, channels_in_use))
    mean_queue_length = float(np.dot(pi, states.buffered_packets))
    offered_rate = float(
        np.dot(
            pi,
            offered_packet_rate(
                params,
                states.gsm_calls,
                states.buffered_packets,
                states.gprs_sessions,
                states.sessions_off,
            ),
        )
    )
    throughput = carried_data_traffic * params.pdch_service_rate
    if offered_rate > 0:
        loss_probability = max(0.0, 1.0 - throughput / offered_rate)
    else:
        loss_probability = 0.0
    delay = mean_waiting_time(mean_queue_length, throughput)

    carried_voice, voice_blocking, average_sessions, gprs_blocking = erlang_measures(
        params, handover
    )
    if average_sessions > 0:
        throughput_per_user = throughput / average_sessions
    else:
        throughput_per_user = 0.0

    return GprsPerformanceMeasures(
        total_call_arrival_rate=params.total_call_arrival_rate,
        carried_data_traffic=carried_data_traffic,
        mean_queue_length=mean_queue_length,
        offered_packet_rate=offered_rate,
        packet_throughput=throughput,
        packet_loss_probability=loss_probability,
        queueing_delay=delay,
        throughput_per_user=throughput_per_user,
        throughput_per_user_kbit_s=packets_per_s_to_kbit_per_s(
            throughput_per_user, params.traffic.packet_size_bytes
        ),
        carried_voice_traffic=carried_voice,
        voice_blocking_probability=voice_blocking,
        average_gprs_sessions=average_sessions,
        gprs_blocking_probability=gprs_blocking,
        gsm_handover_arrival_rate=handover.gsm_handover_arrival_rate,
        gprs_handover_arrival_rate=handover.gprs_handover_arrival_rate,
    )


def buffer_occupancy_distribution(
    space: GprsStateSpace, distribution: np.ndarray
) -> np.ndarray:
    """Return the marginal distribution of the BSC buffer occupancy ``k``."""
    pi = np.asarray(distribution, dtype=float)
    states = space.all_states()
    marginal = np.zeros(space.buffer_size + 1)
    np.add.at(marginal, states.buffered_packets, pi)
    return marginal


def session_count_distribution(
    space: GprsStateSpace, distribution: np.ndarray
) -> np.ndarray:
    """Return the marginal distribution of the number of active GPRS sessions ``m``."""
    pi = np.asarray(distribution, dtype=float)
    states = space.all_states()
    marginal = np.zeros(space.max_sessions + 1)
    np.add.at(marginal, states.gprs_sessions, pi)
    return marginal


def gsm_call_distribution(space: GprsStateSpace, distribution: np.ndarray) -> np.ndarray:
    """Return the marginal distribution of the number of active GSM calls ``n``."""
    pi = np.asarray(distribution, dtype=float)
    states = space.all_states()
    marginal = np.zeros(space.gsm_channels + 1)
    np.add.at(marginal, states.gsm_calls, pi)
    return marginal
